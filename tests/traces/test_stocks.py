"""Tests for the multi-market stock tick synthesizer."""

import pytest

from repro.core import Epoch
from repro.traces import StockMarketSynthesizer
from repro.traces.events import UpdateEvent


@pytest.fixture
def synthesizer() -> StockMarketSynthesizer:
    return StockMarketSynthesizer(3, Epoch(300), updates_per_market=40,
                                  seed=11)


class TestValidation:
    def test_zero_markets_rejected(self):
        with pytest.raises(ValueError):
            StockMarketSynthesizer(0, Epoch(10))

    def test_negative_update_rate_rejected(self):
        with pytest.raises(ValueError):
            StockMarketSynthesizer(1, Epoch(10), updates_per_market=-1)


class TestTrace:
    def test_deterministic_given_seed(self):
        a = StockMarketSynthesizer(2, Epoch(100), seed=1).generate()
        b = StockMarketSynthesizer(2, Epoch(100), seed=1).generate()
        assert list(a) == list(b)

    def test_all_markets_present(self, synthesizer):
        trace = synthesizer.generate()
        assert trace.resource_ids == [0, 1, 2]

    def test_update_counts_near_target(self, synthesizer):
        trace = synthesizer.generate()
        for market in trace.resource_ids:
            assert 20 <= trace.count_for(market) <= 60

    def test_prices_stay_positive(self, synthesizer):
        trace = synthesizer.generate()
        for event in trace:
            quote = StockMarketSynthesizer.parse_quote(event)
            assert quote.price > 0

    def test_markets_track_shared_latent_price(self):
        # With tiny divergence, same-chronon prices on different markets
        # must be near-identical.
        synthesizer = StockMarketSynthesizer(
            2, Epoch(500), updates_per_market=200, volatility=0.002,
            divergence=1e-6, seed=7)
        trace = synthesizer.generate()
        by_chronon: dict[int, list[float]] = {}
        for event in trace:
            quote = StockMarketSynthesizer.parse_quote(event)
            by_chronon.setdefault(quote.chronon, []).append(quote.price)
        shared = [prices for prices in by_chronon.values()
                  if len(prices) > 1]
        assert shared, "expected some same-chronon quotes on both markets"
        for prices in shared:
            assert max(prices) - min(prices) < 0.01

    def test_catalog(self, synthesizer):
        catalog = synthesizer.catalog()
        assert len(catalog) == 3
        assert catalog[1].meta["market"] == "1"


class TestParseQuote:
    def test_round_trip(self):
        event = UpdateEvent(5, 1, "price=101.2345")
        quote = StockMarketSynthesizer.parse_quote(event)
        assert quote.market == 1
        assert quote.chronon == 5
        assert quote.price == pytest.approx(101.2345)

    def test_non_price_payload_rejected(self):
        with pytest.raises(ValueError, match="not a price"):
            StockMarketSynthesizer.parse_quote(UpdateEvent(1, 0, "bid=1"))
