"""Tests for update events and traces, including the CSV round-trip."""

import pytest

from repro.core import Epoch, TraceFormatError
from repro.traces import UpdateEvent, UpdateTrace


class TestUpdateEvent:
    def test_ordering_by_time_then_resource(self):
        events = [UpdateEvent(5, 0), UpdateEvent(1, 2), UpdateEvent(1, 1)]
        assert sorted(events) == [UpdateEvent(1, 1), UpdateEvent(1, 2),
                                  UpdateEvent(5, 0)]

    def test_invalid_chronon_rejected(self):
        with pytest.raises(ValueError):
            UpdateEvent(0, 1)

    def test_invalid_resource_rejected(self):
        with pytest.raises(ValueError):
            UpdateEvent(1, -1)


class TestUpdateTrace:
    def test_events_sorted_on_construction(self):
        trace = UpdateTrace([UpdateEvent(5, 0), UpdateEvent(1, 0)],
                            Epoch(10))
        assert [event.chronon for event in trace] == [1, 5]

    def test_event_outside_epoch_rejected(self):
        with pytest.raises(TraceFormatError, match="outside epoch"):
            UpdateTrace([UpdateEvent(11, 0)], Epoch(10))

    def test_events_for_resource(self):
        trace = UpdateTrace(
            [UpdateEvent(1, 0), UpdateEvent(3, 1), UpdateEvent(5, 0)],
            Epoch(10))
        assert [e.chronon for e in trace.events_for(0)] == [1, 5]
        assert trace.events_for(9) == ()

    def test_update_chronons_deduplicates(self):
        trace = UpdateTrace(
            [UpdateEvent(2, 0, "a"), UpdateEvent(2, 0, "b"),
             UpdateEvent(7, 0)],
            Epoch(10))
        assert trace.update_chronons(0) == [2, 7]

    def test_count_for(self):
        trace = UpdateTrace([UpdateEvent(1, 0), UpdateEvent(2, 0)],
                            Epoch(5))
        assert trace.count_for(0) == 2
        assert trace.count_for(3) == 0

    def test_mean_intensity(self):
        trace = UpdateTrace(
            [UpdateEvent(1, 0), UpdateEvent(2, 0), UpdateEvent(3, 1),
             UpdateEvent(4, 1)],
            Epoch(5))
        assert trace.mean_intensity() == 2.0

    def test_mean_intensity_empty(self):
        assert UpdateTrace([], Epoch(5)).mean_intensity() == 0.0

    def test_restricted_to(self):
        trace = UpdateTrace(
            [UpdateEvent(1, 0), UpdateEvent(2, 1), UpdateEvent(3, 2)],
            Epoch(5))
        sub = trace.restricted_to([0, 2])
        assert sub.resource_ids == [0, 2]
        assert len(sub) == 2

    def test_merged_with(self):
        left = UpdateTrace([UpdateEvent(1, 0)], Epoch(5))
        right = UpdateTrace([UpdateEvent(8, 1)], Epoch(10))
        merged = left.merged_with(right)
        assert merged.epoch.length == 10
        assert len(merged) == 2


class TestCsvRoundTrip:
    def test_round_trip_preserves_events(self, tmp_path):
        trace = UpdateTrace(
            [UpdateEvent(1, 0, "bid=5.00"), UpdateEvent(3, 1)],
            Epoch(10))
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = UpdateTrace.from_csv(path, Epoch(10))
        assert list(loaded) == list(trace)

    def test_epoch_inferred_from_events(self, tmp_path):
        trace = UpdateTrace([UpdateEvent(7, 0)], Epoch(20))
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = UpdateTrace.from_csv(path)
        assert loaded.epoch.length == 7

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            UpdateTrace.from_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(TraceFormatError, match="header"):
            UpdateTrace.from_csv(path)

    def test_non_integer_field_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("resource_id,chronon,payload\nx,2,\n")
        with pytest.raises(TraceFormatError, match="non-integer"):
            UpdateTrace.from_csv(path)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("resource_id,chronon,payload\n1\n")
        with pytest.raises(TraceFormatError, match="columns"):
            UpdateTrace.from_csv(path)

    def test_invalid_event_values_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("resource_id,chronon,payload\n0,0,\n")
        with pytest.raises(TraceFormatError, match=":2:"):
            UpdateTrace.from_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("resource_id,chronon,payload\n0,1,\n\n1,2,\n")
        loaded = UpdateTrace.from_csv(path)
        assert len(loaded) == 2
