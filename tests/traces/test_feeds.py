"""Tests for the Web-feed trace synthesizer."""

import pytest

from repro.core import Epoch
from repro.traces import FeedTraceSynthesizer


class TestValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FeedTraceSynthesizer(-1, Epoch(10))

    def test_bad_chronons_per_hour_rejected(self):
        with pytest.raises(ValueError):
            FeedTraceSynthesizer(1, Epoch(10), chronons_per_hour=0)

    def test_bad_hourly_share_rejected(self):
        with pytest.raises(ValueError):
            FeedTraceSynthesizer(1, Epoch(10), hourly_share=1.5)


class TestPopulation:
    def test_hourly_share_respected_in_catalog(self):
        synthesizer = FeedTraceSynthesizer(100, Epoch(200),
                                           hourly_share=0.55, seed=1)
        kinds = [resource.meta["kind"]
                 for resource in synthesizer.catalog()]
        assert kinds.count("hourly") == 55
        assert kinds.count("poisson") == 45

    def test_all_hourly(self):
        synthesizer = FeedTraceSynthesizer(10, Epoch(100),
                                           hourly_share=1.0, seed=1)
        kinds = {resource.meta["kind"]
                 for resource in synthesizer.catalog()}
        assert kinds == {"hourly"}


class TestTrace:
    def test_deterministic_given_seed(self):
        a = FeedTraceSynthesizer(20, Epoch(200), seed=5).generate()
        b = FeedTraceSynthesizer(20, Epoch(200), seed=5).generate()
        assert list(a) == list(b)

    def test_events_inside_epoch(self):
        epoch = Epoch(150)
        trace = FeedTraceSynthesizer(30, Epoch(150), seed=2).generate()
        assert all(event.chronon in epoch for event in trace)

    def test_hourly_feeds_update_roughly_hourly(self):
        epoch = Epoch(1000)
        synthesizer = FeedTraceSynthesizer(
            10, epoch, chronons_per_hour=10, hourly_share=1.0, seed=3)
        trace = synthesizer.generate()
        for feed_id in trace.resource_ids:
            count = trace.count_for(feed_id)
            # ~100 hours in the epoch; jitter/dedup allows some slack.
            assert 80 <= count <= 110

    def test_at_most_one_event_per_chronon_per_feed(self):
        trace = FeedTraceSynthesizer(40, Epoch(300), seed=4).generate()
        for feed_id in trace.resource_ids:
            chronons = [event.chronon
                        for event in trace.events_for(feed_id)]
            assert len(chronons) == len(set(chronons))

    def test_item_payloads(self):
        trace = FeedTraceSynthesizer(5, Epoch(100), seed=6).generate()
        assert all(event.payload.startswith("item-") for event in trace)
