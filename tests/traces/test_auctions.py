"""Tests for the eBay-like auction trace synthesizer."""

import pytest

from repro.core import Epoch
from repro.traces import BRAND_CATALOG, AuctionTraceSynthesizer


@pytest.fixture
def synthesizer() -> AuctionTraceSynthesizer:
    return AuctionTraceSynthesizer(50, Epoch(500), mean_bids=15.0, seed=9)


class TestSpecs:
    def test_population_size(self, synthesizer):
        assert len(synthesizer.specs()) == 50

    def test_specs_memoized(self, synthesizer):
        assert synthesizer.specs() is synthesizer.specs()

    def test_lifetimes_inside_epoch(self, synthesizer):
        for spec in synthesizer.specs():
            assert 1 <= spec.opens <= spec.closes <= 500

    def test_brands_from_catalog(self, synthesizer):
        brands = {name for name, _w, _r in BRAND_CATALOG}
        assert all(spec.brand in brands for spec in synthesizer.specs())

    def test_durations_positive(self, synthesizer):
        assert all(spec.duration >= 1 for spec in synthesizer.specs())

    def test_deterministic_given_seed(self):
        a = AuctionTraceSynthesizer(10, Epoch(100), seed=1).specs()
        b = AuctionTraceSynthesizer(10, Epoch(100), seed=1).specs()
        assert a == b


class TestValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            AuctionTraceSynthesizer(-1, Epoch(10))

    def test_negative_bids_rejected(self):
        with pytest.raises(ValueError):
            AuctionTraceSynthesizer(1, Epoch(10), mean_bids=-1)

    def test_bad_duration_fraction_rejected(self):
        with pytest.raises(ValueError):
            AuctionTraceSynthesizer(1, Epoch(10),
                                    mean_duration_fraction=0.0)
        with pytest.raises(ValueError):
            AuctionTraceSynthesizer(1, Epoch(10),
                                    mean_duration_fraction=1.5)

    def test_bad_sniping_share_rejected(self):
        with pytest.raises(ValueError):
            AuctionTraceSynthesizer(1, Epoch(10), sniping_share=1.0)


class TestBidTrace:
    def test_bids_within_auction_lifetime(self, synthesizer):
        trace = synthesizer.generate()
        lifetimes = {spec.resource_id: (spec.opens, spec.closes)
                     for spec in synthesizer.specs()}
        for event in trace:
            opens, closes = lifetimes[event.resource_id]
            assert opens <= event.chronon <= closes

    def test_bid_payloads_are_prices(self, synthesizer):
        trace = synthesizer.generate()
        for event in trace:
            assert event.payload.startswith("bid=")
            assert float(event.payload[4:]) > 0

    def test_prices_increase_within_auction(self, synthesizer):
        trace = synthesizer.generate()
        for resource_id in trace.resource_ids:
            prices = [float(event.payload[4:])
                      for event in trace.events_for(resource_id)]
            assert prices == sorted(prices)

    def test_sniping_concentrates_bids_near_close(self):
        epoch = Epoch(1000)
        synthesizer = AuctionTraceSynthesizer(
            100, epoch, mean_bids=40.0, sniping_share=0.5, seed=2)
        trace = synthesizer.generate()
        lifetimes = {spec.resource_id: spec
                     for spec in synthesizer.specs()}
        last_decile = 0
        total = 0
        for event in trace:
            spec = lifetimes[event.resource_id]
            total += 1
            if event.chronon > spec.closes - max(1, spec.duration // 10):
                last_decile += 1
        # The last 10% of lifetime holds far more than 10% of bids.
        assert last_decile / total > 0.25

    def test_catalog_matches_specs(self, synthesizer):
        catalog = synthesizer.catalog()
        assert len(catalog) == 50
        for spec in synthesizer.specs():
            resource = catalog[spec.resource_id]
            assert resource.meta["brand"] == spec.brand
