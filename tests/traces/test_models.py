"""Tests for the update models (Poisson, FPN, periodic)."""

import pytest

from repro.core import Epoch
from repro.traces import (
    FPNUpdateModel,
    PeriodicUpdateModel,
    PoissonUpdateModel,
    UpdateEvent,
    UpdateTrace,
)


class TestPoissonModel:
    def test_deterministic_given_seed(self):
        epoch = Epoch(100)
        first = PoissonUpdateModel(10, seed=1).generate(range(5), epoch)
        second = PoissonUpdateModel(10, seed=1).generate(range(5), epoch)
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        epoch = Epoch(200)
        first = PoissonUpdateModel(20, seed=1).generate(range(5), epoch)
        second = PoissonUpdateModel(20, seed=2).generate(range(5), epoch)
        assert list(first) != list(second)

    def test_intensity_controls_event_count(self):
        epoch = Epoch(1000)
        resources = range(50)
        sparse = PoissonUpdateModel(5, seed=3).generate(resources, epoch)
        dense = PoissonUpdateModel(50, seed=3).generate(resources, epoch)
        assert len(dense) > len(sparse) * 3

    def test_mean_intensity_close_to_lambda(self):
        epoch = Epoch(1000)
        trace = PoissonUpdateModel(20, seed=4).generate(range(200), epoch)
        # Collapsing same-chronon hits biases slightly low; allow 15%.
        assert trace.mean_intensity() == pytest.approx(20, rel=0.15)

    def test_zero_intensity_yields_no_events(self):
        trace = PoissonUpdateModel(0, seed=1).generate(range(5), Epoch(50))
        assert len(trace) == 0

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            PoissonUpdateModel(-1)

    def test_per_resource_intensity_override(self):
        epoch = Epoch(1000)
        model = PoissonUpdateModel(2, seed=5,
                                   per_resource_intensity={0: 80})
        trace = model.generate([0, 1], epoch)
        assert trace.count_for(0) > trace.count_for(1) * 5

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            PoissonUpdateModel(1, per_resource_intensity={0: -1})

    def test_events_within_epoch(self):
        epoch = Epoch(77)
        trace = PoissonUpdateModel(30, seed=6).generate(range(10), epoch)
        assert all(event.chronon in epoch for event in trace)


class TestFPNModel:
    def test_replays_trace(self):
        epoch = Epoch(10)
        recorded = UpdateTrace(
            [UpdateEvent(1, 0), UpdateEvent(5, 1)], epoch)
        model = FPNUpdateModel(recorded)
        replay = model.generate([0, 1], epoch)
        assert list(replay) == list(recorded)

    def test_restricts_resources(self):
        epoch = Epoch(10)
        recorded = UpdateTrace(
            [UpdateEvent(1, 0), UpdateEvent(5, 1)], epoch)
        replay = FPNUpdateModel(recorded).generate([1], epoch)
        assert replay.resource_ids == [1]

    def test_restricts_epoch(self):
        recorded = UpdateTrace(
            [UpdateEvent(1, 0), UpdateEvent(9, 0)], Epoch(10))
        replay = FPNUpdateModel(recorded).generate([0], Epoch(5))
        assert [event.chronon for event in replay] == [1]

    def test_exposes_ground_truth(self):
        recorded = UpdateTrace([UpdateEvent(1, 0)], Epoch(5))
        assert FPNUpdateModel(recorded).trace is recorded

    def test_large_resource_list_identical_output(self):
        """Regression: membership goes through a set built once.

        An earlier version rebuilt the membership collection per event,
        making replay quadratic. The output contract is unchanged — the
        replay must equal a straightforward set-filter of the events.
        """
        epoch = Epoch(50)
        recorded = PoissonUpdateModel(5, seed=11).generate(range(40), epoch)
        requested = list(range(0, 4000, 2))
        replay = FPNUpdateModel(recorded).generate(requested, epoch)
        wanted = set(requested)
        expected = [event for event in recorded
                    if event.resource_id in wanted and event.chronon in epoch]
        assert list(replay) == expected

    def test_large_resource_list_linear_time(self):
        """Replay stays O(events + resources), not O(events * resources).

        500 events against 200k requested ids finishes near-instantly
        with set membership; a per-event linear scan of the id list
        would take orders of magnitude longer.
        """
        import time
        epoch = Epoch(100)
        recorded = PoissonUpdateModel(25, seed=12).generate(range(20), epoch)
        assert len(recorded) > 300
        requested = list(range(200_000))
        started = time.perf_counter()
        replay = FPNUpdateModel(recorded).generate(requested, epoch)
        elapsed = time.perf_counter() - started
        assert list(replay) == list(recorded)
        assert elapsed < 5.0


class TestPeriodicModel:
    def test_period_spacing(self):
        trace = PeriodicUpdateModel(10).generate([0], Epoch(35))
        assert trace.update_chronons(0) == [1, 11, 21, 31]

    def test_phase_shift(self):
        trace = PeriodicUpdateModel(10, phase=3).generate([0], Epoch(30))
        assert trace.update_chronons(0) == [4, 14, 24]

    def test_per_resource_phases(self):
        model = PeriodicUpdateModel(10, phases={1: 5})
        trace = model.generate([0, 1], Epoch(20))
        assert trace.update_chronons(0) == [1, 11]
        assert trace.update_chronons(1) == [6, 16]

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicUpdateModel(0)
