"""Property: proxy accounting survives arbitrary mid-run churn.

Hypothesis drives random interleavings of register / unregister actions
against a stepping proxy and asserts the :class:`ProxyStats` invariants
after *every* chronon — not just at the end — so any transient
double-count or leak in the bookkeeping is caught at the step that
introduces it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector
from repro.online import MEDFPolicy, MRSFPolicy, SEDFPolicy
from repro.runtime import MonitoringProxy, OriginServer
from repro.traces import UpdateTrace

from tests.properties.strategies import HORIZON, epoch, profiles

POLICIES = [SEDFPolicy, MRSFPolicy, MEDFPolicy]


@st.composite
def churn_scripts(draw):
    """A set of profiles with arrival chronons and cancel chronons.

    Arrival 0 registers before the run starts; a cancel chronon of 0
    means the registration is never cancelled. Cancels may target any
    registration order index — including ones that arrive later or were
    already cancelled — exercising the edge cases.
    """
    members = draw(st.lists(profiles(), min_size=1, max_size=5))
    arrivals = [draw(st.integers(0, HORIZON - 1)) for _ in members]
    cancels = draw(st.lists(
        st.tuples(st.integers(0, len(members) - 1),
                  st.integers(1, HORIZON)),
        max_size=4))
    return members, arrivals, cancels


class TestChurnInvariants:
    @given(script=churn_scripts(), policy_index=st.integers(0, 2),
           budget=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_stats_invariants_hold_after_every_step(
            self, script, policy_index, budget):
        members, arrivals, cancels = script
        budget_vector = BudgetVector(budget)
        proxy = MonitoringProxy(
            OriginServer(UpdateTrace([], epoch())), epoch(),
            budget_vector, POLICIES[policy_index]())
        client = proxy.register_client()
        cancels_at: dict[int, list[int]] = {}
        for order, chronon in cancels:
            cancels_at.setdefault(chronon, []).append(order)

        order_to_id: list[int] = []
        expected_registered = 0
        for order, profile in enumerate(members):
            if arrivals[order] == 0:
                order_to_id.append(proxy.register_profile(client, profile))
                expected_registered += len(profile)
            else:
                order_to_id.append(-1)

        for chronon in range(1, HORIZON + 1):
            for order, profile in enumerate(members):
                if arrivals[order] == chronon:
                    order_to_id[order] = \
                        proxy.register_profile(client, profile)
                    expected_registered += len(profile)
            for order in cancels_at.get(chronon, ()):
                profile_id = order_to_id[order]
                if profile_id >= 0 and \
                        proxy._registrations[profile_id].active:
                    proxy.unregister_profile(profile_id)
            proxy.step()

            stats = proxy.stats()
            assert stats.registered == expected_registered
            assert stats.completed == len(client.mailbox)
            keys = [(n.profile_id, n.tinterval_id)
                    for n in client.mailbox]
            assert len(keys) == len(set(keys)), "duplicate notification"
            # Every t-interval sits in at most one outcome bucket.
            assert (stats.completed + stats.expired + stats.dropped
                    + stats.pending) <= stats.registered
            assert stats.requests_sent == (stats.probes_used
                                           + stats.probes_failed
                                           + stats.hedges)
            assert proxy.schedule.respects_budget(budget_vector, epoch())

        proxy._flush()
        final = proxy.stats()
        assert final.pending == 0
        assert final.registered == (final.completed + final.expired
                                    + final.dropped)
