"""Equivalence property: the sharded federation IS the monolith proxy.

:func:`~repro.simulation.shard.federated_run` partitions the resource
catalog over K proxy shards and lets a coordinator merge the shards'
per-chronon proposals; it exists purely as a throughput optimization, so
for ANY shard count the merged schedule must reproduce the monolith fast
engine probe for probe — each shard proposes its top-C packed rank keys
and the keys embed the monolith's full tie-break order, so the global
top-C is the monolith's selection exactly (``docs/ALGORITHMS.md`` §15).
These properties drive random profile sets over K=1..4 (with only four
resources, higher K leaves shards empty — a good edge), fault-free and
faulty both, plus the budget-stealing ledger's conservation identities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector
from repro.faults import FaultInjector
from repro.online.registry import parse_policy_spec
from repro.simulation import federated_run, run_online

from tests.properties.strategies import epoch, fault_specs, profile_sets
from tests.properties.test_prop_batch import (
    BATCH_SPECS,
    budget_vectors,
    _assert_same_run,
)
from tests.properties.test_prop_batch_faults import (
    FAULT_POLICIES,
    _make_breaker,
    breaker_params,
    retry_configs,
)


def _fast(profiles, spec, budget, **kwargs):
    policy, preemptive = parse_policy_spec(spec)
    return run_online(profiles, epoch(), budget, policy,
                      preemptive=preemptive, engine="fast", **kwargs)


def _federated(profiles, spec, budget, shards, **kwargs):
    policy, preemptive = parse_policy_spec(spec)
    return federated_run(profiles, epoch(), budget, policy,
                         preemptive=preemptive, shards=shards, **kwargs)


def _assert_accounting(federated):
    """The ledger identities that must hold on every run, faulty or not:
    routed decisions partition the spend (a routed probe may fail, and a
    retry re-attempts an already-routed decision, hence the
    ``used + failed - retries`` form — fault-free it reduces to
    ``routed == used``), steals balance, and no shard outspends its
    nominal-plus-stolen allowance."""
    loads = federated.loads
    result = federated.result
    assert sum(load.probes_routed for load in loads) == \
        result.probes_used + result.probes_failed - result.retries
    assert sum(load.stolen_in for load in loads) == \
        sum(load.stolen_out for load in loads)
    assert federated.stolen_budget == \
        sum(load.stolen_in for load in loads)
    for load in loads:
        assert load.probes_routed >= 0
        assert load.probes_routed <= load.effective_budget
        assert load.stolen_out <= load.nominal_budget


class TestFederationEquivalence:
    @given(profiles=profile_sets(max_profiles=4),
           spec_index=st.integers(0, len(BATCH_SPECS) - 1),
           budget=budget_vectors(),
           shards=st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_fault_free_probe_for_probe(self, profiles, spec_index,
                                        budget, shards):
        """ISSUE satellite: K-shard federated run probe-for-probe
        identical to the monolith proxy for shard counts 1-4."""
        spec = BATCH_SPECS[spec_index]
        federated = _federated(profiles, spec, budget, shards)
        _assert_same_run(_fast(profiles, spec, budget), federated.result)
        assert federated.shards == shards
        _assert_accounting(federated)

    @given(profiles=profile_sets(max_profiles=3),
           budget=budget_vectors(),
           shards=st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_all_policies_one_instance(self, profiles, budget, shards):
        """Every columnar policy family over the same instance and shard
        split — the coordinator's merge is policy-agnostic."""
        for spec in BATCH_SPECS[::2]:
            federated = _federated(profiles, spec, budget, shards)
            _assert_same_run(_fast(profiles, spec, budget),
                             federated.result)

    @given(profiles=profile_sets(max_profiles=4),
           spec=fault_specs(with_per_resource=True),
           policy_index=st.integers(0, len(FAULT_POLICIES) - 1),
           budget=st.integers(1, 3),
           shards=st.integers(1, 4),
           retry=retry_configs(), breaker=breaker_params())
    @settings(max_examples=60, deadline=None)
    def test_faulty_run_identities(self, profiles, spec, policy_index,
                                   budget, shards, retry, breaker):
        """Under faults the federation must still match the fast engine
        probe for probe — failures, retries and quarantine included —
        and the GC/accounting identities must hold."""
        label = FAULT_POLICIES[policy_index]
        budget = BudgetVector(budget)
        fast = _fast(profiles, label, budget,
                     faults=FaultInjector(spec), retry=retry,
                     breaker=_make_breaker(breaker))
        federated = _federated(profiles, label, budget, shards,
                               faults=FaultInjector(spec), retry=retry,
                               breaker=_make_breaker(breaker))
        result = federated.result
        _assert_same_run(fast, result)
        assert result.probes_failed == fast.probes_failed
        assert result.retries == fast.retries
        assert result.resources_quarantined == fast.resources_quarantined
        assert result.gc == fast.gc
        _assert_accounting(federated)

    @given(profiles=profile_sets(max_profiles=4),
           budget=budget_vectors(),
           shards=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_worksteal_ledger_covers_demand(self, profiles, budget,
                                            shards):
        """When the coordinator's winners cluster on one shard, stealing
        must cover the whole deficit: spend equals routed demand shard
        by shard, never capped below it."""
        federated = _federated(profiles, "M-EDF(P)", budget, shards)
        _assert_accounting(federated)
        loads = federated.loads
        assert len(loads) == shards
        assert [load.shard for load in loads] == list(range(shards))
        if shards == 1:
            assert federated.stolen_budget == 0
            assert federated.steal_transfers == 0
