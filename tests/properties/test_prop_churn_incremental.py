"""Churn equivalence: incremental insert/delete IS the full rebuild.

The O(log n + touched) churn paths exist purely as optimizations — for
every interleaving of mid-epoch registrations and cancellations they
must be observationally identical to tearing the derived structures
down and rebuilding them from scratch:

* the fast engine with ``mode="incremental"`` (event splicing into the
  live per-chronon queues + dirty-set index patching) must produce the
  same run as ``mode="rebuild"`` (a full
  :meth:`~repro.simulation.engine.FastProxySimulator.rebuild_structures`
  pass after every event) — probe for probe, counter for counter;
* :class:`~repro.offline.incremental.IncrementalLocalRatio` must keep
  an adjacency identical (modulo the dense relabel
  :class:`~repro.core.profile.ProfileSet` applies) to a from-scratch
  :func:`~repro.offline.conflict.unit_conflict_adjacency` over the live
  set, and :meth:`resolve` must match a from-scratch
  :class:`~repro.offline.local_ratio.LocalRatioApproximation` solve.

These properties are what make the speedups in ``BENCH_churn.json``
meaningful.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector, ProfileSet
from repro.faults import RetryConfig
from repro.offline import (
    IncrementalLocalRatio,
    LocalRatioApproximation,
    unit_conflict_adjacency,
)
from repro.online.registry import parse_policy_spec
from repro.simulation import ChurnEvent, ChurnPlan, run_churned

from tests.properties.strategies import (
    HORIZON,
    epoch,
    fault_specs,
    profile_sets,
    profiles,
)

POLICY_SPECS = [
    "S-EDF(P)", "M-EDF(P)", "M-EDF(NP)", "MRSF(P)",
    "FCFS(NP)", "COVERAGE(P)", "RANDOM(NP)",
]


@st.composite
def churn_scenarios(draw, max_initial: int = 3, max_adds: int = 3):
    """An initial set plus a valid add/remove plan.

    Adds are placed in the plan in chronon order, so the engine assigns
    ids ``len(initial) + index`` in plan order; removals only name ids
    that exist by their chronon (initial ids from chronon 0, added ids
    from their add chronon — same-chronon remove-after-add is legal and
    exercised because grouped events apply in plan order).
    """
    initial = draw(profile_sets(max_profiles=max_initial))
    adds = sorted(draw(st.lists(st.integers(0, HORIZON), min_size=0,
                                max_size=max_adds)))
    added = [draw(profiles(max_tintervals=2)) for _ in adds]
    events = [ChurnEvent.add(chronon, profile)
              for chronon, profile in zip(adds, added)]
    available = (
        [(profile_id, 0) for profile_id in range(len(initial))]
        + [(len(initial) + index, chronon)
           for index, chronon in enumerate(adds)])
    removable = draw(st.lists(
        st.integers(0, len(available) - 1), unique=True, max_size=3))
    for slot in removable:
        profile_id, born = available[slot]
        events.append(ChurnEvent.remove(
            draw(st.integers(born, HORIZON)), profile_id))
    return initial, ChurnPlan(events)


def _run_both(initial, plan, spec, budget, faults=None, retry=None):
    results = []
    for mode in ("incremental", "rebuild"):
        policy, preemptive = parse_policy_spec(spec)
        results.append(run_churned(
            initial, epoch(), BudgetVector(budget), policy, plan=plan,
            preemptive=preemptive, mode=mode, faults=faults,
            retry=retry))
    return results


def _assert_same_run(incremental, rebuild):
    assert list(incremental.schedule.probes()) == \
        list(rebuild.schedule.probes())
    assert incremental.report == rebuild.report
    assert incremental.probes_used == rebuild.probes_used
    assert incremental.expired == rebuild.expired
    assert incremental.probes_failed == rebuild.probes_failed
    assert incremental.retries == rebuild.retries
    assert incremental.resources_quarantined == \
        rebuild.resources_quarantined
    assert incremental.extras == rebuild.extras


class TestEngineChurnEquivalence:
    @given(scenario=churn_scenarios(),
           spec_index=st.integers(0, len(POLICY_SPECS) - 1),
           budget=st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_incremental_matches_rebuild(self, scenario, spec_index,
                                         budget):
        initial, plan = scenario
        incremental, rebuild = _run_both(
            initial, plan, POLICY_SPECS[spec_index], budget)
        _assert_same_run(incremental, rebuild)

    @given(scenario=churn_scenarios(max_initial=2, max_adds=2),
           spec_index=st.integers(0, len(POLICY_SPECS) - 1),
           budget=st.integers(1, 2), faults=fault_specs(),
           use_retry=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_faulty_churn_matches_rebuild(self, scenario, spec_index,
                                          budget, faults, use_retry):
        initial, plan = scenario
        incremental, rebuild = _run_both(
            initial, plan, POLICY_SPECS[spec_index], budget,
            faults=faults, retry=RetryConfig(1) if use_retry else None)
        _assert_same_run(incremental, rebuild)

    @given(scenario=churn_scenarios(max_initial=2, max_adds=3),
           budget=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_churned_accounting_balances(self, scenario, budget):
        initial, plan = scenario
        incremental, _ = _run_both(initial, plan, "M-EDF(P)", budget)
        report = incremental.report
        captured = sum(c for c, _t in report.per_profile.values())
        assert captured == report.captured
        if any(event.action in ("add", "remove") for event in plan):
            assert "added_profiles" in incremental.extras \
                or not any(e.action == "add" for e in plan)


@st.composite
def offline_churn_scripts(draw, max_profiles: int = 4):
    """A unit-width profile pool plus an add/remove interleaving."""
    pool = [draw(profiles(max_tintervals=2, unit_width=True))
            for _ in range(draw(st.integers(1, max_profiles)))]
    removals = draw(st.lists(
        st.integers(0, len(pool) - 1), unique=True,
        max_size=len(pool) - 1))
    return pool, removals


def _dense_relabel(live_ids):
    """live id -> the dense id ProfileSet assigns (ascending order)."""
    return {profile_id: index
            for index, profile_id in enumerate(sorted(live_ids))}


class TestOfflineChurnEquivalence:
    @given(script=offline_churn_scripts(), budget=st.integers(1, 2))
    @settings(max_examples=60, deadline=None)
    def test_adjacency_matches_from_scratch(self, script, budget):
        pool, removals = script
        budget_vector = BudgetVector(budget)
        inc = IncrementalLocalRatio(epoch(), budget_vector)
        live = {}
        steps = [("add", profile) for profile in pool] + \
            [("remove", profile_id) for profile_id in removals]
        for action, payload in steps:
            if action == "add":
                profile_id = inc.add_profile(payload)
                live[profile_id] = payload
            else:
                inc.remove_profile(payload)
                del live[payload]
            if not live:
                assert len(inc) == 0
                continue
            relabel = _dense_relabel(live)
            snapshot = ProfileSet(
                [live[key] for key in sorted(live)])
            _etas, expected = unit_conflict_adjacency(
                snapshot, budget_vector)
            got_edges = {
                frozenset(((relabel[lp], lt), (relabel[rp], rt)))
                for (lp, lt), neighbors in inc.adjacency.items()
                for (rp, rt) in neighbors}
            expected_edges = {
                frozenset((left, right))
                for left, neighbors in expected.items()
                for right in neighbors}
            got_nodes = {(relabel[p], t) for p, t in inc.adjacency}
            assert got_nodes == set(expected)
            assert got_edges == expected_edges

    @given(script=offline_churn_scripts(), budget=st.integers(1, 2),
           use_lp=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_resolve_matches_from_scratch_solve(self, script, budget,
                                                use_lp):
        pool, removals = script
        budget_vector = BudgetVector(budget)
        inc = IncrementalLocalRatio(epoch(), budget_vector,
                                    use_lp=use_lp)
        live = {}
        for profile in pool:
            live[inc.add_profile(profile)] = profile
        for profile_id in removals:
            inc.remove_profile(profile_id)
            del live[profile_id]
        result = inc.resolve()
        snapshot = ProfileSet([live[key] for key in sorted(live)])
        fresh = LocalRatioApproximation(
            use_lp=use_lp, engine="fast").solve(
            snapshot, epoch(), budget_vector)
        assert list(result.schedule.probes()) == \
            list(fresh.schedule.probes())
        assert result.report.captured == fresh.report.captured
        assert result.report.total == fresh.report.total
        assert result.report.per_rank == fresh.report.per_rank
        assert sorted(result.report.per_profile.values()) == \
            sorted(fresh.report.per_profile.values())
        assert result.extras["accepted"] == fresh.extras["accepted"]
        assert result.extras["gc_with_free_riders"] == \
            fresh.extras["gc_with_free_riders"]
        # The diff-maintained live assigner converges to the same
        # probe multiset as the freshly unwound schedule.
        assert sorted(inc.live_schedule().probes()) == \
            sorted(result.schedule.probes())

    @given(script=offline_churn_scripts(max_profiles=3),
           budget=st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_interleaved_resolves_stay_consistent(self, script, budget):
        # resolve() mid-churn must not corrupt later incremental state.
        pool, removals = script
        budget_vector = BudgetVector(budget)
        inc = IncrementalLocalRatio(epoch(), budget_vector)
        live = {}
        for profile in pool:
            live[inc.add_profile(profile)] = profile
            inc.resolve()
        for profile_id in removals:
            inc.remove_profile(profile_id)
            del live[profile_id]
            inc.resolve()
        final = inc.resolve()
        snapshot = ProfileSet([live[key] for key in sorted(live)])
        fresh = LocalRatioApproximation(engine="fast").solve(
            snapshot, epoch(), budget_vector)
        assert list(final.schedule.probes()) == \
            list(fresh.schedule.probes())
        assert final.report.captured == fresh.report.captured
        inc.close()
        assert len(inc) == 0
        assert inc.live_profile_ids == []
