"""Property-based tests on the offline solvers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector, SolverCapacityError
from repro.offline import (
    EnumerationSolver,
    LocalRatioApproximation,
    MILPSolver,
    ProbeAssigner,
    expand_to_unit_width,
)

from tests.properties.strategies import epoch, profile_sets, tintervals


class TestExactSolverAgreement:
    @given(profiles=profile_sets(max_profiles=2), budget=st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_enumeration_matches_milp(self, profiles, budget):
        budget_vector = BudgetVector(budget)
        try:
            enum_result = EnumerationSolver(node_limit=500_000).solve(
                profiles, epoch(), budget_vector)
        except SolverCapacityError:
            return
        milp_result = MILPSolver().solve(profiles, epoch(),
                                         budget_vector)
        assert enum_result.report.captured == milp_result.report.captured

    @given(profiles=profile_sets(max_profiles=2))
    @settings(max_examples=25, deadline=None)
    def test_enumeration_schedule_achieves_its_count(self, profiles):
        budget_vector = BudgetVector(1)
        try:
            result = EnumerationSolver(node_limit=500_000).solve(
                profiles, epoch(), budget_vector)
        except SolverCapacityError:
            return
        assert result.schedule.respects_budget(budget_vector, epoch())
        # Reconstruction must realize exactly the DFS optimum.
        assert result.report.captured == result.extras["optimal_value"]


class TestLocalRatioProperties:
    @given(profiles=profile_sets())
    @settings(max_examples=25, deadline=None)
    def test_feasible_and_bounded(self, profiles):
        budget_vector = BudgetVector(1)
        approx = LocalRatioApproximation().solve(profiles, epoch(),
                                                 budget_vector)
        optimum = MILPSolver().solve(profiles, epoch(), budget_vector)
        assert approx.schedule.respects_budget(budget_vector, epoch())
        assert approx.report.captured <= optimum.report.captured

    @given(profiles=profile_sets(unit_width=True))
    @settings(max_examples=25, deadline=None)
    def test_unit_ratio_bound(self, profiles):
        budget_vector = BudgetVector(1)
        rank = max(1, profiles.rank)
        approx = LocalRatioApproximation().solve(profiles, epoch(),
                                                 budget_vector)
        optimum = MILPSolver().solve(profiles, epoch(), budget_vector)
        assert approx.report.captured >= \
            optimum.report.captured / (2 * rank + 1) - 1e-9


class TestMatcherProperties:
    @given(etas=st.lists(tintervals(), min_size=1, max_size=8),
           budget=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_accepted_set_always_schedulable(self, etas, budget):
        budget_vector = BudgetVector(budget)
        assigner = ProbeAssigner(epoch(), budget_vector)
        accepted = [eta for eta in etas if assigner.try_add(eta)]
        schedule = assigner.schedule()
        assert schedule.respects_budget(budget_vector, epoch())
        for eta in accepted:
            assert schedule.captures_tinterval(eta)

    @given(etas=st.lists(tintervals(), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_remove_restores_capacity(self, etas):
        budget_vector = BudgetVector(1)
        assigner = ProbeAssigner(epoch(), budget_vector)
        accepted = [eta for eta in etas if assigner.try_add(eta)]
        if not accepted:
            return
        victim = accepted[0]
        assigner.remove(victim)
        # Re-adding the removed t-interval must succeed again.
        assert assigner.try_add(victim)


class TestTransformProperties:
    @given(profiles=profile_sets(max_profiles=2))
    @settings(max_examples=20, deadline=None)
    def test_expansion_preserves_optimum(self, profiles):
        budget_vector = BudgetVector(1)
        try:
            expansion = expand_to_unit_width(profiles,
                                             max_alternatives=3000)
        except SolverCapacityError:
            return
        original_opt = MILPSolver().solve(profiles, epoch(),
                                          budget_vector)
        # Solving the original and mapping through the expansion's
        # capture test must agree: captured originals under the optimal
        # schedule == the optimum count.
        captured = expansion.captured_originals(original_opt.schedule)
        assert len(captured) == original_opt.report.captured

    @given(profiles=profile_sets(max_profiles=2))
    @settings(max_examples=20, deadline=None)
    def test_expansion_unit_width_and_mapped(self, profiles):
        try:
            expansion = expand_to_unit_width(profiles,
                                             max_alternatives=3000)
        except SolverCapacityError:
            return
        assert expansion.expanded.is_unit_width
        expected_keys = {(eta.profile_id, eta.tinterval_id)
                         for eta in expansion.expanded.tintervals()}
        assert set(expansion.alternative_of) == expected_keys
