"""Fast/reference equivalence of the offline optimization pipeline.

The indexed offline path (sweep-line adjacency, lazy-heap Local-Ratio
decomposition, accelerated matcher) must be *observationally identical*
to the pairwise/rescan specification: same accepted t-interval set, same
probe schedule, same gained completeness — on any instance. These
properties are the proof obligations; the speedups in
``BENCH_offline.json`` are only meaningful because of them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.core import BudgetVector
from repro.offline import (
    LocalRatioApproximation,
    ProbeAssigner,
    overlap_adjacency,
    overlap_graph,
    self_infeasible,
    unit_conflict_adjacency,
    unit_conflict_graph,
)

from tests.properties.strategies import epoch, profile_sets, tintervals


def _assert_identical(fast, reference):
    assert fast.extras["accepted"] == reference.extras["accepted"]
    assert sorted(fast.schedule.probes()) \
        == sorted(reference.schedule.probes())
    assert fast.report.captured == reference.report.captured
    assert fast.report.per_profile == reference.report.per_profile
    assert fast.report.per_rank == reference.report.per_rank
    assert fast.report.gc == reference.report.gc
    assert fast.extras["gc_with_free_riders"] \
        == reference.extras["gc_with_free_riders"]


class TestLocalRatioEngineEquivalence:
    @given(profiles=profile_sets(unit_width=True),
           budget=st.sampled_from([1, 3]),
           use_lp=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_unit_width_instances(self, profiles, budget, use_lp):
        budget_vector = BudgetVector(budget)
        fast = LocalRatioApproximation(
            use_lp=use_lp, engine="fast").solve(
            profiles, epoch(), budget_vector)
        reference = LocalRatioApproximation(
            use_lp=use_lp, engine="reference").solve(
            profiles, epoch(), budget_vector)
        _assert_identical(fast, reference)

    @given(profiles=profile_sets(),
           budget=st.sampled_from([1, 3]),
           use_lp=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_general_instances(self, profiles, budget, use_lp):
        budget_vector = BudgetVector(budget)
        fast = LocalRatioApproximation(
            use_lp=use_lp, engine="fast").solve(
            profiles, epoch(), budget_vector)
        reference = LocalRatioApproximation(
            use_lp=use_lp, engine="reference").solve(
            profiles, epoch(), budget_vector)
        _assert_identical(fast, reference)

    @given(profiles=profile_sets(unit_width=True))
    @settings(max_examples=15, deadline=None)
    def test_nonuniform_budget(self, profiles):
        budget_vector = BudgetVector(1, overrides={3: 2, 7: 0})
        fast = LocalRatioApproximation(engine="fast").solve(
            profiles, epoch(), budget_vector)
        reference = LocalRatioApproximation(engine="reference").solve(
            profiles, epoch(), budget_vector)
        _assert_identical(fast, reference)

    def test_unknown_engine_rejected(self):
        import pytest
        with pytest.raises(ValueError, match="engine"):
            LocalRatioApproximation(engine="turbo")


class TestAdjacencyEquivalence:
    @given(profiles=profile_sets(unit_width=True),
           budget=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_unit_sweep_matches_pairwise(self, profiles, budget):
        budget_vector = BudgetVector(budget)
        graph = unit_conflict_graph(profiles, budget_vector)
        etas, adjacency = unit_conflict_adjacency(profiles, budget_vector)
        assert set(adjacency) == set(graph.nodes)
        fast_edges = {frozenset((left, right))
                      for left, neighbors in adjacency.items()
                      for right in neighbors}
        assert fast_edges == {frozenset(edge) for edge in graph.edges}

    @given(profiles=profile_sets())
    @settings(max_examples=40, deadline=None)
    def test_overlap_sweep_matches_pairwise(self, profiles):
        graph = overlap_graph(profiles)
        _etas, adjacency = overlap_adjacency(profiles)
        assert set(adjacency) == set(graph.nodes)
        fast_edges = {frozenset((left, right))
                      for left, neighbors in adjacency.items()
                      for right in neighbors}
        assert fast_edges == {frozenset(edge) for edge in graph.edges}

    @given(profiles=profile_sets(), budget=st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_overlap_sweep_budget_filter(self, profiles, budget):
        budget_vector = BudgetVector(budget)
        graph = overlap_graph(profiles)
        for eta in profiles.tintervals():
            if self_infeasible(eta, budget_vector):
                key = (eta.profile_id, eta.tinterval_id)
                if graph.has_node(key):
                    graph.remove_node(key)
        _etas, adjacency = overlap_adjacency(profiles, budget_vector)
        assert set(adjacency) == set(graph.nodes)
        fast_edges = {frozenset((left, right))
                      for left, neighbors in adjacency.items()
                      for right in neighbors}
        assert fast_edges == {frozenset(edge) for edge in graph.edges}
        assert isinstance(graph, nx.Graph)


class TestMatcherModeEquivalence:
    @given(etas=st.lists(tintervals(), min_size=1, max_size=10),
           budget=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_fast_and_naive_agree_per_insert(self, etas, budget):
        budget_vector = BudgetVector(budget)
        fast = ProbeAssigner(epoch(), budget_vector, fast=True)
        naive = ProbeAssigner(epoch(), budget_vector, fast=False)
        for eta in etas:
            assert fast.try_add(eta) == naive.try_add(eta)
        assert sorted(fast.schedule().probes()) \
            == sorted(naive.schedule().probes())

    @given(etas=st.lists(tintervals(unit_width=True),
                         min_size=1, max_size=12),
           budget=st.integers(1, 2))
    @settings(max_examples=60, deadline=None)
    def test_unit_shortcut_regime(self, etas, budget):
        budget_vector = BudgetVector(budget)
        fast = ProbeAssigner(epoch(), budget_vector, fast=True)
        naive = ProbeAssigner(epoch(), budget_vector, fast=False)
        for eta in etas:
            assert fast.try_add(eta) == naive.try_add(eta)
        assert sorted(fast.schedule().probes()) \
            == sorted(naive.schedule().probes())

    @given(etas=st.lists(tintervals(), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_rejections_leave_fast_state_consistent(self, etas):
        # Interleave accepts and rejects, then verify the final fast
        # schedule is feasible and captures exactly the accepted etas.
        budget_vector = BudgetVector(1)
        fast = ProbeAssigner(epoch(), budget_vector, fast=True)
        accepted = [eta for eta in etas if fast.try_add(eta)]
        schedule = fast.schedule()
        assert schedule.respects_budget(budget_vector, epoch())
        for eta in accepted:
            assert schedule.captures_tinterval(eta)
