"""Shared hypothesis strategies for model objects."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import (
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)

HORIZON = 16
NUM_RESOURCES = 4


@st.composite
def execution_intervals(draw, horizon: int = HORIZON,
                        num_resources: int = NUM_RESOURCES,
                        unit_width: bool = False) -> ExecutionInterval:
    resource = draw(st.integers(0, num_resources - 1))
    start = draw(st.integers(1, horizon))
    if unit_width:
        finish = start
    else:
        finish = min(horizon, start + draw(st.integers(0, 4)))
    return ExecutionInterval(resource, start, finish)


@st.composite
def tintervals(draw, max_eis: int = 3,
               unit_width: bool = False) -> TInterval:
    eis = draw(st.lists(execution_intervals(unit_width=unit_width),
                        min_size=1, max_size=max_eis))
    return TInterval(eis)


@st.composite
def profiles(draw, max_tintervals: int = 3,
             unit_width: bool = False) -> Profile:
    etas = draw(st.lists(tintervals(unit_width=unit_width),
                         min_size=1, max_size=max_tintervals))
    return Profile(etas)


@st.composite
def profile_sets(draw, max_profiles: int = 3,
                 unit_width: bool = False) -> ProfileSet:
    members = draw(st.lists(profiles(unit_width=unit_width),
                            min_size=1, max_size=max_profiles))
    return ProfileSet(members)


def epoch() -> Epoch:
    return Epoch(HORIZON)
