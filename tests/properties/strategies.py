"""Shared hypothesis strategies for model objects."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import (
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)
from repro.faults import FaultSpec, Outage

HORIZON = 16
NUM_RESOURCES = 4


@st.composite
def execution_intervals(draw, horizon: int = HORIZON,
                        num_resources: int = NUM_RESOURCES,
                        unit_width: bool = False) -> ExecutionInterval:
    resource = draw(st.integers(0, num_resources - 1))
    start = draw(st.integers(1, horizon))
    if unit_width:
        finish = start
    else:
        finish = min(horizon, start + draw(st.integers(0, 4)))
    return ExecutionInterval(resource, start, finish)


@st.composite
def tintervals(draw, max_eis: int = 3,
               unit_width: bool = False) -> TInterval:
    eis = draw(st.lists(execution_intervals(unit_width=unit_width),
                        min_size=1, max_size=max_eis))
    return TInterval(eis)


@st.composite
def profiles(draw, max_tintervals: int = 3,
             unit_width: bool = False) -> Profile:
    etas = draw(st.lists(tintervals(unit_width=unit_width),
                         min_size=1, max_size=max_tintervals))
    return Profile(etas)


@st.composite
def profile_sets(draw, max_profiles: int = 3,
                 unit_width: bool = False) -> ProfileSet:
    members = draw(st.lists(profiles(unit_width=unit_width),
                            min_size=1, max_size=max_profiles))
    return ProfileSet(members)


def epoch() -> Epoch:
    return Epoch(HORIZON)


@st.composite
def fault_specs(draw, num_resources: int = NUM_RESOURCES,
                with_per_resource: bool = False) -> FaultSpec:
    """A valid random fault model over ``num_resources`` resources.

    Outage windows for one resource are kept disjoint (adjacent is
    fine) — :class:`FaultSpec` rejects overlaps at construction — and a
    resource with a permanent window gets no further windows.
    """
    outages = []
    next_free: dict[int, int] = {}
    permanent_out: set[int] = set()
    for _ in range(draw(st.integers(0, 2))):
        resource_id = draw(st.integers(0, num_resources - 1))
        if resource_id in permanent_out:
            continue
        start = next_free.get(resource_id, 0) + draw(st.integers(0, 8))
        if draw(st.booleans()):
            last = None
            permanent_out.add(resource_id)
        else:
            last = start + draw(st.integers(0, 6))
            next_free[resource_id] = last + 1
        outages.append(Outage(resource_id, start, last))
    per_resource = {}
    if with_per_resource:
        per_resource = draw(st.dictionaries(
            st.integers(0, num_resources - 1), st.floats(0.0, 1.0),
            max_size=2))
    return FaultSpec(
        failure_probability=draw(st.floats(0.0, 0.9)),
        timeout_probability=draw(st.floats(0.0, 0.3)),
        stale_probability=draw(st.floats(0.0, 0.5)),
        stale_lag=draw(st.integers(0, 3)),
        outages=tuple(outages),
        per_resource=per_resource,
        max_probes_per_chronon=draw(
            st.one_of(st.none(), st.integers(1, 3))),
        seed=draw(st.integers(0, 2**16)),
    )
