"""Property-based tests on the core model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Schedule,
    evaluate_schedule,
    gained_completeness,
)

from tests.properties.strategies import (
    HORIZON,
    NUM_RESOURCES,
    epoch,
    profile_sets,
    tintervals,
)

probe_lists = st.lists(
    st.tuples(st.integers(0, NUM_RESOURCES - 1),
              st.integers(1, HORIZON)),
    max_size=30,
)


class TestScheduleProperties:
    @given(probes=probe_lists)
    def test_probe_count_bounded_by_distinct_pairs(self, probes):
        schedule = Schedule(probes)
        assert len(schedule) == len(set(probes))

    @given(probes=probe_lists)
    def test_probes_round_trip(self, probes):
        schedule = Schedule(probes)
        assert set(schedule.probes()) == set(probes)

    @given(probes=probe_lists, extra=st.tuples(
        st.integers(0, NUM_RESOURCES - 1), st.integers(1, HORIZON)))
    def test_adding_probe_is_idempotent(self, probes, extra):
        schedule = Schedule(probes)
        schedule.add_probe(*extra)
        before = len(schedule)
        schedule.add_probe(*extra)
        assert len(schedule) == before

    @given(probes=probe_lists, eta=tintervals())
    def test_capture_requires_probe_in_every_window(self, probes, eta):
        schedule = Schedule(probes)
        captured = schedule.captures_tinterval(eta)
        manual = all(
            any(probe_resource == ei.resource_id
                and ei.start <= probe_chronon <= ei.finish
                for probe_resource, probe_chronon in probes)
            for ei in eta
        )
        assert captured == manual


class TestCompletenessProperties:
    @given(profiles=profile_sets(), probes=probe_lists)
    @settings(max_examples=50)
    def test_gc_in_unit_interval(self, profiles, probes):
        gc = gained_completeness(profiles, Schedule(probes))
        assert 0.0 <= gc <= 1.0

    @given(profiles=profile_sets(), probes=probe_lists, extra=st.tuples(
        st.integers(0, NUM_RESOURCES - 1), st.integers(1, HORIZON)))
    @settings(max_examples=50)
    def test_gc_monotone_in_probes(self, profiles, probes, extra):
        base = gained_completeness(profiles, Schedule(probes))
        bigger = gained_completeness(profiles,
                                     Schedule(probes + [extra]))
        assert bigger >= base

    @given(profiles=profile_sets(), probes=probe_lists)
    @settings(max_examples=50)
    def test_report_counts_consistent(self, profiles, probes):
        report = evaluate_schedule(profiles, Schedule(probes))
        assert report.total == profiles.total_tintervals
        assert 0 <= report.captured <= report.total
        assert sum(c for c, _t in report.per_profile.values()) == \
            report.captured
        assert sum(c for c, _t in report.per_rank.values()) == \
            report.captured

    @given(profiles=profile_sets())
    @settings(max_examples=30)
    def test_full_probing_captures_everything_in_epoch(self, profiles):
        # Probing every resource at every chronon captures every
        # t-interval whose windows intersect the epoch.
        schedule = Schedule([
            (resource, chronon)
            for resource in range(NUM_RESOURCES)
            for chronon in range(1, HORIZON + 1)
        ])
        report = evaluate_schedule(profiles, schedule)
        assert report.captured == report.total


class TestBudgetProperties:
    @given(default=st.integers(0, 3),
           overrides=st.dictionaries(st.integers(1, HORIZON),
                                     st.integers(0, 5), max_size=4))
    def test_max_over_is_max(self, default, overrides):
        budget = BudgetVector(default, overrides)
        values = [budget.at(chronon) for chronon in epoch()]
        assert budget.max_over(epoch()) == max(values)

    @given(default=st.integers(0, 3),
           overrides=st.dictionaries(st.integers(1, HORIZON),
                                     st.integers(0, 5), max_size=4))
    def test_total_over_is_sum(self, default, overrides):
        budget = BudgetVector(default, overrides)
        values = [budget.at(chronon) for chronon in epoch()]
        assert budget.total_over(epoch()) == sum(values)


class TestIntervalProperties:
    @given(eta=tintervals())
    def test_span_contains_all_eis(self, eta):
        for ei in eta:
            assert eta.earliest_start <= ei.start
            assert ei.finish <= eta.latest_finish

    @given(first=st.integers(1, HORIZON), width=st.integers(0, 5))
    def test_width_matches_chronons(self, first, width):
        ei = ExecutionInterval(0, first, first + width)
        assert ei.width == len(list(ei.chronons()))

    @given(eta=tintervals())
    def test_unit_width_iff_all_unit(self, eta):
        assert eta.is_unit_width == all(ei.is_unit for ei in eta)
