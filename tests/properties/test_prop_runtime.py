"""Property-based agreement between the runtime proxy and the simulator.

The runtime (servers + notifications) and the measurement simulator share
the scheduling core; on any instance they must capture exactly the same
t-intervals, and every notification must correspond to a capture.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector, Profile, TInterval
from repro.online import MEDFPolicy, MRSFPolicy, SEDFPolicy
from repro.runtime import MonitoringProxy, OriginServer
from repro.simulation import run_online
from repro.traces import UpdateTrace

from tests.properties.strategies import epoch, profile_sets

POLICIES = [SEDFPolicy, MRSFPolicy, MEDFPolicy]


def _bare_copy(profiles):
    return [Profile([TInterval(eta.eis) for eta in profile],
                    name=profile.name)
            for profile in profiles]


class TestRuntimeSimulatorAgreement:
    @given(profiles=profile_sets(), policy_index=st.integers(0, 2),
           budget=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_same_capture_counts(self, profiles, policy_index, budget):
        budget_vector = BudgetVector(budget)
        sim = run_online(profiles, epoch(), budget_vector,
                         POLICIES[policy_index]())

        server = OriginServer(UpdateTrace([], epoch()))
        proxy = MonitoringProxy(server, epoch(), budget_vector,
                                POLICIES[policy_index]())
        client = proxy.register_client()
        for profile in _bare_copy(profiles):
            proxy.register_profile(client, profile)
        stats = proxy.run()

        assert stats.completed == sim.report.captured
        assert stats.expired == sim.expired
        assert len(client.mailbox) == stats.completed

    @given(profiles=profile_sets(), policy_index=st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_identical_probe_schedules(self, profiles, policy_index):
        budget_vector = BudgetVector(1)
        sim = run_online(profiles, epoch(), budget_vector,
                         POLICIES[policy_index]())

        server = OriginServer(UpdateTrace([], epoch()))
        proxy = MonitoringProxy(server, epoch(), budget_vector,
                                POLICIES[policy_index]())
        client = proxy.register_client()
        for profile in _bare_copy(profiles):
            proxy.register_profile(client, profile)
        proxy.run()

        assert list(proxy.schedule.probes()) == \
            list(sim.schedule.probes())

    @given(profiles=profile_sets())
    @settings(max_examples=30, deadline=None)
    def test_accounting_invariant(self, profiles):
        server = OriginServer(UpdateTrace([], epoch()))
        proxy = MonitoringProxy(server, epoch(), BudgetVector(1),
                                MRSFPolicy())
        client = proxy.register_client()
        for profile in _bare_copy(profiles):
            proxy.register_profile(client, profile)
        stats = proxy.run()
        assert stats.registered == (stats.completed + stats.expired
                                    + stats.dropped)
