"""Property-based tests on the online simulator and policies.

Includes the empirical counterparts of the paper's propositions:

* Proposition 4 — MRSF is k-competitive on overlap-free instances;
* Proposition 5 — M-EDF coincides with MRSF on ``P^[1]`` instances
  (checked as outcome equivalence within a small tolerance; the paper
  states equivalence of the policies' behavior, and tie-breaking noise
  can shift a capture or two on dense instances).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector, evaluate_schedule
from repro.offline import MILPSolver
from repro.online import MEDFPolicy, MRSFPolicy, SEDFPolicy
from repro.simulation import run_online

from tests.properties.strategies import epoch, profile_sets

POLICIES = [SEDFPolicy, MRSFPolicy, MEDFPolicy]


class TestSimulatorInvariants:
    @given(profiles=profile_sets(), budget=st.integers(0, 3),
           policy_index=st.integers(0, 2),
           preemptive=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_schedule_respects_budget(self, profiles, budget,
                                      policy_index, preemptive):
        budget_vector = BudgetVector(budget)
        result = run_online(profiles, epoch(), budget_vector,
                            POLICIES[policy_index](),
                            preemptive=preemptive)
        assert result.schedule.respects_budget(budget_vector, epoch())

    @given(profiles=profile_sets(), policy_index=st.integers(0, 2),
           preemptive=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_accounting_adds_up(self, profiles, policy_index,
                                preemptive):
        result = run_online(profiles, epoch(), BudgetVector(1),
                            POLICIES[policy_index](),
                            preemptive=preemptive)
        assert (result.report.captured + result.expired
                == profiles.total_tintervals)

    @given(profiles=profile_sets(), policy_index=st.integers(0, 2))
    @settings(max_examples=60, deadline=None)
    def test_report_agrees_with_schedule_evaluation(self, profiles,
                                                    policy_index):
        result = run_online(profiles, epoch(), BudgetVector(1),
                            POLICIES[policy_index]())
        rescored = evaluate_schedule(profiles, result.schedule)
        assert rescored.captured == result.report.captured

    @given(profiles=profile_sets(), policy_index=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, profiles, policy_index):
        first = run_online(profiles, epoch(), BudgetVector(1),
                           POLICIES[policy_index]())
        second = run_online(profiles, epoch(), BudgetVector(1),
                            POLICIES[policy_index]())
        assert list(first.schedule.probes()) == \
            list(second.schedule.probes())

    @given(profiles=profile_sets(), policy_index=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_never_beats_offline_optimum(self, profiles, policy_index):
        budget = BudgetVector(1)
        online = run_online(profiles, epoch(), budget,
                            POLICIES[policy_index]())
        optimum = MILPSolver().solve(profiles, epoch(), budget)
        assert online.report.captured <= optimum.report.captured


class TestPaperPropositions:
    # NOTE: Proposition 5 (M-EDF == MRSF on P^[1]) is checked at workload
    # scale in tests/integration/test_propositions.py — on adversarial
    # micro-instances the two score formulas can diverge by a few
    # captures, so a hypothesis-level exact-equality property would
    # overstate what the implementation (and, we believe, the paper's
    # short statement) guarantees. See DESIGN.md §6.

    @given(profiles=profile_sets())
    @settings(max_examples=25, deadline=None)
    def test_proposition4_mrsf_k_competitive_without_overlap(
            self, profiles):
        if profiles.has_intra_resource_overlap():
            return  # the proposition's precondition
        rank = max(1, profiles.rank)
        budget = BudgetVector(1)
        online = run_online(profiles, epoch(), budget, MRSFPolicy())
        optimum = MILPSolver().solve(profiles, epoch(), budget)
        assert online.report.captured >= \
            optimum.report.captured / rank - 1e-9

    @given(profiles=profile_sets(unit_width=True))
    @settings(max_examples=30, deadline=None)
    def test_rank_one_unit_width_online_is_optimal(self, profiles):
        # Per-chronon max-coverage greedy is optimal for rank-1 P^[1]
        # instances (chronons decouple) — the paper's §5.3 observation.
        if profiles.rank != 1:
            return
        budget = BudgetVector(1)
        online = run_online(profiles, epoch(), budget, SEDFPolicy())
        optimum = MILPSolver().solve(profiles, epoch(), budget)
        assert online.report.captured == optimum.report.captured
