"""Equivalence property: the fast engine IS the reference engine.

The event-indexed :class:`~repro.simulation.engine.FastProxySimulator`
exists purely as an optimization — for every input it must produce the
*same run* as the straightforward per-chronon
:class:`~repro.simulation.proxy.ProxySimulator`: the identical probe
schedule (probe for probe), the identical completeness accounting, and
the identical fault/retry/breaker counters. These properties drive both
engines over randomly generated profile sets for every registered policy
variant, with and without an injected fault layer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector
from repro.faults import CircuitBreaker, RetryConfig
from repro.online.registry import parse_policy_spec
from repro.simulation import run_online

from tests.properties.strategies import epoch, fault_specs, profile_sets

#: Every policy family, with the preemption mode the paper pairs it with
#: plus the opposite mode for the two schedule-sensitive families.
POLICY_SPECS = [
    "S-EDF(P)", "S-EDF(NP)",
    "M-EDF(P)", "M-EDF(NP)",
    "MRSF(P)", "ANTI-MRSF(P)",
    "FCFS(P)", "LFF(NP)",
    "STATICRANK(P)", "COVERAGE(P)", "RANDOM(NP)",
]


def _run_both(profiles, spec, budget, faults=None, retry=None,
              breaker_args=None):
    results = []
    for engine in ("reference", "fast"):
        policy, preemptive = parse_policy_spec(spec)
        breaker = CircuitBreaker(**breaker_args) if breaker_args else None
        results.append(run_online(
            profiles, epoch(), BudgetVector(budget), policy,
            preemptive=preemptive, faults=faults, retry=retry,
            breaker=breaker, engine=engine))
    return results


def _assert_same_run(reference, fast):
    assert list(fast.schedule.probes()) == \
        list(reference.schedule.probes())
    assert fast.label == reference.label
    assert fast.report == reference.report
    assert fast.probes_used == reference.probes_used
    assert fast.expired == reference.expired
    assert fast.probes_failed == reference.probes_failed
    assert fast.retries == reference.retries
    assert fast.resources_quarantined == reference.resources_quarantined
    assert fast.extras == reference.extras


class TestEngineEquivalence:
    @given(profiles=profile_sets(max_profiles=4),
           spec_index=st.integers(0, len(POLICY_SPECS) - 1),
           budget=st.integers(1, 3))
    @settings(max_examples=120, deadline=None)
    def test_reliable_runs_identical(self, profiles, spec_index, budget):
        reference, fast = _run_both(
            profiles, POLICY_SPECS[spec_index], budget)
        _assert_same_run(reference, fast)

    @given(profiles=profile_sets(max_profiles=3),
           spec_index=st.integers(0, len(POLICY_SPECS) - 1),
           budget=st.integers(1, 3), faults=fault_specs(),
           use_retry=st.booleans(), use_breaker=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_faulty_runs_identical(self, profiles, spec_index, budget,
                                   faults, use_retry, use_breaker):
        reference, fast = _run_both(
            profiles, POLICY_SPECS[spec_index], budget, faults=faults,
            retry=RetryConfig(1) if use_retry else None,
            breaker_args={"failure_threshold": 2, "cooldown": 3}
            if use_breaker else None)
        _assert_same_run(reference, fast)
