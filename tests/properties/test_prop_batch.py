"""Equivalence property: the columnar batch engine IS the fast engine.

:func:`~repro.simulation.batch.run_block` advances every lane of a
(policy x budget x instance) block in one vectorized pass; it exists
purely as a throughput optimization, so probe for probe each lane must
reproduce exactly what the per-combination fast engine produces for the
same (instance, policy, budget) — schedule, completeness accounting and
counters. These properties drive single-lane blocks, full diverging
line-ups and multi-instance mega blocks over random profile sets, plus
the ``run_online(engine="batch")`` entry point (including its fall-back
for policies without a columnar kind).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector
from repro.online.registry import parse_policy_spec
from repro.simulation import run_block, run_online

from tests.properties.strategies import epoch, profile_sets

#: Every policy family with a columnar scoring kind (all of the paper's
#: line-up except RANDOM, which is inherently per-run stateful).
BATCH_SPECS = [
    "S-EDF(P)", "S-EDF(NP)",
    "M-EDF(P)", "M-EDF(NP)",
    "MRSF(P)", "ANTI-MRSF(P)",
    "FCFS(P)", "LFF(NP)",
    "STATICRANK(P)", "COVERAGE(P)",
]


@st.composite
def budget_vectors(draw) -> BudgetVector:
    default = draw(st.integers(1, 3))
    overrides = draw(st.dictionaries(
        st.integers(1, 12), st.integers(0, 4), max_size=2))
    return BudgetVector(default, overrides or None)


def _fast(profiles, spec, budget):
    policy, preemptive = parse_policy_spec(spec)
    return run_online(profiles, epoch(), budget, policy,
                      preemptive=preemptive, engine="fast")


def _assert_same_run(fast, batch):
    assert list(batch.schedule.probes()) == list(fast.schedule.probes())
    assert batch.label == fast.label
    assert batch.report == fast.report
    assert batch.probes_used == fast.probes_used
    assert batch.expired == fast.expired


class TestBatchEquivalence:
    @given(profiles=profile_sets(max_profiles=4),
           spec_index=st.integers(0, len(BATCH_SPECS) - 1),
           budget=budget_vectors())
    @settings(max_examples=100, deadline=None)
    def test_single_lane_block(self, profiles, spec_index, budget):
        spec = BATCH_SPECS[spec_index]
        policy, preemptive = parse_policy_spec(spec)
        batch, = run_block(profiles, epoch(),
                           [(policy, preemptive, budget)])
        _assert_same_run(_fast(profiles, spec, budget), batch)

    @given(profiles=profile_sets(max_profiles=4),
           budget=budget_vectors())
    @settings(max_examples=40, deadline=None)
    def test_full_lineup_block(self, profiles, budget):
        """All ten policies as lanes of ONE block, vs. one-at-a-time."""
        lanes = []
        for spec in BATCH_SPECS:
            policy, preemptive = parse_policy_spec(spec)
            lanes.append((policy, preemptive, budget))
        results = run_block(profiles, epoch(), lanes)
        for spec, batch in zip(BATCH_SPECS, results):
            _assert_same_run(_fast(profiles, spec, budget), batch)

    @given(profiles=profile_sets(max_profiles=3),
           spec_index=st.integers(0, len(BATCH_SPECS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_diverging_budget_lanes(self, profiles, spec_index):
        """Same policy under different budgets diverges lane from lane —
        each must still match its own fast run."""
        spec = BATCH_SPECS[spec_index]
        policy, preemptive = parse_policy_spec(spec)
        budgets = [BudgetVector(k) for k in (1, 2, 3)]
        results = run_block(
            profiles, epoch(),
            [(policy, preemptive, b) for b in budgets])
        for budget, batch in zip(budgets, results):
            _assert_same_run(_fast(profiles, spec, budget), batch)

    @given(insts=st.lists(profile_sets(max_profiles=3),
                          min_size=2, max_size=3),
           spec_index=st.integers(0, len(BATCH_SPECS) - 1),
           budget=budget_vectors())
    @settings(max_examples=40, deadline=None)
    def test_multi_instance_mega_block(self, insts, spec_index, budget):
        """Several instances share one column space; lanes only ever see
        their own instance's states."""
        spec = BATCH_SPECS[spec_index]
        policy, preemptive = parse_policy_spec(spec)
        lanes = [(policy, preemptive, budget, at)
                 for at in range(len(insts))]
        results = run_block(insts, epoch(), lanes)
        for profiles, batch in zip(insts, results):
            _assert_same_run(_fast(profiles, spec, budget), batch)

    @given(profiles=profile_sets(max_profiles=4),
           spec_index=st.integers(0, len(BATCH_SPECS) - 1),
           budget=budget_vectors())
    @settings(max_examples=60, deadline=None)
    def test_run_online_engine_batch(self, profiles, spec_index, budget):
        spec = BATCH_SPECS[spec_index]
        policy, preemptive = parse_policy_spec(spec)
        batch = run_online(profiles, epoch(), budget, policy,
                           preemptive=preemptive, engine="batch")
        _assert_same_run(_fast(profiles, spec, budget), batch)

    @given(profiles=profile_sets(max_profiles=3),
           budget=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_run_online_batch_falls_back_for_random(self, profiles,
                                                    budget):
        """RANDOM has no columnar kind; engine="batch" silently runs the
        fast engine and still produces the seeded-identical run."""
        policy, preemptive = parse_policy_spec("RANDOM(NP)")
        batch = run_online(profiles, epoch(), BudgetVector(budget),
                           policy, preemptive=preemptive, engine="batch")
        policy, preemptive = parse_policy_spec("RANDOM(NP)")
        fast = run_online(profiles, epoch(), BudgetVector(budget),
                          policy, preemptive=preemptive, engine="fast")
        _assert_same_run(fast, batch)
