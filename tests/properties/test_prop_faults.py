"""Property tests for the fault layer.

The load-bearing invariant: no matter what fault schedule the origin
server throws at the proxy — drops, outages, throttling, retries,
breaker quarantines — and no matter when profiles are registered or
unregistered, the flushed accounting always satisfies
``registered == completed + expired + dropped``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector, Profile, TInterval
from repro.faults import (
    CircuitBreaker,
    RetryConfig,
    UnreliableServer,
)
from repro.online import MEDFPolicy, MRSFPolicy, SEDFPolicy
from repro.runtime import MonitoringProxy, OriginServer
from repro.traces import UpdateTrace

from tests.properties.strategies import epoch, fault_specs, profile_sets

POLICIES = [SEDFPolicy, MRSFPolicy, MEDFPolicy]


def _bare_copy(profiles):
    return [Profile([TInterval(eta.eis) for eta in profile],
                    name=profile.name)
            for profile in profiles]


class TestFlushInvariantUnderFaults:
    @given(profiles=profile_sets(), spec=fault_specs(),
           policy_index=st.integers(0, 2), budget=st.integers(1, 3),
           use_retry=st.booleans(), use_breaker=st.booleans(),
           unregister_mask=st.integers(0, 7),
           unregister_at=st.integers(1, 15))
    @settings(max_examples=60, deadline=None)
    def test_registered_equals_completed_expired_dropped(
            self, profiles, spec, policy_index, budget, use_retry,
            use_breaker, unregister_mask, unregister_at):
        server = UnreliableServer(
            OriginServer(UpdateTrace([], epoch())), spec)
        proxy = MonitoringProxy(
            server, epoch(), BudgetVector(budget),
            POLICIES[policy_index](),
            retry=RetryConfig(1) if use_retry else None,
            breaker=CircuitBreaker(failure_threshold=2, cooldown=3)
            if use_breaker else None)
        client = proxy.register_client()
        profile_ids = [proxy.register_profile(client, profile)
                       for profile in _bare_copy(profiles)]

        # Drive the run manually, unregistering a mask-selected subset
        # of the profiles mid-epoch.
        while proxy.clock < epoch().last:
            chronon = proxy.step()
            if chronon == unregister_at:
                for index, profile_id in enumerate(profile_ids):
                    if unregister_mask & (1 << index):
                        proxy.unregister_profile(profile_id)
        stats = proxy.run()

        assert stats.registered == \
            stats.completed + stats.expired + stats.dropped
        assert stats.pending == 0
        # Notifications agree with completions, and the schedule only
        # holds successful probes.
        assert len(client.mailbox) == stats.completed
        assert stats.probes_used == len(proxy.schedule)

    @given(profiles=profile_sets(), spec=fault_specs(),
           policy_index=st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_faulty_runs_are_reproducible(self, profiles, spec,
                                          policy_index):
        def run_once():
            server = UnreliableServer(
                OriginServer(UpdateTrace([], epoch())), spec)
            proxy = MonitoringProxy(server, epoch(), BudgetVector(1),
                                    POLICIES[policy_index](),
                                    retry=RetryConfig(1))
            client = proxy.register_client()
            for profile in _bare_copy(profiles):
                proxy.register_profile(client, profile)
            stats = proxy.run()
            return (stats, sorted(proxy.schedule.probes()))

        assert run_once() == run_once()
