"""Property-based cross-checks of analysis statistics and conflict graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compute_stats
from repro.core import BudgetVector, Epoch
from repro.offline import ProbeAssigner, unit_conflict_graph

from tests.properties.strategies import (
    HORIZON,
    epoch,
    profile_sets,
)


class TestStatsAgainstBruteForce:
    @given(profiles=profile_sets())
    @settings(max_examples=50)
    def test_peak_demand_matches_per_chronon_scan(self, profiles):
        stats = compute_stats(profiles, epoch(), BudgetVector(1))
        brute = 0
        for chronon in range(1, HORIZON + 1):
            active = {
                ei.resource_id
                for eta in profiles.tintervals()
                for ei in eta
                if ei.start <= chronon <= ei.finish
            }
            brute = max(brute, len(active))
        assert stats.peak_demand == brute

    @given(profiles=profile_sets())
    @settings(max_examples=50)
    def test_overlap_rate_matches_pairwise_scan(self, profiles):
        stats = compute_stats(profiles, epoch(), BudgetVector(1))
        eis = [ei for eta in profiles.tintervals() for ei in eta]
        overlapping = 0
        for index, left in enumerate(eis):
            if any(left.resource_id == right.resource_id
                   and left.overlaps(right)
                   for position, right in enumerate(eis)
                   if position != index):
                overlapping += 1
        expected = overlapping / len(eis) if eis else 0.0
        assert stats.intra_resource_overlap_rate == \
            __import__("pytest").approx(expected)

    @given(profiles=profile_sets())
    @settings(max_examples=50)
    def test_counts_consistent(self, profiles):
        stats = compute_stats(profiles, epoch(), BudgetVector(1))
        assert stats.num_tintervals == profiles.total_tintervals
        assert stats.num_eis >= stats.num_tintervals
        assert 0.0 <= stats.unit_width_fraction <= 1.0
        assert stats.rank == profiles.rank


class TestConflictGraphSemantics:
    @given(profiles=profile_sets(unit_width=True),
           budget=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_edge_iff_pair_not_jointly_schedulable(self, profiles,
                                                   budget):
        """For P^[1]: two (individually feasible) t-intervals conflict
        exactly when they cannot be scheduled together."""
        budget_vector = BudgetVector(budget)
        graph = unit_conflict_graph(profiles, budget_vector)
        nodes = list(graph.nodes)
        for index, left in enumerate(nodes):
            for right in nodes[index + 1:]:
                assigner = ProbeAssigner(epoch(), budget_vector)
                assert assigner.try_add(graph.nodes[left]["eta"])
                jointly = assigner.try_add(graph.nodes[right]["eta"])
                if graph.has_edge(left, right):
                    assert not jointly, (
                        f"edge {left}-{right} but jointly schedulable")
                else:
                    assert jointly, (
                        f"no edge {left}-{right} but infeasible pair")
