"""Equivalence property: the batch fault plane IS the fast fault layer.

The columnar engine lowers :class:`FaultSpec` draws, retries and the
circuit breaker into lane-major columns (``docs/ALGORITHMS.md`` §14);
it exists purely as a throughput optimization, so every faulty lane
must reproduce the fast engine's run *probe for probe* — schedule,
completeness accounting, fault counters, the quarantine set, breaker
end state, and (for recording injectors) the full
:class:`~repro.faults.model.FaultTrace`, retries and breaker-gated
trials included. Fault sources the plane cannot lower (e.g. replayed
traces) must fall back to the fast engine, not silently diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    RecordedFaults,
    RetryConfig,
)
from repro.online.registry import parse_policy_spec
from repro.simulation import run_online
from repro.simulation.batch import BatchUnsupported, FaultLane, run_block

from tests.properties.strategies import epoch, fault_specs, profile_sets

#: A cross-section of columnar policy kinds, (P) and (NP) both: faults
#: interact with preemption (P lanes re-select, NP lanes commit).
FAULT_POLICIES = [
    "S-EDF(P)", "S-EDF(NP)",
    "MRSF(P)", "MRSF(NP)",
    "M-EDF(NP)", "COVERAGE(P)",
    "FCFS(NP)", "LFF(P)",
]


@st.composite
def breaker_params(draw):
    """(threshold, cooldown, backoff, max_cooldown) or None."""
    if not draw(st.booleans()):
        return None
    return (draw(st.integers(1, 3)), draw(st.integers(1, 4)),
            draw(st.floats(1.0, 2.5)), draw(st.integers(4, 16)))


@st.composite
def retry_configs(draw):
    if not draw(st.booleans()):
        return None
    return RetryConfig(max_retries=draw(st.integers(0, 3)))


def _make_breaker(params):
    if params is None:
        return None
    threshold, cooldown, backoff, max_cooldown = params
    return CircuitBreaker(failure_threshold=threshold, cooldown=cooldown,
                          backoff_factor=backoff,
                          max_cooldown=max_cooldown)


def _breaker_state(breaker):
    if breaker is None:
        return None
    return (breaker.ever_quarantined,
            {rid: (state.consecutive_failures, state.open_until,
                   state.trips)
             for rid, state in breaker._states.items()})


def _assert_same_faulty_run(fast, batch, fast_side, batch_side):
    """fast/batch are results; *_side are (injector, breaker) pairs."""
    assert list(batch.schedule.probes()) == list(fast.schedule.probes())
    assert batch.report == fast.report
    assert batch.probes_used == fast.probes_used
    assert batch.expired == fast.expired
    assert batch.probes_failed == fast.probes_failed
    assert batch.retries == fast.retries
    assert batch.resources_quarantined == fast.resources_quarantined
    fast_injector, fast_breaker = fast_side
    batch_injector, batch_breaker = batch_side
    if fast_injector is not None:
        assert list(batch_injector.trace) == list(fast_injector.trace)
    assert _breaker_state(batch_breaker) == _breaker_state(fast_breaker)


class TestBatchFaultEquivalence:
    @given(profiles=profile_sets(max_profiles=4),
           spec=fault_specs(with_per_resource=True),
           policy_index=st.integers(0, len(FAULT_POLICIES) - 1),
           budget=st.integers(1, 3),
           retry=retry_configs(), breaker=breaker_params())
    @settings(max_examples=80, deadline=None)
    def test_single_faulty_lane(self, profiles, spec, policy_index,
                                budget, retry, breaker):
        label = FAULT_POLICIES[policy_index]
        budget = BudgetVector(budget)
        policy, preemptive = parse_policy_spec(label)
        fast_injector = FaultInjector(spec)
        fast_breaker = _make_breaker(breaker)
        fast = run_online(profiles, epoch(), budget, policy,
                          preemptive=preemptive, faults=fast_injector,
                          retry=retry, breaker=fast_breaker,
                          engine="fast")
        policy, preemptive = parse_policy_spec(label)
        batch_injector = FaultInjector(spec)
        batch_breaker = _make_breaker(breaker)
        batch, = run_block(
            profiles, epoch(),
            [(policy, preemptive, budget, 0,
              FaultLane(batch_injector, retry, batch_breaker))])
        _assert_same_faulty_run(fast, batch,
                                (fast_injector, fast_breaker),
                                (batch_injector, batch_breaker))

    @given(insts=st.lists(profile_sets(max_profiles=3),
                          min_size=1, max_size=2),
           specs=st.lists(fault_specs(), min_size=2, max_size=3),
           retry=retry_configs(), breaker=breaker_params())
    @settings(max_examples=30, deadline=None)
    def test_mixed_mega_block(self, insts, specs, retry, breaker):
        """Faulty and reliable lanes share one block; every lane still
        matches its own standalone fast run."""
        cases = []
        lanes = []
        for at, label in enumerate(FAULT_POLICIES):
            spec = specs[at % len(specs)] if at % 3 else None
            inst = at % len(insts)
            budget = BudgetVector(1 + at % 3)
            policy, preemptive = parse_policy_spec(label)
            injector = FaultInjector(spec) if spec is not None else None
            lane_breaker = _make_breaker(breaker)
            fault = FaultLane(injector, retry, lane_breaker) \
                if (injector or retry or lane_breaker) else None
            lanes.append((policy, preemptive, budget, inst, fault))
            cases.append((label, inst, budget, spec, injector,
                          lane_breaker))
        results = run_block(insts, epoch(), lanes)
        for batch, (label, inst, budget, spec, batch_injector,
                    batch_breaker) in zip(results, cases):
            policy, preemptive = parse_policy_spec(label)
            fast_injector = FaultInjector(spec) \
                if spec is not None else None
            fast_breaker = _make_breaker(breaker)
            fast = run_online(insts[inst], epoch(), budget, policy,
                              preemptive=preemptive,
                              faults=fast_injector, retry=retry,
                              breaker=fast_breaker, engine="fast")
            _assert_same_faulty_run(fast, batch,
                                    (fast_injector, fast_breaker),
                                    (batch_injector, batch_breaker))

    @given(profiles=profile_sets(max_profiles=4),
           spec=fault_specs(),
           policy_index=st.integers(0, len(FAULT_POLICIES) - 1),
           budget=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_run_online_engine_batch(self, profiles, spec, policy_index,
                                     budget):
        """The run_online(engine="batch") entry point lowers faults."""
        label = FAULT_POLICIES[policy_index]
        budget = BudgetVector(budget)
        policy, preemptive = parse_policy_spec(label)
        fast_injector = FaultInjector(spec)
        fast = run_online(profiles, epoch(), budget, policy,
                          preemptive=preemptive, faults=fast_injector,
                          retry=RetryConfig(1), engine="fast")
        policy, preemptive = parse_policy_spec(label)
        batch_injector = FaultInjector(spec)
        batch = run_online(profiles, epoch(), budget, policy,
                           preemptive=preemptive, faults=batch_injector,
                           retry=RetryConfig(1), engine="batch")
        _assert_same_faulty_run(fast, batch, (fast_injector, None),
                                (batch_injector, None))

    @given(profiles=profile_sets(max_profiles=3),
           spec=fault_specs(),
           budget=st.integers(1, 2))
    @settings(max_examples=20, deadline=None)
    def test_replayed_traces_fall_back(self, profiles, spec, budget):
        """RecordedFaults answers from history, which the draw columns
        cannot encode: run_block refuses it, and run_online falls back
        to the fast engine with an identical run."""
        budget = BudgetVector(budget)
        policy, preemptive = parse_policy_spec("S-EDF(NP)")
        injector = FaultInjector(spec)
        fast = run_online(profiles, epoch(), budget, policy,
                          preemptive=preemptive, faults=injector,
                          engine="fast")
        replay = RecordedFaults(injector.trace)
        try:
            run_block(profiles, epoch(),
                      [(policy, preemptive, budget, 0,
                        FaultLane(replay, None, None))])
        except BatchUnsupported:
            pass
        else:
            raise AssertionError("replayed faults must not lower")
        policy, preemptive = parse_policy_spec("S-EDF(NP)")
        batch = run_online(profiles, epoch(), budget, policy,
                           preemptive=preemptive,
                           faults=RecordedFaults(injector.trace),
                           engine="batch")
        assert list(batch.schedule.probes()) == \
            list(fast.schedule.probes())
        assert batch.report == fast.report
        assert batch.probes_failed == fast.probes_failed
