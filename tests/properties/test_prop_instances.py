"""Equivalence properties: fast instance generation IS the reference.

The vectorized generation path (batched numpy sampling in the update
models, bulk-derived columnar EI streams in the templates) exists purely
as an optimization: for every seed, source and configuration it must
produce the *same* problem instance as the event-at-a-time reference
path — the byte-identical update trace and structurally equal profiles.
The content-addressed :class:`~repro.experiments.instances.InstanceCache`
must likewise be invisible: a cache hit returns the same instance a
fresh miss would have generated.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import (
    InstanceCache,
    generate_instance,
)


def profiles_equal(left, right) -> bool:
    """Structural ProfileSet equality (ids, names, t-intervals, EIs)."""
    ls, rs = list(left), list(right)
    if len(ls) != len(rs):
        return False
    for a, b in zip(ls, rs):
        if (a.profile_id != b.profile_id or a.name != b.name
                or tuple(a) != tuple(b)):
            return False
    return True


@st.composite
def configs(draw) -> ExperimentConfig:
    window = draw(st.sampled_from([0, 2, 5, 10]))
    alpha, beta = draw(st.sampled_from(
        [(0.0, 0.0), (1.37, 0.0), (0.0, 0.8), (1.37, 0.8)]))
    return ExperimentConfig(
        epoch_length=draw(st.sampled_from([20, 40, 60])),
        num_resources=draw(st.integers(2, 12)),
        num_profiles=draw(st.integers(1, 12)),
        intensity=draw(st.sampled_from([0.5, 2.0, 6.0, 12.0])),
        window=window,
        repetitions=1,
        grouping=draw(st.sampled_from(["indexed", "overlap"])),
        seed=draw(st.integers(0, 2**16)),
        alpha=alpha,
        beta=beta,
    )


class TestFastEqualsReference:
    @given(config=configs(),
           source=st.sampled_from(["poisson", "auction"]),
           repetition=st.integers(0, 3))
    @settings(max_examples=80, deadline=None)
    def test_identical_instances(self, config, source, repetition):
        fast_trace, fast_profiles = generate_instance(
            config, repetition, source, fast=True)
        ref_trace, ref_profiles = generate_instance(
            config, repetition, source, fast=False)
        assert list(fast_trace) == list(ref_trace)
        assert profiles_equal(fast_profiles, ref_profiles)

    @given(config=configs(), source=st.sampled_from(["poisson", "auction"]))
    @settings(max_examples=40, deadline=None)
    def test_regeneration_is_deterministic(self, config, source):
        first = generate_instance(config, 0, source, fast=True)
        second = generate_instance(config, 0, source, fast=True)
        assert list(first[0]) == list(second[0])
        assert profiles_equal(first[1], second[1])


class TestCacheTransparency:
    @given(config=configs(), source=st.sampled_from(["poisson", "auction"]))
    @settings(max_examples=40, deadline=None)
    def test_memory_hit_equals_fresh_miss(self, config, source):
        cache = InstanceCache(max_entries=4)
        miss_trace, miss_profiles = cache.get_or_generate(config, 0, source)
        hit_trace, hit_profiles = cache.get_or_generate(config, 0, source)
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["memory_hits"] == 1
        assert hit_trace is miss_trace and hit_profiles is miss_profiles
        fresh_trace, fresh_profiles = generate_instance(config, 0, source)
        assert list(hit_trace) == list(fresh_trace)
        assert profiles_equal(hit_profiles, fresh_profiles)

    @given(config=configs(), source=st.sampled_from(["poisson", "auction"]))
    @settings(max_examples=30, deadline=None)
    def test_disk_round_trip_equals_fresh(self, config, source):
        with tempfile.TemporaryDirectory() as tmp:
            store = InstanceCache(max_entries=4, cache_dir=tmp)
            store.get_or_generate(config, 0, source)
            reload = InstanceCache(max_entries=4, cache_dir=tmp)
            disk_trace, disk_profiles = reload.get_or_generate(
                config, 0, source)
            assert reload.stats()["disk_hits"] == 1
            assert reload.stats()["disk_errors"] == 0
        fresh_trace, fresh_profiles = generate_instance(config, 0, source)
        assert list(disk_trace) == list(fresh_trace)
        assert profiles_equal(disk_profiles, fresh_profiles)
