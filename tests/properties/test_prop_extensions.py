"""Property-based tests for the §6 extensions (quotas, utilities)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetVector, Schedule
from repro.extensions import (
    QuotaMap,
    UtilityWeights,
    quota_completeness,
    run_with_quotas,
    weighted_completeness,
)
from repro.online import MRSFPolicy

from tests.properties.strategies import (
    HORIZON,
    NUM_RESOURCES,
    epoch,
    profile_sets,
)

probe_lists = st.lists(
    st.tuples(st.integers(0, NUM_RESOURCES - 1),
              st.integers(1, HORIZON)),
    max_size=25,
)


class TestQuotaProperties:
    @given(profiles=profile_sets(), probes=probe_lists)
    @settings(max_examples=50)
    def test_relaxing_quotas_never_lowers_schedule_completeness(
            self, profiles, probes):
        """For a FIXED schedule, k-of-n is monotone in the quota."""
        schedule = Schedule(probes)
        strict = quota_completeness(profiles, schedule,
                                    QuotaMap.all_required())
        relaxed = quota_completeness(profiles, schedule,
                                     QuotaMap.any_of(profiles))
        assert relaxed >= strict

    @given(profiles=profile_sets(), probes=probe_lists)
    @settings(max_examples=50)
    def test_all_required_quota_equals_plain_gc(self, profiles, probes):
        from repro.core import gained_completeness
        schedule = Schedule(probes)
        assert quota_completeness(
            profiles, schedule, QuotaMap.all_required()
        ) == gained_completeness(profiles, schedule)

    @given(profiles=profile_sets())
    @settings(max_examples=30, deadline=None)
    def test_quota_run_respects_budget(self, profiles):
        budget = BudgetVector(1)
        result = run_with_quotas(profiles, epoch(), budget,
                                 MRSFPolicy(), QuotaMap.any_of(profiles))
        assert result.schedule.respects_budget(budget, epoch())

    @given(profiles=profile_sets())
    @settings(max_examples=30, deadline=None)
    def test_quota_run_accounting_adds_up(self, profiles):
        result = run_with_quotas(profiles, epoch(), BudgetVector(1),
                                 MRSFPolicy(), QuotaMap.any_of(profiles))
        assert (result.report.captured + result.expired
                == profiles.total_tintervals)


class TestUtilityProperties:
    @given(profiles=profile_sets(), probes=probe_lists,
           weight=st.floats(0.5, 10.0))
    @settings(max_examples=50)
    def test_uniform_weights_equal_plain_gc(self, profiles, probes,
                                            weight):
        from repro.core import gained_completeness
        schedule = Schedule(probes)
        uniform = UtilityWeights(profile_weights={
            profile.profile_id: weight for profile in profiles
        })
        # Any *constant* weighting leaves the ratio unchanged (up to FP
        # rounding in the weighted accumulation).
        import pytest as _pytest
        assert weighted_completeness(profiles, schedule, uniform) == \
            _pytest.approx(gained_completeness(profiles, schedule))

    @given(profiles=profile_sets(), probes=probe_lists)
    @settings(max_examples=50)
    def test_weighted_gc_in_unit_interval(self, profiles, probes):
        weights = UtilityWeights(profile_weights={
            profile.profile_id: 1.0 + profile.profile_id
            for profile in profiles
        })
        value = weighted_completeness(profiles, Schedule(probes),
                                      weights)
        assert 0.0 <= value <= 1.0

    @given(profiles=profile_sets(), probes=probe_lists)
    @settings(max_examples=50)
    def test_upweighting_captured_tinterval_raises_weighted_gc(
            self, profiles, probes):
        from repro.core import gained_completeness
        schedule = Schedule(probes)
        captured = [eta for eta in profiles.tintervals()
                    if schedule.captures_tinterval(eta)]
        missed = [eta for eta in profiles.tintervals()
                  if not schedule.captures_tinterval(eta)]
        if not captured or not missed:
            return
        target = captured[0]
        weights = UtilityWeights(tinterval_weights={
            (target.profile_id, target.tinterval_id): 10.0})
        assert weighted_completeness(profiles, schedule, weights) >= \
            gained_completeness(profiles, schedule)
