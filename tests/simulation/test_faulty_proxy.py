"""The measurement simulator under injected faults.

The simulator and the live runtime share the probe-execution engine, so
the same fault world must produce the same capture counts in both — and
a null fault model must leave the simulator bit-for-bit unchanged.
"""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    Outage,
    RetryConfig,
    UnreliableServer,
)
from repro.online import MEDFPolicy, MRSFPolicy, SEDFPolicy
from repro.runtime import MonitoringProxy, OriginServer
from repro.simulation import run_online
from repro.traces import UpdateTrace

EPOCH = Epoch(30)


def make_profiles() -> ProfileSet:
    profiles = []
    for start in (1, 6, 11, 16, 21):
        for resource_id in range(4):
            profiles.append(Profile([TInterval(
                [ExecutionInterval(resource_id, start, start + 4)])]))
    return ProfileSet(profiles)


class TestNullFaultIdentity:
    @pytest.mark.parametrize("policy_factory",
                             [SEDFPolicy, MRSFPolicy, MEDFPolicy])
    def test_null_spec_changes_nothing(self, policy_factory):
        profiles = make_profiles()
        base = run_online(profiles, EPOCH, BudgetVector(1),
                          policy_factory())
        nulled = run_online(make_profiles(), EPOCH, BudgetVector(1),
                            policy_factory(), faults=FaultSpec())
        assert nulled.gc == base.gc
        assert nulled.probes_used == base.probes_used
        assert sorted(nulled.schedule.probes()) == \
            sorted(base.schedule.probes())
        assert nulled.probes_failed == 0
        assert nulled.retries == 0
        assert nulled.resources_quarantined == 0


class TestFaultyRuns:
    def test_same_seed_identical(self):
        spec = FaultSpec(failure_probability=0.4, seed=17)
        runs = [run_online(make_profiles(), EPOCH, BudgetVector(1),
                           SEDFPolicy(), faults=spec,
                           retry=RetryConfig(1),
                           breaker=CircuitBreaker(failure_threshold=2,
                                                  cooldown=3))
                for _ in range(2)]
        assert runs[0].gc == runs[1].gc
        assert runs[0].probes_failed == runs[1].probes_failed
        assert runs[0].retries == runs[1].retries
        assert sorted(runs[0].schedule.probes()) == \
            sorted(runs[1].schedule.probes())

    def test_failures_reduce_completeness(self):
        clean = run_online(make_profiles(), EPOCH, BudgetVector(1),
                           SEDFPolicy())
        faulty = run_online(make_profiles(), EPOCH, BudgetVector(1),
                            SEDFPolicy(),
                            faults=FaultSpec(failure_probability=0.6,
                                             seed=5))
        assert faulty.probes_failed > 0
        assert faulty.gc < clean.gc

    def test_capture_accounting_stays_consistent(self):
        result = run_online(make_profiles(), EPOCH, BudgetVector(1),
                            SEDFPolicy(),
                            faults=FaultSpec(failure_probability=0.5,
                                             seed=23))
        assert result.report.captured + result.expired == \
            result.report.total

    def test_breaker_saves_budget_under_permanent_outage(self):
        spec = FaultSpec(outages=(Outage(0, 0, None),))
        without = run_online(make_profiles(), EPOCH, BudgetVector(1),
                             SEDFPolicy(), faults=spec)
        with_breaker = run_online(
            make_profiles(), EPOCH, BudgetVector(1), SEDFPolicy(),
            faults=spec,
            breaker=CircuitBreaker(failure_threshold=2, cooldown=8))
        assert with_breaker.resources_quarantined == 1
        assert with_breaker.gc > without.gc
        assert with_breaker.probes_failed < without.probes_failed


class TestRuntimeSimulatorAgreementUnderFaults:
    @pytest.mark.parametrize("policy_factory",
                             [SEDFPolicy, MRSFPolicy, MEDFPolicy])
    def test_same_fault_world_same_captures(self, policy_factory):
        spec = FaultSpec(failure_probability=0.3, seed=31)
        sim = run_online(make_profiles(), EPOCH, BudgetVector(1),
                         policy_factory(), faults=spec,
                         retry=RetryConfig(1),
                         breaker=CircuitBreaker(failure_threshold=2,
                                                cooldown=3))

        server = UnreliableServer(
            OriginServer(UpdateTrace([], EPOCH)),
            FaultSpec(failure_probability=0.3, seed=31))
        proxy = MonitoringProxy(
            server, EPOCH, BudgetVector(1), policy_factory(),
            retry=RetryConfig(1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=3))
        client = proxy.register_client()
        for profile in make_profiles():
            bare = Profile([TInterval(eta.eis) for eta in profile],
                           name=profile.name)
            proxy.register_profile(client, bare)
        stats = proxy.run()

        assert stats.completed == sim.report.captured
        assert stats.expired == sim.expired
        assert stats.probes_failed == sim.probes_failed
        assert stats.retries == sim.retries
        assert stats.resources_quarantined == sim.resources_quarantined
        assert len(client.mailbox) == stats.completed
