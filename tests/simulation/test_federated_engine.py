"""Tests for the federated (sharded) simulation engine.

The acceptance bar: a federated run is probe-for-probe identical to the
monolith engines at every shard count — K=1 especially, the ISSUE's
explicit criterion — with the coordinator ledgers conserving budget.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core import BudgetVector, Epoch
from repro.faults import CircuitBreaker, FaultSpec, Outage, RetryConfig
from repro.online.registry import parse_policy_spec
from repro.runtime import ShardCoordinator
from repro.simulation import (
    BatchUnsupported,
    FederatedResult,
    federated_run,
    run_online,
)
from repro.simulation.columnar import ColumnarInstance
from repro.experiments.config import ExperimentConfig
from repro.experiments.federation import federation_sweep
from repro.experiments.harness import make_instance

CONFIG = ExperimentConfig(
    epoch_length=60, num_resources=12, num_profiles=18, max_rank=3,
    intensity=8.0, budget=2, window=6, repetitions=1, seed=123)

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def instance():
    _trace, profiles = make_instance(CONFIG, 0)
    return profiles


def _run_pair(profiles, spec, shards, kwargs_factory=dict):
    # Fault objects (breakers especially) are stateful: build a fresh
    # set per run so the two engines start from identical clean slates.
    policy, preemptive = parse_policy_spec(spec)
    reference = run_online(profiles, CONFIG.epoch, CONFIG.budget_vector,
                           policy, preemptive=preemptive, engine="fast",
                           **kwargs_factory())
    policy, preemptive = parse_policy_spec(spec)
    federated = federated_run(profiles, CONFIG.epoch,
                              CONFIG.budget_vector, policy,
                              preemptive=preemptive, shards=shards,
                              **kwargs_factory())
    return reference, federated


def _assert_same(reference, federated: FederatedResult):
    result = federated.result
    assert list(result.schedule.probes()) == \
        list(reference.schedule.probes())
    assert result.label == reference.label
    assert result.report == reference.report
    assert result.probes_used == reference.probes_used
    assert result.expired == reference.expired


class TestMonolithIdentity:
    @pytest.mark.parametrize("spec", ["S-EDF(P)", "S-EDF(NP)",
                                      "M-EDF(P)", "M-EDF(NP)",
                                      "MRSF(P)", "COVERAGE(NP)",
                                      "ANTI-MRSF(P)", "FCFS(NP)",
                                      "LFF(P)", "STATICRANK(NP)"])
    def test_k1_probe_for_probe_identical(self, instance, spec):
        reference, federated = _run_pair(instance, spec, shards=1)
        _assert_same(reference, federated)

    @pytest.mark.parametrize("shards", [2, 3, 4, 8])
    def test_multi_shard_identical(self, instance, shards):
        for spec in ("M-EDF(P)", "S-EDF(NP)"):
            reference, federated = _run_pair(instance, spec,
                                             shards=shards)
            _assert_same(reference, federated)

    def test_reference_engine_identity(self, instance):
        """Transitively: federated == fast == reference engine."""
        policy, preemptive = parse_policy_spec("MRSF(P)")
        reference = run_online(instance, CONFIG.epoch,
                               CONFIG.budget_vector, policy,
                               preemptive=preemptive,
                               engine="reference")
        policy, preemptive = parse_policy_spec("MRSF(P)")
        federated = federated_run(instance, CONFIG.epoch,
                                  CONFIG.budget_vector, policy,
                                  preemptive=preemptive, shards=4)
        _assert_same(reference, federated)


class TestFaultIdentity:
    def _fault_kwargs(self):
        return dict(
            faults=FaultSpec(failure_probability=0.25,
                             timeout_probability=0.1,
                             stale_probability=0.05, seed=7,
                             outages=(Outage(3, 10, 15),),
                             max_probes_per_chronon=3),
            retry=RetryConfig(max_retries=2),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=5))

    @pytest.mark.parametrize("spec", ["S-EDF(P)", "S-EDF(NP)",
                                      "M-EDF(NP)"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_faulty_run_identical(self, instance, spec, shards):
        reference, federated = _run_pair(instance, spec, shards,
                                         self._fault_kwargs)
        _assert_same(reference, federated)
        result = federated.result
        assert result.probes_failed == reference.probes_failed
        assert result.retries == reference.retries
        assert result.resources_quarantined == \
            reference.resources_quarantined

    def test_workers_with_faults_rejected(self, instance):
        with pytest.raises(ValueError, match="fault"):
            federated_run(instance, CONFIG.epoch, CONFIG.budget_vector,
                          parse_policy_spec("S-EDF(P)")[0], shards=2,
                          workers=2, faults=FaultSpec(
                              failure_probability=0.5, seed=1))


class TestWorkerPool:
    @pytest.mark.skipif(not _HAS_FORK,
                        reason="fork start method unavailable")
    @pytest.mark.parametrize("spec", ["S-EDF(P)", "M-EDF(NP)"])
    def test_worker_pool_matches_in_process(self, instance, spec):
        policy, preemptive = parse_policy_spec(spec)
        serial = federated_run(instance, CONFIG.epoch,
                               CONFIG.budget_vector, policy,
                               preemptive=preemptive, shards=4)
        policy, preemptive = parse_policy_spec(spec)
        pooled = federated_run(instance, CONFIG.epoch,
                               CONFIG.budget_vector, policy,
                               preemptive=preemptive, shards=4,
                               workers=2)
        assert list(pooled.result.schedule.probes()) == \
            list(serial.result.schedule.probes())
        assert pooled.result.report == serial.result.report
        assert pooled.workers == 2
        assert serial.workers == 0
        assert [load.probes_routed for load in pooled.loads] == \
            [load.probes_routed for load in serial.loads]


class TestAccounting:
    def test_ledger_conserves_budget(self, instance):
        federated = federated_run(instance, CONFIG.epoch,
                                  CONFIG.budget_vector,
                                  parse_policy_spec("M-EDF(P)")[0],
                                  shards=4)
        loads = federated.loads
        assert sum(load.probes_routed for load in loads) == \
            federated.result.probes_used
        for load in loads:
            assert load.probes_routed <= load.effective_budget
        assert sum(load.stolen_in for load in loads) == \
            sum(load.stolen_out for load in loads)
        assert federated.stolen_budget == \
            sum(load.stolen_in for load in loads)

    def test_loads_cover_every_shard(self, instance):
        federated = federated_run(instance, CONFIG.epoch,
                                  CONFIG.budget_vector,
                                  parse_policy_spec("S-EDF(P)")[0],
                                  shards=6)
        assert [load.shard for load in federated.loads] == list(range(6))
        assert sum(load.resources for load in federated.loads) > 0

    def test_custom_coordinator_is_driven(self, instance):
        coordinator = ShardCoordinator(3)
        federated = federated_run(instance, CONFIG.epoch,
                                  CONFIG.budget_vector,
                                  parse_policy_spec("S-EDF(P)")[0],
                                  coordinator=coordinator)
        assert federated.shards == 3
        assert sum(coordinator.probes_routed) == \
            federated.result.probes_used

    def test_coordinator_run_wrapper(self, instance):
        coordinator = ShardCoordinator(2)
        federated = coordinator.run(instance, CONFIG.epoch,
                                    CONFIG.budget_vector,
                                    parse_policy_spec("S-EDF(P)")[0])
        assert isinstance(federated, FederatedResult)
        assert federated.shards == 2


class TestRejections:
    def test_policy_without_columnar_kind_raises(self, instance):
        with pytest.raises(BatchUnsupported, match="columnar"):
            federated_run(instance, CONFIG.epoch, CONFIG.budget_vector,
                          parse_policy_spec("RANDOM(P)")[0], shards=2)

    def test_multi_instance_columnar_rejected(self, instance):
        col = ColumnarInstance.build_many([instance, instance],
                                          CONFIG.epoch)
        with pytest.raises(ValueError, match="one instance"):
            federated_run(instance, CONFIG.epoch, CONFIG.budget_vector,
                          parse_policy_spec("S-EDF(P)")[0], shards=2,
                          columnar=col)


class TestFederationSweep:
    def test_sweep_reports_zero_degradation(self):
        config = ExperimentConfig(
            epoch_length=40, num_resources=8, num_profiles=10,
            intensity=6.0, budget=2, window=5, repetitions=2, seed=42)
        sweep = federation_sweep(shard_counts=(1, 2, 4),
                                 policy="M-EDF(P)", config=config)
        assert sweep.shard_counts == (1, 2, 4)
        for shards in sweep.shard_counts:
            assert sweep.degradation(shards) == pytest.approx(0.0)
            assert sweep.speedup(shards) > 0.0
        outcome = sweep.outcome(4)
        assert len(outcome.loads) == 4
        assert outcome.probes_routed > 0
        with pytest.raises(KeyError):
            sweep.outcome(16)
