"""Unit tests for the event-indexed fast engine.

The broad probe-for-probe equivalence with the reference engine lives in
``tests/properties/test_prop_engine.py``; these tests pin down the
targeted behaviours — engine dispatch, custom ``state_factory`` support,
per-policy fast paths, and edge cases around the event queues.
"""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)
from repro.extensions import QuotaMap, QuotaMRSFPolicy, QuotaTIntervalState
from repro.faults import FaultSpec, RetryConfig
from repro.online import (
    CoveragePolicy,
    FCFSPolicy,
    MEDFPolicy,
    MRSFPolicy,
    SEDFPolicy,
)
from repro.simulation import FastProxySimulator, ProxySimulator, run_online


def _profiles(*etas: list[tuple[int, int, int]]) -> ProfileSet:
    return ProfileSet([Profile([
        TInterval([ExecutionInterval(r, s, f) for r, s, f in spec])
        for spec in etas
    ])])


class TestEngineDispatch:
    def test_default_engine_is_fast(self):
        profiles = _profiles([(0, 2, 5)])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0

    def test_reference_engine_selectable(self):
        profiles = _profiles([(0, 2, 5)])
        fast = run_online(profiles, Epoch(10), BudgetVector(1),
                          SEDFPolicy(), engine="fast")
        reference = run_online(profiles, Epoch(10), BudgetVector(1),
                               SEDFPolicy(), engine="reference")
        assert list(fast.schedule.probes()) == \
            list(reference.schedule.probes())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_online(_profiles([(0, 2, 5)]), Epoch(10), BudgetVector(1),
                       SEDFPolicy(), engine="turbo")


class TestFastEngineBehaviour:
    def test_single_tinterval_captured(self):
        result = FastProxySimulator(
            _profiles([(0, 2, 5)]), Epoch(10), BudgetVector(1),
            SEDFPolicy()).run()
        assert result.gc == 1.0
        assert result.probes_used == 1
        assert result.expired == 0

    def test_empty_profiles(self):
        result = FastProxySimulator(
            ProfileSet(), Epoch(5), BudgetVector(1), SEDFPolicy()).run()
        assert result.gc == 1.0
        assert result.probes_used == 0

    def test_zero_budget_expires_everything(self):
        result = FastProxySimulator(
            _profiles([(0, 2, 5)]), Epoch(10), BudgetVector(0),
            SEDFPolicy()).run()
        assert result.gc == 0.0
        assert result.expired == 1

    def test_ei_entirely_after_epoch_never_indexed(self):
        # Second EI lies beyond the epoch: it can never be probed, so
        # the t-interval expires without tripping the event queues.
        profiles = _profiles([(0, 2, 4), (1, 12, 14)])
        fast = FastProxySimulator(profiles, Epoch(10), BudgetVector(1),
                                  SEDFPolicy()).run()
        reference = ProxySimulator(profiles, Epoch(10), BudgetVector(1),
                                   SEDFPolicy()).run()
        assert fast.report == reference.report
        assert list(fast.schedule.probes()) == \
            list(reference.schedule.probes())
        assert fast.gc == 0.0

    @pytest.mark.parametrize("policy_cls", [
        SEDFPolicy, MEDFPolicy, MRSFPolicy, FCFSPolicy, CoveragePolicy])
    @pytest.mark.parametrize("preemptive", [True, False])
    def test_policies_match_reference_on_overlap(self, policy_cls,
                                                 preemptive):
        profiles = _profiles(
            [(0, 2, 5), (1, 4, 8)],
            [(1, 3, 6)],
            [(2, 1, 3), (0, 6, 9), (1, 7, 9)],
        )
        fast = FastProxySimulator(
            profiles, Epoch(12), BudgetVector(1), policy_cls(),
            preemptive=preemptive).run()
        reference = ProxySimulator(
            profiles, Epoch(12), BudgetVector(1), policy_cls(),
            preemptive=preemptive).run()
        assert list(fast.schedule.probes()) == \
            list(reference.schedule.probes())
        assert fast.report == reference.report
        assert fast.expired == reference.expired

    def test_quota_state_factory_matches_reference(self):
        # Custom completion semantics exercise the generic (non-cached)
        # selection path and the counter-based completion hooks.
        profiles = _profiles(
            [(0, 1, 4), (1, 2, 6), (2, 5, 9)],
            [(0, 3, 7), (2, 4, 8)],
        )
        quotas = QuotaMap({(0, 0): 1, (1, 0): 1})

        def factory(eta, profile_rank):
            return QuotaTIntervalState(eta, profile_rank,
                                       quotas.quota_for(eta))

        runs = []
        for cls in (ProxySimulator, FastProxySimulator):
            runs.append(cls(profiles, Epoch(12), BudgetVector(1),
                            QuotaMRSFPolicy(), state_factory=factory).run())
        reference, fast = runs
        assert list(fast.schedule.probes()) == \
            list(reference.schedule.probes())
        assert fast.report == reference.report

    def test_fault_counters_match_reference(self):
        profiles = _profiles(
            [(0, 1, 5), (1, 3, 8)],
            [(1, 2, 6), (0, 5, 9)],
        )
        faults = FaultSpec(failure_probability=0.5, seed=7)
        runs = []
        for engine in ("reference", "fast"):
            runs.append(run_online(
                profiles, Epoch(12), BudgetVector(2), MRSFPolicy(),
                faults=faults, retry=RetryConfig(1), engine=engine))
        reference, fast = runs
        assert fast.probes_failed == reference.probes_failed
        assert fast.retries == reference.retries
        assert list(fast.schedule.probes()) == \
            list(reference.schedule.probes())
