"""Tests for the online proxy simulator."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
    evaluate_schedule,
)
from repro.online import MEDFPolicy, MRSFPolicy, SEDFPolicy
from repro.simulation import ProxySimulator, run_online


def _profiles(*etas: list[tuple[int, int, int]]) -> ProfileSet:
    return ProfileSet([Profile([
        TInterval([ExecutionInterval(r, s, f) for r, s, f in spec])
        for spec in etas
    ])])


class TestBasicRuns:
    def test_single_tinterval_captured(self):
        profiles = _profiles([(0, 2, 5)])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0
        assert result.probes_used == 1
        assert result.expired == 0

    def test_unsatisfiable_budget_zero(self):
        profiles = _profiles([(0, 2, 5)])
        result = run_online(profiles, Epoch(10), BudgetVector(0),
                            SEDFPolicy())
        assert result.gc == 0.0
        assert result.expired == 1

    def test_empty_profiles(self):
        result = run_online(ProfileSet(), Epoch(5), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0
        assert result.probes_used == 0

    def test_multi_ei_tinterval_needs_all(self):
        # Two EIs at the same single chronon on different resources,
        # budget 1: impossible.
        profiles = _profiles([(0, 3, 3), (1, 3, 3)])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 0.0
        # Budget 2: both probed in the same chronon.
        result = run_online(profiles, Epoch(10), BudgetVector(2),
                            SEDFPolicy())
        assert result.gc == 1.0

    def test_report_matches_schedule_evaluation(self, arbitrage_profiles):
        result = run_online(arbitrage_profiles, Epoch(20),
                            BudgetVector(1), MRSFPolicy())
        rescored = evaluate_schedule(arbitrage_profiles, result.schedule)
        assert rescored.captured == result.report.captured

    def test_probes_respect_budget(self, arbitrage_profiles):
        epoch = Epoch(20)
        budget = BudgetVector(1)
        result = run_online(arbitrage_profiles, epoch, budget,
                            MEDFPolicy())
        assert result.schedule.respects_budget(budget, epoch)

    def test_deterministic(self, arbitrage_profiles):
        first = run_online(arbitrage_profiles, Epoch(20),
                           BudgetVector(1), SEDFPolicy())
        second = run_online(arbitrage_profiles, Epoch(20),
                            BudgetVector(1), SEDFPolicy())
        assert list(first.schedule.probes()) == list(
            second.schedule.probes())


class TestArrivalSemantics:
    def test_tinterval_not_probed_before_arrival(self):
        profiles = _profiles([(0, 5, 8)])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        probes = list(result.schedule.probes())
        assert all(chronon >= 5 for _r, chronon in probes)

    def test_late_arrival_still_captured(self):
        profiles = ProfileSet([
            Profile([TInterval([ExecutionInterval(0, 1, 2)])]),
            Profile([TInterval([ExecutionInterval(1, 9, 10)])]),
        ])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0


class TestExpirySemantics:
    def test_expired_counted_once(self):
        # Two overlapping unit EIs on different resources, budget 1:
        # exactly one of the two t-intervals must expire.
        profiles = ProfileSet([
            Profile([TInterval([ExecutionInterval(0, 3, 3)])]),
            Profile([TInterval([ExecutionInterval(1, 3, 3)])]),
        ])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.report.captured == 1
        assert result.expired == 1

    def test_captured_plus_expired_equals_total(self, arbitrage_profiles):
        result = run_online(arbitrage_profiles, Epoch(20),
                            BudgetVector(1), SEDFPolicy())
        assert (result.report.captured + result.expired
                == arbitrage_profiles.total_tintervals)

    def test_end_of_epoch_flush(self):
        # EI open beyond the end of a short epoch, budget zero: the
        # t-interval must still be counted (as expired).
        profiles = _profiles([(0, 2, 50)])
        result = run_online(profiles, Epoch(5), BudgetVector(0),
                            SEDFPolicy())
        assert result.report.captured + result.expired == 1


class TestDoomVisibility:
    """EI-level policies keep probing doomed t-intervals; others skip."""

    @pytest.fixture
    def doomed_scenario(self) -> ProfileSet:
        # Profile 0: a 2-EI t-interval whose first EI (r0@[1,1]) will be
        # missed because r2 is more urgent...
        # Construction: at chronon 1 both r0[1,1] and r2[1,1] are due;
        # budget 1; coverage makes r2 win (two candidates). The 2-EI
        # t-interval is then doomed, but its second EI r1[5,9] stays
        # open. A rank-aware policy should spend chronon 5+ elsewhere.
        doomed = Profile([TInterval([ExecutionInterval(0, 1, 1),
                                     ExecutionInterval(1, 5, 9)])])
        urgent = Profile([TInterval([ExecutionInterval(2, 1, 1)]),
                          TInterval([ExecutionInterval(2, 1, 1)])])
        alive = Profile([TInterval([ExecutionInterval(3, 5, 9)])])
        return ProfileSet([doomed, urgent, alive])

    def test_sedf_wastes_probe_on_doomed(self, doomed_scenario):
        result = run_online(doomed_scenario, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        # S-EDF probes resource 1 (doomed parent) and resource 3; both
        # fit in [5,9], so nothing is lost here — but the probe on r1
        # must exist, showing the doomed EI stayed a candidate.
        assert result.schedule.probe_chronons(1), \
            "EI-level policy should still probe the doomed EI"

    def test_mrsf_skips_doomed(self, doomed_scenario):
        result = run_online(doomed_scenario, Epoch(10), BudgetVector(1),
                            MRSFPolicy())
        assert not result.schedule.probe_chronons(1), \
            "rank-level policy must not probe a doomed t-interval"

    def test_medf_skips_doomed(self, doomed_scenario):
        result = run_online(doomed_scenario, Epoch(10), BudgetVector(1),
                            MEDFPolicy())
        assert not result.schedule.probe_chronons(1)


class TestIntraResourceOverlapExploitation:
    def test_one_probe_serves_simultaneously_active_eis(self):
        profiles = ProfileSet([
            Profile([TInterval([ExecutionInterval(0, 4, 6)])]),
            Profile([TInterval([ExecutionInterval(0, 4, 9)])]),
        ])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0
        # Both EIs are active when the probe lands: one probe suffices.
        assert result.probes_used == 1

    def test_greedy_probing_does_not_wait_for_overlap(self):
        # EIs [2,6] and [4,9]: the proxy probes r0 at chronon 2 (the
        # only candidate then) and again at 4 — greedy, two probes, but
        # both t-intervals captured.
        profiles = ProfileSet([
            Profile([TInterval([ExecutionInterval(0, 2, 6)])]),
            Profile([TInterval([ExecutionInterval(0, 4, 9)])]),
        ])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0
        assert result.probes_used == 2


class TestRuntimeBookkeeping:
    def test_runtime_recorded(self, arbitrage_profiles):
        result = run_online(arbitrage_profiles, Epoch(20),
                            BudgetVector(1), SEDFPolicy())
        assert result.runtime_seconds >= 0.0

    def test_label_includes_preemption(self, arbitrage_profiles):
        result = ProxySimulator(arbitrage_profiles, Epoch(20),
                                BudgetVector(1), SEDFPolicy(),
                                preemptive=False).run()
        assert result.label == "S-EDF(NP)"

    def test_summary_mentions_gc(self, arbitrage_profiles):
        result = run_online(arbitrage_profiles, Epoch(20),
                            BudgetVector(1), SEDFPolicy())
        assert "GC=" in result.summary()
