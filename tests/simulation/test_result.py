"""Tests for the SimulationResult container."""

from repro.core import CompletenessReport, Schedule
from repro.simulation import SimulationResult


def _result(captured=3, total=4, **kwargs) -> SimulationResult:
    report = CompletenessReport(captured=captured, total=total)
    defaults = dict(label="demo", schedule=Schedule(),
                    report=report, probes_used=7)
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_gc_property(self):
        assert _result().gc == 0.75

    def test_gc_vacuous_for_empty(self):
        assert _result(captured=0, total=0).gc == 1.0

    def test_summary_contains_key_fields(self):
        summary = _result(expired=1, runtime_seconds=0.25).summary()
        assert "demo" in summary
        assert "GC=0.7500" in summary
        assert "(3/4)" in summary
        assert "probes=7" in summary
        assert "expired=1" in summary
        assert "0.250s" in summary

    def test_extras_default_empty(self):
        assert _result().extras == {}

    def test_extras_carried(self):
        result = _result(extras={"accepted": 2.0})
        assert result.extras["accepted"] == 2.0
