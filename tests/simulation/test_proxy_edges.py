"""Edge-case tests for the online simulator: odd budgets, boundaries."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)
from repro.online import MRSFPolicy, SEDFPolicy
from repro.simulation import run_online


def _single(resource: int, start: int, finish: int) -> Profile:
    return Profile([TInterval([ExecutionInterval(resource, start,
                                                 finish)])])


class TestNonConstantBudgets:
    def test_budget_burst_enables_capture(self):
        # Budget exists only at chronon 4; both EIs span it.
        profiles = ProfileSet([_single(0, 2, 6), _single(1, 3, 5)])
        budget = BudgetVector(0, overrides={4: 2})
        result = run_online(profiles, Epoch(10), budget, SEDFPolicy())
        assert result.gc == 1.0
        assert result.schedule.probes_at(4) == [0, 1]

    def test_budget_zero_chronons_skipped(self):
        profiles = ProfileSet([_single(0, 2, 3)])
        budget = BudgetVector(0, overrides={3: 1})
        result = run_online(profiles, Epoch(10), budget, SEDFPolicy())
        assert result.gc == 1.0
        assert result.schedule.probe_chronons(0) == [3]

    def test_budget_respected_per_chronon(self):
        profiles = ProfileSet([_single(r, 1, 10) for r in range(6)])
        budget = BudgetVector(1, overrides={2: 3})
        epoch = Epoch(10)
        result = run_online(profiles, epoch, budget, SEDFPolicy())
        assert result.schedule.respects_budget(budget, epoch)


class TestEpochBoundaries:
    def test_ei_at_last_chronon(self):
        profiles = ProfileSet([_single(0, 10, 10)])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0

    def test_ei_window_extending_past_epoch(self):
        # Window [8, 50] in a 10-chronon epoch: capturable inside.
        profiles = ProfileSet([_single(0, 8, 50)])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0

    def test_ei_starting_past_epoch_expires(self):
        profiles = ProfileSet([_single(0, 15, 20)])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 0.0
        assert result.expired == 1

    def test_single_chronon_epoch(self):
        profiles = ProfileSet([_single(0, 1, 1)])
        result = run_online(profiles, Epoch(1), BudgetVector(1),
                            SEDFPolicy())
        assert result.gc == 1.0


class TestMixedArrivalAndDoom:
    def test_partially_past_multi_ei_tinterval(self):
        # First EI [1,1] on r0 and a competing profile force a miss; the
        # doomed second EI [5,9] must not stop the live profile.
        profiles = ProfileSet([
            Profile([TInterval([ExecutionInterval(0, 1, 1),
                                ExecutionInterval(1, 5, 9)])]),
            Profile([TInterval([ExecutionInterval(2, 1, 1)]),
                     TInterval([ExecutionInterval(2, 1, 1)])]),
            Profile([TInterval([ExecutionInterval(3, 6, 8)])]),
        ])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            MRSFPolicy())
        # MRSF skips the doomed t-interval; the singleton on r3 wins.
        assert result.schedule.probe_chronons(3) != []

    def test_all_eis_same_resource(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 2, 4),
                       ExecutionInterval(0, 3, 6),
                       ExecutionInterval(0, 8, 9)])])])
        result = run_online(profiles, Epoch(10), BudgetVector(1),
                            MRSFPolicy())
        # Greedy probing: one probe per activation wave (2, 3, 8); the
        # t-interval completes with three probes on one resource.
        assert result.gc == 1.0
        assert result.probes_used == 3
        assert result.schedule.probe_chronons(0) == [2, 3, 8]
