"""Tests for the monitoring proxy runtime (pull from servers, push to
clients)."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    ModelError,
    Profile,
    TInterval,
)
from repro.online import MRSFPolicy, SEDFPolicy
from repro.runtime import MonitoringProxy, OriginServer
from repro.traces import UpdateEvent, UpdateTrace


def _make_proxy(events, horizon=20, budget=1, policy=None):
    epoch = Epoch(horizon)
    trace = UpdateTrace(events, epoch)
    server = OriginServer(trace)
    proxy = MonitoringProxy(server, epoch, BudgetVector(budget),
                            policy or MRSFPolicy())
    return proxy


class TestNotificationDelivery:
    def test_completed_tinterval_notifies_client(self):
        proxy = _make_proxy([UpdateEvent(3, 0, "v1"),
                             UpdateEvent(5, 1, "w1")])
        client = proxy.register_client("alice")
        profile = Profile([TInterval([ExecutionInterval(0, 3, 7),
                                      ExecutionInterval(1, 5, 9)])],
                          name="pair")
        proxy.register_profile(client, profile)
        stats = proxy.run()
        assert stats.completed == 1
        assert len(client.mailbox) == 1
        notification = client.mailbox[0]
        assert notification.profile_name == "pair"
        assert notification.values() == ["v1", "w1"]

    def test_snapshots_carry_probe_times(self):
        proxy = _make_proxy([UpdateEvent(3, 0, "v1")])
        client = proxy.register_client()
        profile = Profile([TInterval([ExecutionInterval(0, 3, 7)])])
        proxy.register_profile(client, profile)
        proxy.run()
        snapshot = client.mailbox[0].snapshots[0]
        assert 3 <= snapshot.probed_at <= 7
        assert snapshot.value == "v1"

    def test_incomplete_tinterval_never_notifies(self):
        # Second EI's window has no budget left (collision by design).
        proxy = _make_proxy([UpdateEvent(3, 0), UpdateEvent(3, 1)],
                            budget=1)
        client = proxy.register_client()
        profile = Profile([
            TInterval([ExecutionInterval(0, 3, 3)]),
            TInterval([ExecutionInterval(1, 3, 3)]),
        ])
        proxy.register_profile(client, profile)
        stats = proxy.run()
        assert stats.completed == 1
        assert stats.expired == 1
        assert len(client.mailbox) == 1

    def test_callback_invoked(self):
        received = []
        proxy = _make_proxy([UpdateEvent(3, 0, "v")])
        client = proxy.register_client("cb", callback=received.append)
        profile = Profile([TInterval([ExecutionInterval(0, 3, 6)])])
        proxy.register_profile(client, profile)
        proxy.run()
        assert len(received) == 1
        assert received[0].values() == ["v"]

    def test_multiple_clients_isolated(self):
        proxy = _make_proxy([UpdateEvent(3, 0, "v"),
                             UpdateEvent(8, 1, "w")])
        alice = proxy.register_client("alice")
        bob = proxy.register_client("bob")
        proxy.register_profile(alice, Profile(
            [TInterval([ExecutionInterval(0, 3, 6)])]))
        proxy.register_profile(bob, Profile(
            [TInterval([ExecutionInterval(1, 8, 11)])]))
        proxy.run()
        assert len(alice.mailbox) == 1
        assert len(bob.mailbox) == 1
        assert alice.mailbox[0].client_id == alice.client_id

    def test_mailbox_drain(self):
        proxy = _make_proxy([UpdateEvent(3, 0, "v")])
        client = proxy.register_client()
        proxy.register_profile(client, Profile(
            [TInterval([ExecutionInterval(0, 3, 6)])]))
        proxy.run()
        drained = client.drain()
        assert len(drained) == 1
        assert client.mailbox == ()


class TestStepwiseExecution:
    def test_step_advances_one_chronon(self):
        proxy = _make_proxy([])
        assert proxy.step() == 1
        assert proxy.step() == 2
        assert proxy.clock == 2

    def test_step_past_epoch_rejected(self):
        proxy = _make_proxy([], horizon=2)
        proxy.run()
        with pytest.raises(ModelError, match="exhausted"):
            proxy.step()

    def test_run_until(self):
        proxy = _make_proxy([])
        proxy.run(until=5)
        assert proxy.clock == 5

    def test_dynamic_registration_mid_run(self):
        proxy = _make_proxy([UpdateEvent(10, 0, "late")])
        client = proxy.register_client()
        proxy.run(until=5)
        profile = Profile([TInterval([ExecutionInterval(0, 10, 14)])])
        proxy.register_profile(client, profile)
        proxy.run()
        assert len(client.mailbox) == 1
        assert client.mailbox[0].values() == ["late"]

    def test_registration_of_partially_past_profile(self):
        proxy = _make_proxy([UpdateEvent(2, 0, "early")])
        client = proxy.register_client()
        proxy.run(until=10)
        # The window [2,5] is entirely past: the t-interval expires.
        profile = Profile([TInterval([ExecutionInterval(0, 2, 5)])])
        proxy.register_profile(client, profile)
        stats = proxy.run()
        assert stats.expired >= 1
        assert client.mailbox == ()


class TestRegistrationManagement:
    def test_unknown_client_rejected(self):
        proxy = _make_proxy([])
        from repro.runtime import Client
        stranger = Client(99)
        with pytest.raises(ModelError, match="unknown client"):
            proxy.register_profile(stranger, Profile(
                [TInterval([ExecutionInterval(0, 1, 2)])]))

    def test_empty_profile_rejected(self):
        proxy = _make_proxy([])
        client = proxy.register_client()
        with pytest.raises(ModelError, match="empty"):
            proxy.register_profile(client, Profile([]))

    def test_unregister_stops_notifications(self):
        proxy = _make_proxy([UpdateEvent(10, 0, "v")])
        client = proxy.register_client()
        profile_id = proxy.register_profile(client, Profile(
            [TInterval([ExecutionInterval(0, 10, 14)])]))
        proxy.run(until=5)
        proxy.unregister_profile(profile_id)
        stats = proxy.run()
        assert client.mailbox == ()
        assert stats.dropped == 1
        assert stats.completed == 0

    def test_unregister_unknown_rejected(self):
        proxy = _make_proxy([])
        with pytest.raises(ModelError, match="unknown profile"):
            proxy.unregister_profile(7)

    def test_profile_ids_unique(self):
        proxy = _make_proxy([])
        client = proxy.register_client()
        first = proxy.register_profile(client, Profile(
            [TInterval([ExecutionInterval(0, 1, 2)])]))
        second = proxy.register_profile(client, Profile(
            [TInterval([ExecutionInterval(1, 1, 2)])]))
        assert first != second


class TestAccounting:
    def test_invariant_registered_equals_resolved(self):
        proxy = _make_proxy(
            [UpdateEvent(3, 0), UpdateEvent(3, 1), UpdateEvent(9, 2)],
            budget=1)
        client = proxy.register_client()
        proxy.register_profile(client, Profile([
            TInterval([ExecutionInterval(0, 3, 3)]),
            TInterval([ExecutionInterval(1, 3, 3)]),
            TInterval([ExecutionInterval(2, 9, 12)]),
        ]))
        stats = proxy.run()
        assert stats.registered == (stats.completed + stats.expired
                                    + stats.dropped)
        assert stats.pending == 0

    def test_budget_respected(self):
        events = [UpdateEvent(c, r) for c in (2, 3) for r in (0, 1, 2)]
        proxy = _make_proxy(events, budget=2)
        client = proxy.register_client()
        proxy.register_profile(client, Profile([
            TInterval([ExecutionInterval(r, 2, 3)]) for r in (0, 1, 2)
        ]))
        proxy.run()
        assert proxy.schedule.respects_budget(BudgetVector(2), Epoch(20))

    def test_completeness_property(self):
        proxy = _make_proxy([UpdateEvent(3, 0)])
        client = proxy.register_client()
        proxy.register_profile(client, Profile(
            [TInterval([ExecutionInterval(0, 3, 6)])]))
        stats = proxy.run()
        assert stats.completeness == 1.0

    def test_stats_before_any_resolution(self):
        proxy = _make_proxy([])
        assert proxy.stats().completeness == 1.0


class TestAgreementWithSimulator:
    def test_runtime_matches_simulator_completeness(self):
        """The runtime and the measurement simulator share their
        scheduling core: same instance + policy => same captures."""
        from repro.core import ProfileSet
        from repro.simulation import run_online
        from repro.traces import PoissonUpdateModel
        from repro.workloads import GeneratorConfig, ProfileGenerator

        epoch = Epoch(100)
        trace = PoissonUpdateModel(8, seed=3).generate(range(12), epoch)
        generator = ProfileGenerator(GeneratorConfig(
            num_profiles=10, max_rank=2, window=6, seed=4))
        profiles = generator.generate(trace, epoch)

        sim = run_online(profiles, epoch, BudgetVector(1), SEDFPolicy())

        server = OriginServer(trace)
        proxy = MonitoringProxy(server, epoch, BudgetVector(1),
                                SEDFPolicy())
        client = proxy.register_client()
        for profile in profiles:
            proxy.register_profile(client, Profile(
                [TInterval(eta.eis) for eta in profile],
                name=profile.name))
        stats = proxy.run()
        assert stats.completed == sim.report.captured
        assert len(client.mailbox) == stats.completed
