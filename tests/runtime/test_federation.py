"""Tests for multi-server federation."""

import numpy as np
import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    ModelError,
    Profile,
    TInterval,
)
from repro.faults import FaultSpec, UnreliableServer
from repro.online import MRSFPolicy
from repro.runtime import (
    MonitoringProxy,
    OriginServer,
    ServerFleet,
    ShardCoordinator,
)
from repro.traces import UpdateEvent, UpdateTrace


@pytest.fixture
def fleet() -> ServerFleet:
    epoch = Epoch(20)
    nyse = OriginServer(UpdateTrace(
        [UpdateEvent(3, 0, "nyse:100"), UpdateEvent(8, 1, "nyse:101")],
        epoch))
    lse = OriginServer(UpdateTrace(
        [UpdateEvent(4, 2, "lse:99")], epoch))
    return ServerFleet({
        "nyse": (nyse, [0, 1]),
        "lse": (lse, [2]),
    })


class TestRouting:
    def test_owner_lookup(self, fleet):
        assert fleet.owner_of(0) == "nyse"
        assert fleet.owner_of(2) == "lse"

    def test_unassigned_resource_rejected(self, fleet):
        with pytest.raises(ModelError, match="not assigned"):
            fleet.owner_of(9)

    def test_duplicate_assignment_rejected(self):
        server = OriginServer()
        with pytest.raises(ModelError, match="assigned to both"):
            ServerFleet({"a": (server, [0]), "b": (OriginServer(), [0])})

    def test_duplicate_assignment_names_both_servers(self):
        with pytest.raises(ModelError,
                           match=r"resource 7 assigned to both 'nyse' "
                                 r"and 'lse'"):
            ServerFleet({"nyse": (OriginServer(), [7]),
                         "lse": (OriginServer(), [7])})

    def test_repeated_resource_within_one_server_rejected(self):
        with pytest.raises(ModelError,
                           match=r"resource 3 listed twice for server "
                                 r"'nyse'"):
            ServerFleet({"nyse": (OriginServer(), [2, 3, 3])})

    def test_probe_routes_to_owner(self, fleet):
        fleet.advance_to(10)
        assert fleet.probe(0).value == "nyse:100"
        assert fleet.probe(2).value == "lse:99"

    def test_probe_counts_per_server(self, fleet):
        fleet.advance_to(10)
        fleet.probe(0)
        fleet.probe(1)
        fleet.probe(2)
        assert fleet.probe_counts() == {"nyse": 2, "lse": 1}

    def test_server_access(self, fleet):
        assert fleet.server("nyse").clock == 0
        with pytest.raises(ModelError, match="unknown server"):
            fleet.server("tse")

    def test_server_names(self, fleet):
        assert fleet.server_names() == ["lse", "nyse"]


class TestClock:
    def test_advance_moves_all_members(self, fleet):
        fleet.advance_to(7)
        assert fleet.server("nyse").clock == 7
        assert fleet.server("lse").clock == 7
        assert fleet.clock == 7

    def test_advance_returns_merged_events(self, fleet):
        events = fleet.advance_to(5)
        assert [(e.chronon, e.resource_id) for e in events] == [
            (3, 0), (4, 2)]

    def test_empty_fleet_clock(self):
        assert ServerFleet({}).clock == 0


class TestProbeAccounting:
    """Routed vs. answered load (satellite: breaker-short-circuited and
    failed probes count as routed, not answered)."""

    @pytest.fixture
    def flaky_fleet(self) -> ServerFleet:
        epoch = Epoch(20)
        good = OriginServer(UpdateTrace(
            [UpdateEvent(3, 0, "ok:1")], epoch))
        dead = UnreliableServer(
            OriginServer(UpdateTrace([UpdateEvent(4, 1, "dead:1")],
                                     epoch)),
            FaultSpec(failure_probability=1.0, seed=5))
        return ServerFleet({"good": (good, [0]), "dead": (dead, [1])})

    def test_failed_try_probe_routed_but_not_answered(self, flaky_fleet):
        flaky_fleet.advance_to(10)
        assert not flaky_fleet.try_probe(1).ok
        flaky_fleet.try_probe(0)
        assert flaky_fleet.probes_routed() == {"good": 1, "dead": 1}
        assert flaky_fleet.probes_answered() == {"good": 1, "dead": 0}

    def test_successful_probe_counts_in_both(self, fleet):
        fleet.advance_to(10)
        fleet.probe(0)
        fleet.probe(2)
        assert fleet.probes_routed() == {"nyse": 1, "lse": 1}
        assert fleet.probes_answered() == {"nyse": 1, "lse": 1}

    def test_probe_counts_is_routed_alias(self, flaky_fleet):
        flaky_fleet.advance_to(10)
        flaky_fleet.try_probe(1)
        assert flaky_fleet.probe_counts() == flaky_fleet.probes_routed()


class TestMergedAdvance:
    def test_interleaved_events_come_back_sorted(self):
        epoch = Epoch(30)
        a = OriginServer(UpdateTrace(
            [UpdateEvent(2, 0, "a"), UpdateEvent(9, 1, "a")], epoch))
        b = OriginServer(UpdateTrace(
            [UpdateEvent(5, 2, "b"), UpdateEvent(9, 3, "b")], epoch))
        fleet = ServerFleet({"b": (b, [2, 3]), "a": (a, [0, 1])})
        events = fleet.advance_to(20)
        assert events == sorted(events)
        assert [e.resource_id for e in events] == [0, 2, 1, 3]

    def test_advance_consumes_every_member_even_on_empty_prefix(self):
        """The k-way merge must advance every member eagerly: a member
        with no events still needs its clock moved."""
        epoch = Epoch(10)
        quiet = OriginServer(UpdateTrace([], epoch))
        busy = OriginServer(UpdateTrace([UpdateEvent(1, 0, "x")], epoch))
        fleet = ServerFleet({"quiet": (quiet, [5]), "busy": (busy, [0])})
        fleet.advance_to(7)
        assert quiet.clock == 7
        assert busy.clock == 7


class TestShardCoordinator:
    def test_assign_is_deterministic_and_complete(self):
        owners = ShardCoordinator(4).assign(100)
        again = ShardCoordinator(4).assign(100)
        assert np.array_equal(owners, again)
        assert owners.size == 100
        assert set(owners.tolist()) <= set(range(4))

    def test_merge_proposals_takes_global_best(self):
        proposals = [
            (np.array([3, 10]), np.array([30, 31])),
            (np.array([1, 20]), np.array([40, 41])),
            (np.array([2, 5]), np.array([50, 51])),
        ]
        winners = ShardCoordinator.merge_proposals(proposals, 3)
        assert winners.tolist() == [40, 50, 30]

    def test_merge_proposals_respects_exclusions(self):
        proposals = [(np.array([1, 2, 3]), np.array([7, 8, 9]))]
        winners = ShardCoordinator.merge_proposals(
            proposals, 2, exclude=np.array([7]))
        assert winners.tolist() == [8, 9]

    def test_merge_proposals_empty_cases(self):
        assert ShardCoordinator.merge_proposals([], 3).size == 0
        empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert ShardCoordinator.merge_proposals([empty], 3).size == 0
        proposals = [(np.array([1]), np.array([2]))]
        assert ShardCoordinator.merge_proposals(proposals, 0).size == 0

    def test_settle_accumulates_routed_probes(self):
        coordinator = ShardCoordinator(2)
        coordinator.settle(2, [0, 2])
        coordinator.settle(2, [1, 1])
        assert coordinator.probes_routed == [1, 3]
        loads = coordinator.loads(resources=[4, 6])
        assert loads[0].probes_routed == 1
        assert loads[1].stolen_in == 1
        assert loads[1].resources == 6


class TestProxyIntegration:
    def test_proxy_runs_against_fleet(self, fleet):
        epoch = Epoch(20)
        proxy = MonitoringProxy(fleet, epoch, BudgetVector(1),
                                MRSFPolicy())
        client = proxy.register_client("analyst")
        # Cross-server profile: one EI per exchange.
        profile = Profile([TInterval([ExecutionInterval(0, 3, 7),
                                      ExecutionInterval(2, 4, 9)])],
                          name="cross-market")
        proxy.register_profile(client, profile)
        stats = proxy.run()
        assert stats.completed == 1
        values = client.mailbox[0].values()
        assert values == ["nyse:100", "lse:99"]
        counts = fleet.probe_counts()
        assert counts["nyse"] >= 1
        assert counts["lse"] >= 1
