"""Tests for multi-server federation."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    ModelError,
    Profile,
    TInterval,
)
from repro.online import MRSFPolicy
from repro.runtime import MonitoringProxy, OriginServer, ServerFleet
from repro.traces import UpdateEvent, UpdateTrace


@pytest.fixture
def fleet() -> ServerFleet:
    epoch = Epoch(20)
    nyse = OriginServer(UpdateTrace(
        [UpdateEvent(3, 0, "nyse:100"), UpdateEvent(8, 1, "nyse:101")],
        epoch))
    lse = OriginServer(UpdateTrace(
        [UpdateEvent(4, 2, "lse:99")], epoch))
    return ServerFleet({
        "nyse": (nyse, [0, 1]),
        "lse": (lse, [2]),
    })


class TestRouting:
    def test_owner_lookup(self, fleet):
        assert fleet.owner_of(0) == "nyse"
        assert fleet.owner_of(2) == "lse"

    def test_unassigned_resource_rejected(self, fleet):
        with pytest.raises(ModelError, match="not assigned"):
            fleet.owner_of(9)

    def test_duplicate_assignment_rejected(self):
        server = OriginServer()
        with pytest.raises(ModelError, match="assigned to both"):
            ServerFleet({"a": (server, [0]), "b": (OriginServer(), [0])})

    def test_duplicate_assignment_names_both_servers(self):
        with pytest.raises(ModelError,
                           match=r"resource 7 assigned to both 'nyse' "
                                 r"and 'lse'"):
            ServerFleet({"nyse": (OriginServer(), [7]),
                         "lse": (OriginServer(), [7])})

    def test_repeated_resource_within_one_server_rejected(self):
        with pytest.raises(ModelError,
                           match=r"resource 3 listed twice for server "
                                 r"'nyse'"):
            ServerFleet({"nyse": (OriginServer(), [2, 3, 3])})

    def test_probe_routes_to_owner(self, fleet):
        fleet.advance_to(10)
        assert fleet.probe(0).value == "nyse:100"
        assert fleet.probe(2).value == "lse:99"

    def test_probe_counts_per_server(self, fleet):
        fleet.advance_to(10)
        fleet.probe(0)
        fleet.probe(1)
        fleet.probe(2)
        assert fleet.probe_counts() == {"nyse": 2, "lse": 1}

    def test_server_access(self, fleet):
        assert fleet.server("nyse").clock == 0
        with pytest.raises(ModelError, match="unknown server"):
            fleet.server("tse")

    def test_server_names(self, fleet):
        assert fleet.server_names() == ["lse", "nyse"]


class TestClock:
    def test_advance_moves_all_members(self, fleet):
        fleet.advance_to(7)
        assert fleet.server("nyse").clock == 7
        assert fleet.server("lse").clock == 7
        assert fleet.clock == 7

    def test_advance_returns_merged_events(self, fleet):
        events = fleet.advance_to(5)
        assert [(e.chronon, e.resource_id) for e in events] == [
            (3, 0), (4, 2)]

    def test_empty_fleet_clock(self):
        assert ServerFleet({}).clock == 0


class TestProxyIntegration:
    def test_proxy_runs_against_fleet(self, fleet):
        epoch = Epoch(20)
        proxy = MonitoringProxy(fleet, epoch, BudgetVector(1),
                                MRSFPolicy())
        client = proxy.register_client("analyst")
        # Cross-server profile: one EI per exchange.
        profile = Profile([TInterval([ExecutionInterval(0, 3, 7),
                                      ExecutionInterval(2, 4, 9)])],
                          name="cross-market")
        proxy.register_profile(client, profile)
        stats = proxy.run()
        assert stats.completed == 1
        values = client.mailbox[0].values()
        assert values == ["nyse:100", "lse:99"]
        counts = fleet.probe_counts()
        assert counts["nyse"] >= 1
        assert counts["lse"] >= 1
