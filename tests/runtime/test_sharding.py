"""Tests for the consistent-hash ring and the budget-stealing ledger."""

import numpy as np
import pytest

from repro.runtime.sharding import (
    BudgetLedger,
    ConsistentHashRing,
    ShardLoad,
    split_budget,
    steal_plan,
)


class TestConsistentHashRing:
    def test_assignment_is_deterministic(self):
        a = ConsistentHashRing(4).assign(200)
        b = ConsistentHashRing(4).assign(200)
        assert np.array_equal(a, b)

    def test_every_resource_owned_by_a_valid_shard(self):
        owners = ConsistentHashRing(5, vnodes=32).assign(300)
        assert owners.min() >= 0
        assert owners.max() < 5

    def test_single_shard_owns_everything(self):
        assert set(ConsistentHashRing(1).assign(50).tolist()) == {0}

    def test_split_is_reasonably_balanced(self):
        owners = ConsistentHashRing(4, vnodes=64).assign(4000)
        counts = np.bincount(owners, minlength=4)
        # Virtual nodes keep the heaviest shard within ~2x of the mean.
        assert counts.max() <= 2 * 1000
        assert counts.min() > 0

    def test_adding_a_shard_only_moves_arcs(self):
        """Consistency: resources either keep their owner or move to
        the *new* shard — existing shards never trade resources."""
        before = ConsistentHashRing(4).assign(1000)
        after = ConsistentHashRing(5).assign(1000)
        moved = before != after
        assert set(after[moved].tolist()) <= {4}
        assert np.count_nonzero(moved) < 1000  # most stay put

    def test_owner_of_matches_assign(self):
        ring = ConsistentHashRing(3)
        owners = ring.assign(64)
        assert [ring.owner_of(rid) for rid in range(64)] == \
            owners.tolist()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="shards"):
            ConsistentHashRing(0)
        with pytest.raises(ValueError, match="vnodes"):
            ConsistentHashRing(2, vnodes=0)


class TestSplitBudget:
    def test_even_split(self):
        assert split_budget(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_lowest_ids(self):
        assert split_budget(7, 4) == [2, 2, 2, 1]
        assert split_budget(3, 5) == [1, 1, 1, 0, 0]

    def test_conserves_total(self):
        for total in range(0, 20):
            for shards in range(1, 7):
                assert sum(split_budget(total, shards)) == total

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="shards"):
            split_budget(4, 0)
        with pytest.raises(ValueError, match="budget"):
            split_budget(-1, 2)


class TestStealPlan:
    def test_no_deficit_no_transfers(self):
        assert steal_plan([2, 2], [1, 2]) == []

    def test_surplus_covers_single_deficit(self):
        assert steal_plan([2, 2], [0, 4]) == [(0, 1, 2)]

    def test_donors_walk_in_priority_order(self):
        # Shards 0 and 1 both have surplus; 0 donates first.
        assert steal_plan([2, 2, 0], [0, 1, 3]) == [(0, 2, 2), (1, 2, 1)]

    def test_largest_deficit_served_first(self):
        plan = steal_plan([4, 0, 0], [0, 1, 3])
        assert plan == [(0, 2, 3), (0, 1, 1)]

    def test_deficit_ties_break_to_lowest_shard(self):
        assert steal_plan([2, 0, 0], [0, 1, 1]) == [(0, 1, 1), (0, 2, 1)]

    def test_plan_is_deterministic(self):
        nominal = [3, 1, 0, 2]
        demand = [0, 2, 3, 1]
        assert steal_plan(nominal, demand) == steal_plan(nominal, demand)

    def test_covers_every_deficit_when_demand_fits_budget(self):
        nominal = [4, 2, 0, 0]
        demand = [0, 1, 3, 2]
        plan = steal_plan(nominal, demand)
        received = [0] * 4
        for _donor, thief, amount in plan:
            received[thief] += amount
        for shard in range(4):
            deficit = max(0, demand[shard] - nominal[shard])
            assert received[shard] == deficit

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            steal_plan([1, 2], [1])


class TestBudgetLedger:
    def test_settle_accumulates_and_conserves(self):
        ledger = BudgetLedger(3)
        ledger.settle(4, [0, 2, 2])
        ledger.settle(4, [3, 0, 1])
        assert sum(ledger.spent) <= sum(ledger.nominal)
        for shard in range(3):
            assert ledger.spent[shard] <= (
                ledger.nominal[shard] + ledger.stolen_in[shard]
                - ledger.stolen_out[shard])
        assert ledger.transferred_units == sum(ledger.stolen_in)
        assert sum(ledger.stolen_in) == sum(ledger.stolen_out)

    def test_loads_reports_every_shard(self):
        ledger = BudgetLedger(2)
        ledger.settle(2, [0, 2])
        loads = ledger.loads(probes_routed=[0, 2], resources=[5, 7])
        assert [load.shard for load in loads] == [0, 1]
        assert loads[1].stolen_in == 1
        assert loads[0].stolen_out == 1
        assert loads[1].effective_budget == 2
        assert loads[0].resources == 5

    def test_effective_budget_property(self):
        load = ShardLoad(shard=0, nominal_budget=4, stolen_in=2,
                         stolen_out=1)
        assert load.effective_budget == 5

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards"):
            BudgetLedger(0)
