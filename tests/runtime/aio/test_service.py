"""The HTTP/SSE front end, exercised over real localhost sockets."""

import asyncio
import json

from repro.core import BudgetVector, Epoch
from repro.online import MRSFPolicy
from repro.runtime import OriginServer
from repro.runtime.aio import (
    AdmissionController,
    AsyncMonitoringProxy,
    ProxyService,
)
from repro.traces import UpdateEvent, UpdateTrace

EPOCH = Epoch(10)


def _service(admission=None):
    trace = UpdateTrace([UpdateEvent(2, 0, "a1"),
                         UpdateEvent(4, 1, "b1")], EPOCH)
    proxy = AsyncMonitoringProxy(
        OriginServer(trace), EPOCH, BudgetVector(2), MRSFPolicy())
    return ProxyService(proxy, admission)


async def _request(port, method, path, body=None, key=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    headers = [f"{method} {path} HTTP/1.1", "Host: localhost"]
    if key is not None:
        headers.append(f"Authorization: Bearer {key}")
    if payload:
        headers.append("Content-Type: application/json")
    headers.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(rest) if rest else {}


PROFILE_BODY = {
    "name": "alpha",
    "tintervals": [[[0, 1, 5]], [[1, 2, 8]]],
    "utility": 0.7,
}


class TestEndpoints:
    def test_health_ready_stats(self):
        async def scenario():
            service = _service()
            _, port = await service.start()
            assert (await _request(port, "GET", "/healthz"))[0] == 200
            assert (await _request(port, "GET", "/readyz"))[0] == 200
            status, payload = await _request(port, "GET", "/stats")
            assert status == 200
            assert payload["clock"] == 0
            assert payload["epoch"] == EPOCH.last
            await service.stop()
            return True
        assert asyncio.run(scenario())

    def test_register_probe_cancel_lifecycle(self):
        async def scenario():
            service = _service()
            _, port = await service.start()
            status, payload = await _request(
                port, "POST", "/profiles", PROFILE_BODY, key="alice")
            assert status == 201
            profile_id = payload["profile_id"]
            assert payload["shed"] == []

            # Wrong owner cannot cancel; owner can.
            status, _ = await _request(
                port, "DELETE", f"/profiles/{profile_id}", key="bob")
            assert status == 403
            status, _ = await _request(
                port, "DELETE", f"/profiles/{profile_id}", key="alice")
            assert status == 204
            status, _ = await _request(
                port, "DELETE", f"/profiles/{profile_id}", key="alice")
            assert status == 404
            await service.stop()
            return True
        assert asyncio.run(scenario())

    def test_auth_and_validation_errors(self):
        async def scenario():
            service = _service()
            _, port = await service.start()
            assert (await _request(port, "POST", "/profiles",
                                   PROFILE_BODY))[0] == 401
            assert (await _request(port, "POST", "/profiles",
                                   {"tintervals": []},
                                   key="alice"))[0] == 400
            assert (await _request(port, "GET", "/nowhere"))[0] == 404
            assert (await _request(port, "POST", "/healthz"))[0] == 405
            await service.stop()
            return True
        assert asyncio.run(scenario())

    def test_admission_rejects_and_sheds_over_http(self):
        async def scenario():
            admission = AdmissionController(max_tintervals=2)
            service = _service(admission)
            _, port = await service.start()
            low = dict(PROFILE_BODY, utility=0.2)
            status, payload = await _request(
                port, "POST", "/profiles", low, key="alice")
            assert status == 201
            victim = payload["profile_id"]

            # Equal utility displaces nothing: rejected.
            status, _ = await _request(
                port, "POST", "/profiles", low, key="bob")
            assert status == 429

            # Higher utility sheds the low-utility incumbent.
            high = dict(PROFILE_BODY, utility=0.9)
            status, payload = await _request(
                port, "POST", "/profiles", high, key="bob")
            assert status == 201
            assert payload["shed"] == [victim]

            status, payload = await _request(port, "GET", "/stats")
            assert payload["admission"]["shed"] == 1
            assert payload["admission"]["rejected_capacity"] == 1
            await service.stop()
            return True
        assert asyncio.run(scenario())

    def test_sse_stream_delivers_events(self):
        async def scenario():
            service = _service()
            _, port = await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"GET /events HTTP/1.1\r\n"
                         b"Host: localhost\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"text/event-stream" in head

            await _request(port, "POST", "/profiles", PROFILE_BODY,
                           key="alice")
            service.serve_epoch()
            events = []
            while len(events) < 3:
                line = await asyncio.wait_for(reader.readline(),
                                              timeout=5.0)
                text = line.decode().strip()
                if text.startswith("event:"):
                    events.append(text.split(": ", 1)[1])
            assert "register" in events
            assert "tick" in events
            writer.close()
            await service.stop()
            return True
        assert asyncio.run(scenario())

    def test_readyz_unready_after_epoch(self):
        async def scenario():
            service = _service()
            _, port = await service.start()
            await service.proxy.arun()
            status, _ = await _request(port, "GET", "/readyz")
            assert status == 503
            await service.stop()
            return True
        assert asyncio.run(scenario())
