"""AsyncMonitoringProxy: capture identity with the sync proxy,
reentrancy, the event stream, and hedged quarantine exits end-to-end."""

import asyncio

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    TInterval,
)
from repro.faults.breaker import BackoffPolicy, CircuitBreaker
from repro.faults.model import FaultSpec
from repro.faults.server import UnreliableServer
from repro.online import MEDFPolicy, MRSFPolicy, SEDFPolicy
from repro.runtime import MonitoringProxy, OriginServer
from repro.runtime.aio import AsyncMonitoringProxy
from repro.traces import UpdateEvent, UpdateTrace

EPOCH = Epoch(12)


def _trace():
    return UpdateTrace(
        [UpdateEvent(2, 0, "a1"), UpdateEvent(5, 1, "b1"),
         UpdateEvent(7, 0, "a2"), UpdateEvent(9, 2, "c1")], EPOCH)


def _profiles():
    return [
        Profile([
            TInterval([ExecutionInterval(0, 1, 4),
                       ExecutionInterval(1, 4, 8)]),
            TInterval([ExecutionInterval(2, 6, 11)]),
        ], name="alpha"),
        Profile([
            TInterval([ExecutionInterval(0, 5, 9)]),
            TInterval([ExecutionInterval(1, 2, 6),
                       ExecutionInterval(2, 8, 12)]),
        ], name="beta"),
    ]


def _run_sync(policy, server):
    proxy = MonitoringProxy(server, EPOCH, BudgetVector(1), policy)
    client = proxy.register_client("c")
    for profile in _profiles():
        proxy.register_profile(client, profile)
    stats = proxy.run()
    return stats, list(client.mailbox), proxy.schedule


def _run_async(policy, server, **kwargs):
    proxy = AsyncMonitoringProxy(server, EPOCH, BudgetVector(1), policy,
                                 **kwargs)
    client = proxy.register_client("c")
    for profile in _profiles():
        proxy.register_profile(client, profile)
    stats = asyncio.run(proxy.arun())
    return stats, list(client.mailbox), proxy.schedule


class TestCaptureIdentity:
    def test_identical_to_sync_on_fault_free_schedule(self):
        for policy_cls in (SEDFPolicy, MRSFPolicy, MEDFPolicy):
            sync_stats, sync_notes, sync_schedule = _run_sync(
                policy_cls(), OriginServer(_trace()))
            async_stats, async_notes, async_schedule = _run_async(
                policy_cls(), OriginServer(_trace()))
            assert async_stats == sync_stats
            assert list(async_schedule.probes()) == \
                list(sync_schedule.probes())
            assert len(async_notes) == len(sync_notes)
            for sync_note, async_note in zip(sync_notes, async_notes):
                assert async_note.profile_id == sync_note.profile_id
                assert async_note.tinterval_id == sync_note.tinterval_id
                assert async_note.completed_at == sync_note.completed_at
                assert async_note.snapshots == sync_note.snapshots

    def test_identical_under_deadline_and_semaphores(self):
        sync_stats, sync_notes, _ = _run_sync(
            MRSFPolicy(), OriginServer(_trace()))
        async_stats, async_notes, _ = _run_async(
            MRSFPolicy(), OriginServer(_trace()),
            deadline=5.0, max_concurrency=1,
            backoff=BackoffPolicy(max_retries=1),
            breaker=CircuitBreaker(), hedge_delay=0.01)
        assert async_stats == sync_stats
        assert len(async_notes) == len(sync_notes)

    def test_matches_sync_under_same_fault_schedule(self):
        # Deterministic faults draw from (seed, resource, chronon,
        # attempt) only, so sync and async proxies see identical
        # outcomes and must produce identical accounting.
        spec = FaultSpec(failure_probability=0.3, seed=7)
        sync_stats, sync_notes, _ = _run_sync(
            MRSFPolicy(), UnreliableServer(OriginServer(_trace()), spec))
        async_stats, async_notes, _ = _run_async(
            MRSFPolicy(), UnreliableServer(OriginServer(_trace()), spec),
            backoff=BackoffPolicy(max_retries=1, base_delay=0.0))
        # The sync run has no retry config, so compare a retry-free
        # async run instead for exact equality.
        async_stats2, async_notes2, _ = _run_async(
            MRSFPolicy(), UnreliableServer(OriginServer(_trace()), spec))
        assert async_stats2 == sync_stats
        assert len(async_notes2) == len(sync_notes)
        # With retries enabled the async proxy can only do better.
        assert async_stats.completed >= sync_stats.completed


class TestReentrancy:
    def test_concurrent_asteps_serialize(self):
        proxy = AsyncMonitoringProxy(
            OriginServer(_trace()), EPOCH, BudgetVector(1), MRSFPolicy())
        client = proxy.register_client("c")
        for profile in _profiles():
            proxy.register_profile(client, profile)

        async def drive():
            return await asyncio.gather(proxy.astep(), proxy.astep(),
                                        proxy.astep())

        chronons = asyncio.run(drive())
        assert sorted(chronons) == [1, 2, 3]
        assert proxy.clock == 3


class TestEventStream:
    def test_events_cover_lifecycle(self):
        proxy = AsyncMonitoringProxy(
            OriginServer(_trace()), EPOCH, BudgetVector(1), MRSFPolicy())
        queue = proxy.subscribe()
        client = proxy.register_client("c")
        for profile in _profiles():
            proxy.register_profile(client, profile)
        proxy.unregister_profile(1)
        asyncio.run(proxy.arun())

        kinds = []
        while not queue.empty():
            kinds.append(queue.get_nowait().kind)
        assert kinds.count("register") == 2
        assert kinds.count("unregister") == 1
        assert kinds.count("tick") == EPOCH.last
        assert kinds.count("notification") == proxy.stats().completed

    def test_unsubscribe_stops_delivery(self):
        proxy = AsyncMonitoringProxy(
            OriginServer(_trace()), EPOCH, BudgetVector(1), MRSFPolicy())
        queue = proxy.subscribe()
        proxy.unsubscribe(queue)
        proxy.register_client("c")
        proxy._emit("tick", {})
        assert queue.empty()
