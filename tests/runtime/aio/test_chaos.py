"""The chaos/soak harness: invariants hold and runs are reproducible."""

import asyncio
import dataclasses

from repro.runtime.aio.chaos import ChaosConfig, run_soak, smoke_scenarios

SMALL = ChaosConfig(epoch_length=30, num_profiles=10, num_resources=8)


class TestSoakInvariants:
    def test_fault_free_run_is_identical_to_sync(self):
        report = asyncio.run(run_soak(SMALL))
        assert report.ok, report.describe()
        assert report.duplicates == 0

    def test_fault_storm_loses_nothing(self):
        config = dataclasses.replace(
            SMALL, failure_probability=0.3, timeout_probability=0.1,
            max_retries=2)
        report = asyncio.run(run_soak(config))
        assert report.ok, report.describe()
        assert report.stats.probes_failed > 0  # the storm actually hit

    def test_outages_and_slow_servers_lose_nothing(self):
        config = dataclasses.replace(
            SMALL, outage_count=2, outage_length=5, slow_fraction=0.2,
            failure_probability=0.05)
        report = asyncio.run(run_soak(config))
        assert report.ok, report.describe()

    def test_same_seed_reproduces_exactly(self):
        config = dataclasses.replace(SMALL, failure_probability=0.25,
                                     seed=3)
        first = asyncio.run(run_soak(config))
        second = asyncio.run(run_soak(config))
        assert first.stats == second.stats
        assert first.delivered == second.delivered

    def test_journal_survives_the_soak(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        report = asyncio.run(run_soak(SMALL, journal_path=path))
        assert report.ok, report.describe()
        text = path.read_text()
        assert text.count('"type":"complete"') == report.stats.completed

    def test_smoke_lineup_covers_fault_modes(self):
        lineup = smoke_scenarios()
        assert any(config.fault_free for config in lineup.values())
        assert any(config.failure_probability > 0
                   for config in lineup.values())
        assert any(config.outage_count > 0
                   for config in lineup.values())
