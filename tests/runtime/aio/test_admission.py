"""Admission control: quotas, capacity, deterministic shedding."""

import pytest

from repro.core import ModelError
from repro.runtime.aio import AdmissionController


class TestQuota:
    def test_quota_rejects_over_limit(self):
        controller = AdmissionController(max_profiles_per_client=2)
        controller.admit(0, "a", 1)
        controller.admit(1, "a", 1)
        decision = controller.decide("a", 1)
        assert not decision.admitted
        assert "quota" in decision.reason
        assert controller.stats.rejected_quota == 1

    def test_quota_is_per_client(self):
        controller = AdmissionController(max_profiles_per_client=1)
        controller.admit(0, "a", 1)
        assert controller.decide("b", 1).admitted

    def test_release_frees_quota(self):
        controller = AdmissionController(max_profiles_per_client=1)
        controller.admit(0, "a", 1)
        controller.release(0)
        assert controller.decide("a", 1).admitted


class TestCapacity:
    def test_admits_within_capacity(self):
        controller = AdmissionController(max_tintervals=4)
        controller.admit(0, "a", 3)
        assert controller.decide("a", 1).admitted

    def test_sheds_lowest_utility_first(self):
        controller = AdmissionController(max_tintervals=4)
        controller.admit(0, "a", 2, utility=0.2)
        controller.admit(1, "b", 2, utility=0.8)
        decision = controller.decide("c", 2, utility=0.5)
        assert decision.admitted
        assert decision.shed == (0,)

    def test_ties_shed_youngest(self):
        controller = AdmissionController(max_tintervals=4)
        controller.admit(0, "a", 2, utility=0.5)
        controller.admit(1, "b", 2, utility=0.5)
        decision = controller.decide("c", 2, utility=0.9)
        assert decision.admitted
        assert decision.shed == (1,)

    def test_newcomer_rejected_when_it_displaces_nothing(self):
        controller = AdmissionController(max_tintervals=4)
        controller.admit(0, "a", 4, utility=0.5)
        decision = controller.decide("b", 1, utility=0.5)
        assert not decision.admitted
        assert "does not displace" in decision.reason
        assert controller.stats.rejected_capacity == 1

    def test_sheds_several_when_needed(self):
        controller = AdmissionController(max_tintervals=4)
        controller.admit(0, "a", 2, utility=0.1)
        controller.admit(1, "b", 2, utility=0.2)
        decision = controller.decide("c", 4, utility=0.9)
        assert decision.admitted
        assert decision.shed == (0, 1)

    def test_identical_sequences_decide_identically(self):
        def run():
            controller = AdmissionController(max_tintervals=6)
            outcomes = []
            for pid, (key, load, utility) in enumerate([
                    ("a", 3, 0.3), ("b", 3, 0.6), ("c", 2, 0.5),
                    ("d", 4, 0.9)]):
                decision = controller.decide(key, load, utility)
                outcomes.append((decision.admitted, decision.shed))
                if decision.admitted:
                    for victim in decision.shed:
                        controller.release(victim, shed=True)
                    controller.admit(pid, key, load, utility)
            return outcomes, controller.stats.as_dict()

        assert run() == run()


class TestCensus:
    def test_release_is_idempotent(self):
        controller = AdmissionController(max_tintervals=4)
        controller.admit(0, "a", 2)
        controller.release(0, shed=True)
        controller.release(0, shed=True)
        assert controller.stats.shed == 1
        assert controller.active_load == 0

    def test_double_admit_rejected(self):
        controller = AdmissionController()
        controller.admit(0, "a", 1)
        with pytest.raises(ModelError, match="already admitted"):
            controller.admit(0, "a", 1)

    def test_validation(self):
        with pytest.raises(ModelError):
            AdmissionController(max_tintervals=0)
        with pytest.raises(ModelError):
            AdmissionController(max_profiles_per_client=0)
        with pytest.raises(ModelError):
            AdmissionController().decide("a", 0)
