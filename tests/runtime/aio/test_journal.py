"""The write-ahead journal: record/replay round-trips, torn tails,
corruption, and full kill-and-recover of a mid-epoch proxy."""

import asyncio
import json

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    ModelError,
    Profile,
    TInterval,
)
from repro.online import MRSFPolicy
from repro.runtime import OriginServer
from repro.runtime.aio import AsyncMonitoringProxy, Journal, replay_journal
from repro.runtime.server import Snapshot
from repro.traces import UpdateEvent, UpdateTrace

EPOCH = Epoch(12)


def _trace():
    return UpdateTrace(
        [UpdateEvent(2, 0, "a1"), UpdateEvent(5, 1, "b1"),
         UpdateEvent(7, 0, "a2")], EPOCH)


def _profile(name="p"):
    return Profile([
        TInterval([ExecutionInterval(0, 1, 5)]),
        TInterval([ExecutionInterval(1, 3, 8),
                   ExecutionInterval(0, 6, 10)]),
    ], name=name)


class TestRoundTrip:
    def test_records_fold_back(self, tmp_path):
        path = tmp_path / "j.jsonl"
        snapshot = Snapshot(resource_id=0, probed_at=3, version=1,
                            updated_at=2, value="a1")
        with Journal(path) as journal:
            journal.record_client(0, "alice")
            journal.record_register(0, 0, _profile("alpha"))
            journal.record_capture(0, 1, 0, snapshot)
            journal.record_complete(0, 0, 5, (snapshot,))
            journal.record_unregister(0)
            journal.record_tick(5)

        state = replay_journal(path)
        assert state.clients == [(0, "alice")]
        assert len(state.registrations) == 1
        entry = state.registrations[0]
        assert entry.profile_id == 0
        assert entry.profile.name == "alpha"
        assert len(entry.profile) == 2
        assert state.captures[(0, 1)][0] == snapshot
        assert state.completions[(0, 0)].snapshots == (snapshot,)
        assert state.unregistered == {0}
        assert state.last_tick == 5

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record_client(0, "a")
            journal.record_tick(3)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"tick","chro')  # crash mid-write
        state = replay_journal(path)
        assert state.last_tick == 3

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record_client(0, "a")
        text = path.read_text()
        path.write_text("garbage\n" + text)
        with pytest.raises(ModelError, match="corrupt"):
            replay_journal(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"type": "header",
                                    "format": "something-else",
                                    "version": 1}) + "\n")
        with pytest.raises(ModelError, match="not an aio journal"):
            replay_journal(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record_client(0, "a")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"mystery"}\n')
            handle.write('{"type":"tick","chronon":1}\n')
        with pytest.raises(ModelError, match="unknown journal record"):
            replay_journal(path)


class TestRecovery:
    def _journaled_proxy(self, path):
        proxy = AsyncMonitoringProxy(
            OriginServer(_trace()), EPOCH, BudgetVector(1), MRSFPolicy(),
            journal=Journal(path))
        client = proxy.register_client("alice")
        proxy.register_profile(client, _profile("alpha"))
        proxy.register_profile(client, _profile("beta"))
        return proxy, client

    def test_recover_restores_registrations_and_completions(
            self, tmp_path):
        path = tmp_path / "j.jsonl"
        proxy, client = self._journaled_proxy(path)

        async def half():
            for _ in range(6):
                await proxy.astep()
        asyncio.run(half())
        proxy.journal.close()
        pre_crash = {(n.profile_id, n.tinterval_id)
                     for n in client.mailbox}

        recovered = AsyncMonitoringProxy.recover(
            path, OriginServer(_trace()), EPOCH, BudgetVector(1),
            MRSFPolicy())
        assert recovered.clock == 6
        assert sorted(recovered._registrations) == [0, 1]
        mailbox = recovered._clients[0].mailbox
        assert {(n.profile_id, n.tinterval_id)
                for n in mailbox} == pre_crash
        assert set(recovered.completed_log) == pre_crash
        # Re-delivered notifications keep their snapshots.
        for notification in mailbox:
            assert notification.snapshots

    def test_recovered_run_matches_uninterrupted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        proxy, _client = self._journaled_proxy(path)

        async def half():
            for _ in range(6):
                await proxy.astep()
        asyncio.run(half())
        proxy.journal.close()

        recovered = AsyncMonitoringProxy.recover(
            path, OriginServer(_trace()), EPOCH, BudgetVector(1),
            MRSFPolicy())
        asyncio.run(recovered.arun())

        reference = AsyncMonitoringProxy(
            OriginServer(_trace()), EPOCH, BudgetVector(1), MRSFPolicy())
        client = reference.register_client("alice")
        reference.register_profile(client, _profile("alpha"))
        reference.register_profile(client, _profile("beta"))
        asyncio.run(reference.arun())

        assert set(recovered.completed_log) == \
            set(reference.completed_log)
        for key, notification in reference.completed_log.items():
            assert recovered.completed_log[key].snapshots == \
                notification.snapshots
        final = recovered.stats()
        assert final.registered == (final.completed + final.expired
                                    + final.dropped)

    def test_double_crash_recovers_twice(self, tmp_path):
        path = tmp_path / "j.jsonl"
        proxy, _client = self._journaled_proxy(path)

        async def steps(target, count):
            for _ in range(count):
                await target.astep()
        asyncio.run(steps(proxy, 4))
        proxy.journal.close()

        second = AsyncMonitoringProxy.recover(
            path, OriginServer(_trace()), EPOCH, BudgetVector(1),
            MRSFPolicy())
        asyncio.run(steps(second, 4))
        second.journal.close()

        third = AsyncMonitoringProxy.recover(
            path, OriginServer(_trace()), EPOCH, BudgetVector(1),
            MRSFPolicy())
        assert third.clock == 8
        assert set(third.completed_log) == set(second.completed_log)

    def test_recovery_is_not_re_journaled(self, tmp_path):
        path = tmp_path / "j.jsonl"
        proxy, _client = self._journaled_proxy(path)

        async def steps(count):
            for _ in range(count):
                await proxy.astep()
        asyncio.run(steps(4))
        proxy.journal.close()
        before = path.read_text().count('"type":"complete"')

        recovered = AsyncMonitoringProxy.recover(
            path, OriginServer(_trace()), EPOCH, BudgetVector(1),
            MRSFPolicy())
        recovered.journal.close()
        after = path.read_text().count('"type":"complete"')
        assert after == before
