"""Tests for the async probe executor: ledger, semaphores, deadlines,
backoff retries, and hedged quarantine-exit trials."""

import asyncio
from types import SimpleNamespace

import pytest

from repro.core.errors import FaultError
from repro.faults.breaker import BackoffPolicy, CircuitBreaker
from repro.runtime.aio.engine import (
    HEDGE_ATTEMPT,
    BudgetLedger,
    ServerSemaphores,
    execute_probes_async,
)
from repro.runtime.server import (
    PROBE_FAILED,
    PROBE_OK,
    ProbeOutcome,
    Snapshot,
)


def _ok(resource_id, chronon=1, attempt=0):
    return ProbeOutcome(
        resource_id=resource_id, chronon=chronon, status=PROBE_OK,
        snapshot=Snapshot(resource_id=resource_id, probed_at=chronon,
                          version=0, updated_at=0, value="v"),
        attempt=attempt)


def _failed(resource_id, chronon=1, attempt=0):
    return ProbeOutcome(resource_id=resource_id, chronon=chronon,
                        status=PROBE_FAILED, fault="drop",
                        attempt=attempt)


def _decisions(*resource_ids):
    return [SimpleNamespace(resource_id=rid) for rid in resource_ids]


class TestBudgetLedger:
    def test_reserve_and_remaining(self):
        ledger = BudgetLedger(3)
        ledger.reserve(2)
        assert ledger.spent == 2
        assert ledger.remaining == 1

    def test_overspend_raises(self):
        ledger = BudgetLedger(1)
        ledger.reserve()
        with pytest.raises(FaultError, match="overspend"):
            ledger.reserve()

    def test_try_reserve_refuses_without_spending(self):
        ledger = BudgetLedger(1)
        assert ledger.try_reserve()
        assert not ledger.try_reserve()
        assert ledger.spent == 1

    def test_refund_returns_units(self):
        ledger = BudgetLedger(2)
        ledger.reserve(2)
        ledger.refund()
        assert ledger.remaining == 1

    def test_refund_more_than_spent_raises(self):
        with pytest.raises(FaultError, match="refund"):
            BudgetLedger(2).refund(1)

    def test_negative_limit_rejected(self):
        with pytest.raises(FaultError, match=">= 0"):
            BudgetLedger(-1)


class TestServerSemaphores:
    def test_shared_semaphore_without_router(self):
        semaphores = ServerSemaphores(2)
        assert semaphores.for_resource(0) is semaphores.for_resource(5)

    def test_per_server_semaphores_with_router(self):
        semaphores = ServerSemaphores(
            2, owner_of=lambda rid: "a" if rid < 4 else "b")
        assert semaphores.for_resource(0) is semaphores.for_resource(1)
        assert semaphores.for_resource(0) is not semaphores.for_resource(7)

    def test_limit_validated(self):
        with pytest.raises(FaultError, match=">= 1"):
            ServerSemaphores(0)


class TestExecuteProbesAsync:
    def test_all_success_accounting(self):
        async def prober(resource_id, attempt):
            return _ok(resource_id, attempt=attempt)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0, 1, 2), 1, 3, prober))
        assert round_.attempts == 3
        assert round_.failures == 0
        assert sorted(round_.outcomes) == [0, 1, 2]
        assert round_.failed == []

    def test_over_budget_decisions_rejected(self):
        async def prober(resource_id, attempt):
            return _ok(resource_id)

        with pytest.raises(FaultError, match="overspend"):
            asyncio.run(execute_probes_async(
                _decisions(0, 1), 1, 1, prober))

    def test_deadline_converts_to_failed_probe(self):
        async def prober(resource_id, attempt):
            await asyncio.sleep(0.2)
            return _ok(resource_id)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 1, 1, prober, deadline=0.01))
        assert round_.failed == [0]
        assert round_.deadline_timeouts == 1
        assert round_.failures == 1

    def test_retry_succeeds_with_leftover_budget(self):
        calls = []

        async def prober(resource_id, attempt):
            calls.append(attempt)
            if attempt == 0:
                return _failed(resource_id)
            return _ok(resource_id, attempt=attempt)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 1, 2, prober,
            backoff=BackoffPolicy(max_retries=1, base_delay=0.0)))
        assert calls == [0, 1]
        assert round_.retries == 1
        assert round_.failures == 1
        assert 0 in round_.outcomes

    def test_no_retry_without_leftover_budget(self):
        calls = []

        async def prober(resource_id, attempt):
            calls.append(attempt)
            return _failed(resource_id)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 1, 1, prober,
            backoff=BackoffPolicy(max_retries=2, base_delay=0.0)))
        assert calls == [0]
        assert round_.retries == 0
        assert round_.failed == [0]

    def test_mid_chronon_trip_stops_retries(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4)

        async def prober(resource_id, attempt):
            return _failed(resource_id)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 1, 4, prober, breaker=breaker,
            backoff=BackoffPolicy(max_retries=3, base_delay=0.0)))
        # The first failure trips the breaker, blocking every retry.
        assert round_.attempts == 1
        assert breaker.is_blocked(0, 2)

    def test_semaphore_caps_concurrency(self):
        gauge = {"now": 0, "peak": 0}

        async def prober(resource_id, attempt):
            gauge["now"] += 1
            gauge["peak"] = max(gauge["peak"], gauge["now"])
            await asyncio.sleep(0.01)
            gauge["now"] -= 1
            return _ok(resource_id)

        asyncio.run(execute_probes_async(
            _decisions(0, 1, 2, 3), 1, 4, prober,
            semaphores=ServerSemaphores(2)))
        assert gauge["peak"] <= 2


class TestHedgedTrials:
    def _half_open_breaker(self):
        # Trip at chronon 1 with cooldown 1: open_until = 2, so the
        # resource is half-open (trial-eligible) from chronon 3 on.
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure(0, 1)
        assert breaker.is_half_open(0, 3)
        return breaker

    def test_duplicate_success_counts_as_hedge(self):
        async def prober(resource_id, attempt):
            if attempt == 0:
                await asyncio.sleep(0.05)  # slow primary
            return _ok(resource_id, chronon=3, attempt=attempt)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 3, 2, prober,
            breaker=self._half_open_breaker(), hedge_delay=0.005))
        assert round_.hedges == 1
        assert round_.attempts == 2
        assert 0 in round_.outcomes
        # requests_sent identity: used + failed + hedges == attempts
        assert 1 + round_.failures + round_.hedges == round_.attempts

    def test_hedge_rescues_failing_primary(self):
        async def prober(resource_id, attempt):
            if attempt == 0:
                await asyncio.sleep(0.05)
                return _failed(resource_id, chronon=3)
            return _ok(resource_id, chronon=3, attempt=attempt)

        breaker = self._half_open_breaker()
        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 3, 2, prober, breaker=breaker,
            hedge_delay=0.005))
        assert 0 in round_.outcomes
        assert round_.outcomes[0].attempt == HEDGE_ATTEMPT
        assert round_.failures == 1
        assert round_.hedges == 0
        # The hedge success closed the breaker.
        assert not breaker.is_blocked(0, 4)

    def test_fast_primary_skips_hedge(self):
        calls = []

        async def prober(resource_id, attempt):
            calls.append(attempt)
            return _ok(resource_id, chronon=3, attempt=attempt)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 3, 2, prober,
            breaker=self._half_open_breaker(), hedge_delay=0.05))
        assert calls == [0]
        assert round_.attempts == 1
        assert round_.hedges == 0

    def test_no_hedge_without_leftover_budget(self):
        calls = []

        async def prober(resource_id, attempt):
            calls.append(attempt)
            await asyncio.sleep(0.02)
            return _ok(resource_id, chronon=3, attempt=attempt)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 3, 1, prober,
            breaker=self._half_open_breaker(), hedge_delay=0.005))
        assert calls == [0]
        assert round_.attempts == 1

    def test_failed_trial_re_trips_without_retries(self):
        breaker = self._half_open_breaker()

        async def prober(resource_id, attempt):
            await asyncio.sleep(0.02)
            return _failed(resource_id, chronon=3, attempt=attempt)

        round_ = asyncio.run(execute_probes_async(
            _decisions(0), 3, 4, prober, breaker=breaker,
            hedge_delay=0.005,
            backoff=BackoffPolicy(max_retries=3, base_delay=0.0)))
        assert round_.failed == [0]
        assert round_.retries == 0
        assert breaker.is_blocked(0, 4)
