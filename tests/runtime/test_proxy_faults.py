"""The proxy runtime under unreliable origin servers.

Covers the acceptance properties of the fault-injection layer:

* a null-fault :class:`UnreliableServer` run is indistinguishable from an
  :class:`OriginServer` run (same schedule, stats, notifications);
* two faulty runs with the same seed are identical;
* failed probes consume budget without capturing, retries spend leftover
  budget, and the circuit breaker demonstrably saves budget under a
  permanent outage;
* the flush invariant ``registered == completed + expired + dropped``
  survives faults.
"""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    TInterval,
)
from repro.faults import (
    CircuitBreaker,
    FaultSpec,
    Outage,
    RetryConfig,
    UnreliableServer,
)
from repro.online import MEDFPolicy, SEDFPolicy
from repro.runtime import MonitoringProxy, OriginServer
from repro.traces import UpdateEvent, UpdateTrace

EPOCH = Epoch(30)


def make_trace() -> UpdateTrace:
    events = [UpdateEvent(chronon, resource_id, f"v{chronon}")
              for chronon in range(2, 28, 5)
              for resource_id in range(4)]
    return UpdateTrace(events, EPOCH)


def make_profiles() -> list[Profile]:
    profiles = []
    for start in (1, 6, 11, 16, 21):
        for resource_id in range(4):
            profiles.append(Profile([TInterval(
                [ExecutionInterval(resource_id, start, start + 4)])]))
    return profiles


def run_proxy(server, policy=None, retry=None, breaker=None,
              budget: int = 1):
    proxy = MonitoringProxy(server, EPOCH, BudgetVector(budget),
                            policy or SEDFPolicy(), retry=retry,
                            breaker=breaker)
    client = proxy.register_client("c")
    for profile in make_profiles():
        proxy.register_profile(client, profile)
    stats = proxy.run()
    return proxy, client, stats


def probe_set(proxy):
    return sorted(proxy.schedule.probes())


class TestNullFaultIdentity:
    def test_wrapped_run_identical_to_bare_run(self):
        bare_proxy, bare_client, bare_stats = run_proxy(
            OriginServer(make_trace()))
        wrapped_proxy, wrapped_client, wrapped_stats = run_proxy(
            UnreliableServer(OriginServer(make_trace())))

        assert probe_set(wrapped_proxy) == probe_set(bare_proxy)
        assert wrapped_stats == bare_stats
        assert wrapped_stats.probes_failed == 0
        assert wrapped_stats.retries == 0
        bare_mail = [(n.profile_id, n.completed_at,
                      tuple(s.value for s in n.snapshots))
                     for n in bare_client.mailbox]
        wrapped_mail = [(n.profile_id, n.completed_at,
                         tuple(s.value for s in n.snapshots))
                        for n in wrapped_client.mailbox]
        assert wrapped_mail == bare_mail

    def test_zero_rate_spec_identical_too(self):
        _, _, bare_stats = run_proxy(OriginServer(make_trace()))
        _, _, spec_stats = run_proxy(UnreliableServer(
            OriginServer(make_trace()),
            FaultSpec(failure_probability=0.0, seed=99)))
        assert spec_stats == bare_stats


class TestFaultyDeterminism:
    @pytest.mark.parametrize("policy_factory", [SEDFPolicy, MEDFPolicy])
    def test_same_seed_identical_runs(self, policy_factory):
        spec = FaultSpec(failure_probability=0.35, seed=7)
        one_proxy, one_client, one_stats = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec),
            policy=policy_factory(), retry=RetryConfig(1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=3))
        two_proxy, two_client, two_stats = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec),
            policy=policy_factory(), retry=RetryConfig(1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=3))
        assert one_stats == two_stats
        assert probe_set(one_proxy) == probe_set(two_proxy)
        assert len(one_client.mailbox) == len(two_client.mailbox)


class TestBudgetAccounting:
    def test_failed_probes_consume_budget_not_schedule(self):
        spec = FaultSpec(outages=(Outage(0, 0, None),))
        proxy, _, stats = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec))
        assert stats.probes_failed > 0
        # Failed requests never enter the schedule...
        assert stats.probes_used == len(proxy.schedule)
        # ...but they do count toward the budget actually consumed.
        assert stats.requests_sent == \
            stats.probes_used + stats.probes_failed
        assert stats.requests_sent <= EPOCH.length

    def test_retries_spend_leftover_budget(self):
        spec = FaultSpec(failure_probability=0.5, seed=3)
        _, _, no_retry = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec), budget=3)
        _, _, with_retry = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec), budget=3,
            retry=RetryConfig(2))
        assert no_retry.retries == 0
        assert with_retry.retries > 0
        # Recovered retries can only help completeness.
        assert with_retry.completed >= no_retry.completed

    def test_flush_invariant_under_faults(self):
        spec = FaultSpec(failure_probability=0.4, seed=11)
        _, _, stats = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec),
            retry=RetryConfig(1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=4))
        assert stats.registered == \
            stats.completed + stats.expired + stats.dropped


class TestCircuitBreaker:
    def test_breaker_saves_budget_under_permanent_outage(self):
        # Resource 0 is dead the whole epoch. Without a breaker S-EDF
        # keeps burning its budget on it (resource 0 wins score ties);
        # with a breaker the budget is redirected after two failures.
        spec = FaultSpec(outages=(Outage(0, 0, None),))
        _, _, without = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec))
        _, _, with_breaker = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=8))
        assert with_breaker.resources_quarantined == 1
        assert without.resources_quarantined == 0
        assert with_breaker.probes_failed < without.probes_failed
        assert with_breaker.completed > without.completed
        assert with_breaker.completeness > without.completeness

    def test_quarantine_releases_after_outage_ends(self):
        spec = FaultSpec(outages=(Outage(0, 0, 10),))
        proxy, _, stats = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=3))
        # Probes of resource 0 succeed again after the outage window.
        late_probes = [(resource_id, chronon)
                       for resource_id, chronon in proxy.schedule.probes()
                       if resource_id == 0 and chronon > 10]
        assert late_probes
        assert stats.resources_quarantined == 1


class TestStaleReadsInNotifications:
    def test_stale_snapshots_are_delivered(self):
        spec = FaultSpec(stale_probability=1.0, stale_lag=3, seed=2)
        _, client, stats = run_proxy(
            UnreliableServer(OriginServer(make_trace()), spec))
        assert stats.completed == len(client.mailbox) > 0
