"""Tests for the origin server (versioned volatile state)."""

import pytest

from repro.core import Epoch, ModelError
from repro.runtime import OriginServer
from repro.traces import UpdateEvent, UpdateTrace


@pytest.fixture
def server() -> OriginServer:
    trace = UpdateTrace(
        [UpdateEvent(3, 0, "a"), UpdateEvent(7, 0, "b"),
         UpdateEvent(5, 1, "x")],
        Epoch(20))
    return OriginServer(trace)


class TestAdvance:
    def test_initial_clock_zero(self, server):
        assert server.clock == 0

    def test_advance_applies_events(self, server):
        applied = server.advance_to(5)
        assert [(e.chronon, e.resource_id) for e in applied] == [
            (3, 0), (5, 1)]
        assert server.clock == 5

    def test_advance_is_incremental(self, server):
        server.advance_to(4)
        applied = server.advance_to(10)
        assert [(e.chronon, e.resource_id) for e in applied] == [
            (5, 1), (7, 0)]

    def test_backwards_rejected(self, server):
        server.advance_to(5)
        with pytest.raises(ModelError, match="backwards"):
            server.advance_to(4)

    def test_advance_to_same_chronon_is_noop(self, server):
        server.advance_to(5)
        assert server.advance_to(5) == []


class TestProbe:
    def test_probe_before_any_update(self, server):
        snapshot = server.probe(0)
        assert snapshot.version == 0
        assert snapshot.updated_at == 0
        assert snapshot.value == ""

    def test_probe_sees_latest_value_only(self, server):
        server.advance_to(10)
        snapshot = server.probe(0)
        # "a" was overwritten by "b" — volatile data.
        assert snapshot.value == "b"
        assert snapshot.version == 2
        assert snapshot.updated_at == 7

    def test_probe_between_updates(self, server):
        server.advance_to(5)
        snapshot = server.probe(0)
        assert snapshot.value == "a"
        assert snapshot.version == 1

    def test_probe_timestamps(self, server):
        server.advance_to(7)
        snapshot = server.probe(0)
        assert snapshot.probed_at == 7
        assert snapshot.is_fresh

    def test_unknown_resource_probe(self, server):
        server.advance_to(5)
        snapshot = server.probe(42)
        assert snapshot.version == 0


class TestPublish:
    def test_publish_future_event(self, server):
        server.advance_to(4)
        server.publish(UpdateEvent(6, 2, "new"))
        server.advance_to(6)
        assert server.probe(2).value == "new"

    def test_publish_in_past_rejected(self, server):
        server.advance_to(5)
        with pytest.raises(ModelError, match="clock"):
            server.publish(UpdateEvent(5, 2, "late"))

    def test_published_events_interleave_with_trace(self, server):
        server.publish(UpdateEvent(4, 0, "mid"))
        server.advance_to(4)
        assert server.probe(0).value == "mid"
        server.advance_to(7)
        assert server.probe(0).value == "b"

    def test_version_counter(self, server):
        server.advance_to(20)
        assert server.version_of(0) == 2
        assert server.version_of(1) == 1
        assert server.version_of(9) == 0

    def test_empty_server(self):
        server = OriginServer()
        server.advance_to(10)
        assert server.probe(0).version == 0


class TestIsFresh:
    def test_never_updated_resource_is_not_fresh_at_chronon_zero(self):
        # Regression: updated_at == probed_at == 0 for a version-0
        # resource used to spuriously report fresh.
        server = OriginServer()
        snapshot = server.probe(0)
        assert snapshot.version == 0
        assert snapshot.updated_at == snapshot.probed_at == 0
        assert not snapshot.is_fresh

    def test_never_updated_resource_is_not_fresh_later(self, server):
        server.advance_to(5)
        assert not server.probe(42).is_fresh

    def test_fresh_when_updated_at_probe_chronon(self, server):
        server.advance_to(3)
        assert server.probe(0).is_fresh

    def test_not_fresh_after_the_update_chronon(self, server):
        server.advance_to(4)
        assert not server.probe(0).is_fresh


class TestPublishInterleavings:
    def test_publish_between_advances(self, server):
        server.advance_to(4)
        server.publish(UpdateEvent(6, 2, "mid-run"))
        server.advance_to(5)
        assert server.probe(2).version == 0
        server.advance_to(6)
        snapshot = server.probe(2)
        assert snapshot.value == "mid-run"
        assert snapshot.version == 1

    def test_out_of_order_publishes_apply_in_chronon_order(self, server):
        server.advance_to(2)
        server.publish(UpdateEvent(9, 3, "later"))
        server.publish(UpdateEvent(6, 3, "sooner"))
        applied = server.advance_to(20)
        chronons = [event.chronon for event in applied]
        assert chronons == sorted(chronons)
        # "later" overwrites "sooner" — volatile history.
        assert server.probe(3).value == "later"
        assert server.version_of(3) == 2

    def test_publish_interleaves_with_remaining_trace(self, server):
        server.advance_to(4)
        server.publish(UpdateEvent(6, 0, "wedge"))
        server.advance_to(6)
        assert server.probe(0).value == "wedge"
        server.advance_to(7)
        # The original trace event at chronon 7 still lands on top.
        assert server.probe(0).value == "b"
        assert server.version_of(0) == 3

    def test_publish_at_current_clock_rejected(self, server):
        server.advance_to(5)
        with pytest.raises(ModelError, match="cannot publish"):
            server.publish(UpdateEvent(5, 0, "now"))

    def test_publish_into_past_rejected(self, server):
        server.advance_to(8)
        with pytest.raises(ModelError, match="cannot publish"):
            server.publish(UpdateEvent(3, 0, "ancient"))

    def test_publish_after_advance_to_same_chronon_twice(self, server):
        server.advance_to(5)
        server.advance_to(5)
        server.publish(UpdateEvent(6, 4, "ok"))
        server.advance_to(6)
        assert server.probe(4).value == "ok"


class TestTryProbe:
    def test_reliable_server_always_answers(self, server):
        server.advance_to(5)
        outcome = server.try_probe(0)
        assert outcome.ok
        assert outcome.status == "ok"
        assert outcome.snapshot == server.probe(0)
        assert outcome.fault is None
        assert not outcome.stale

    def test_attempt_is_echoed(self, server):
        outcome = server.try_probe(0, attempt=2)
        assert outcome.attempt == 2
