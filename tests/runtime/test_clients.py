"""Tests for the Client mailbox/callback mechanics."""

import pytest

from repro.runtime import Client, Notification
from repro.runtime.server import Snapshot


def _notification(client_id: int = 0, completed_at: int = 5
                  ) -> Notification:
    snapshot = Snapshot(resource_id=1, probed_at=completed_at, version=2,
                        updated_at=4, value="v2")
    return Notification(client_id=client_id, profile_name="p",
                        profile_id=0, tinterval_id=3,
                        completed_at=completed_at,
                        snapshots=(snapshot,))


class TestClient:
    def test_default_name(self):
        assert Client(7).name == "client7"

    def test_deliver_appends_to_mailbox(self):
        client = Client(0)
        client.deliver(_notification())
        client.deliver(_notification(completed_at=9))
        assert [n.completed_at for n in client.mailbox] == [5, 9]

    def test_callback_called_synchronously(self):
        seen = []
        client = Client(0, callback=seen.append)
        note = _notification()
        client.deliver(note)
        assert seen == [note]
        assert client.mailbox == (note,)

    def test_callback_exception_propagates(self):
        def boom(_notification):
            raise RuntimeError("client bug")

        client = Client(0, callback=boom)
        with pytest.raises(RuntimeError, match="client bug"):
            client.deliver(_notification())
        # Mailbox delivery happened before the callback blew up.
        assert len(client.mailbox) == 1

    def test_drain_empties_mailbox(self):
        client = Client(0)
        client.deliver(_notification())
        drained = client.drain()
        assert len(drained) == 1
        assert client.mailbox == ()
        assert client.drain() == []


class TestNotification:
    def test_values_in_ei_order(self):
        first = Snapshot(0, 3, 1, 3, "a")
        second = Snapshot(1, 5, 1, 4, "b")
        note = Notification(client_id=0, profile_name="p", profile_id=0,
                            tinterval_id=0, completed_at=5,
                            snapshots=(first, second))
        assert note.values() == ["a", "b"]

    def test_snapshot_freshness(self):
        fresh = Snapshot(0, 4, 1, 4, "x")
        stale = Snapshot(0, 6, 1, 4, "x")
        assert fresh.is_fresh
        assert not stale.is_fresh
