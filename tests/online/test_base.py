"""Tests for the online policy framework: states, selection, preemption."""

import pytest

from repro.core import ExecutionInterval, TInterval
from repro.online import (
    Candidate,
    SEDFPolicy,
    TIntervalState,
    apply_probes,
    select_probes,
)


def _state(*specs: tuple[int, int, int], rank: int | None = None
           ) -> TIntervalState:
    eta = TInterval([ExecutionInterval(r, s, f) for r, s, f in specs])
    return TIntervalState(eta, profile_rank=rank or len(specs))


class TestTIntervalState:
    def test_initial_state(self):
        state = _state((0, 1, 5), (1, 3, 8))
        assert state.captured_count == 0
        assert state.residual == 2
        assert not state.is_complete
        assert not state.committed

    def test_mark_captured(self):
        state = _state((0, 1, 5), (1, 3, 8))
        state.mark_captured(0)
        assert state.captured_count == 1
        assert state.residual == 1
        assert not state.is_complete
        state.mark_captured(1)
        assert state.is_complete

    def test_is_expired_when_uncaptured_deadline_passes(self):
        state = _state((0, 1, 5), (1, 3, 8))
        assert not state.is_expired(5)
        assert state.is_expired(6)

    def test_not_expired_if_passed_ei_was_captured(self):
        state = _state((0, 1, 5), (1, 3, 8))
        state.mark_captured(0)
        assert not state.is_expired(6)

    def test_probeable_eis_active_and_uncaptured(self):
        state = _state((0, 1, 5), (1, 3, 8))
        assert [ei.resource_id for ei in state.probeable_eis(2)] == [0]
        assert [ei.resource_id for ei in state.probeable_eis(4)] == [0, 1]
        state.mark_captured(0)
        assert [ei.resource_id for ei in state.probeable_eis(4)] == [1]

    def test_uncaptured_eis(self):
        state = _state((0, 1, 5), (1, 3, 8))
        state.mark_captured(1)
        assert [ei.resource_id for ei in state.uncaptured_eis()] == [0]

    def test_key(self):
        eta = TInterval([ExecutionInterval(0, 1, 2)],
                        tinterval_id=3, profile_id=7)
        assert TIntervalState(eta, 1).key == (7, 3)


class TestSelectProbes:
    def test_budget_zero_selects_nothing(self):
        state = _state((0, 1, 5))
        candidates = [Candidate(state, state.eta[0])]
        assert select_probes(SEDFPolicy(), candidates, 1, 0, True) == []

    def test_empty_candidates(self):
        assert select_probes(SEDFPolicy(), [], 1, 3, True) == []

    def test_selects_earliest_deadline(self):
        urgent = _state((0, 1, 3))
        relaxed = _state((1, 1, 9))
        candidates = [Candidate(relaxed, relaxed.eta[0]),
                      Candidate(urgent, urgent.eta[0])]
        decisions = select_probes(SEDFPolicy(), candidates, 1, 1, True)
        assert [d.resource_id for d in decisions] == [0]
        assert decisions[0].selected.state is urgent

    def test_budget_limits_selection(self):
        states = [_state((i, 1, 3 + i)) for i in range(5)]
        candidates = [Candidate(s, s.eta[0]) for s in states]
        decisions = select_probes(SEDFPolicy(), candidates, 1, 2, True)
        assert [d.resource_id for d in decisions] == [0, 1]

    def test_same_resource_consumes_one_probe(self):
        a = _state((0, 1, 3))
        b = _state((0, 1, 4))
        c = _state((1, 1, 9))
        candidates = [Candidate(s, s.eta[0]) for s in (a, b, c)]
        decisions = select_probes(SEDFPolicy(), candidates, 1, 2, True)
        assert [d.resource_id for d in decisions] == [0, 1]

    def test_coverage_tie_break(self):
        # Equal deadlines: resource 1 serves two candidates, resource 0
        # serves one -> resource 1 wins despite the higher id.
        single = _state((0, 1, 5))
        double_a = _state((1, 1, 5))
        double_b = _state((1, 2, 5))
        candidates = [Candidate(single, single.eta[0]),
                      Candidate(double_a, double_a.eta[0]),
                      Candidate(double_b, double_b.eta[0])]
        decisions = select_probes(SEDFPolicy(), candidates, 2, 1, True)
        assert [d.resource_id for d in decisions] == [1]


class TestNonPreemptiveSelection:
    def test_committed_first(self):
        committed = _state((0, 1, 9))
        committed.committed = True
        urgent_fresh = _state((1, 1, 2))
        candidates = [Candidate(urgent_fresh, urgent_fresh.eta[0]),
                      Candidate(committed, committed.eta[0])]
        decisions = select_probes(SEDFPolicy(), candidates, 1, 1, False)
        # Despite the fresher deadline, the committed t-interval wins.
        assert [d.resource_id for d in decisions] == [0]

    def test_leftover_budget_goes_to_fresh(self):
        committed = _state((0, 1, 9))
        committed.committed = True
        fresh = _state((1, 1, 2))
        candidates = [Candidate(fresh, fresh.eta[0]),
                      Candidate(committed, committed.eta[0])]
        decisions = select_probes(SEDFPolicy(), candidates, 1, 2, False)
        assert sorted(d.resource_id for d in decisions) == [0, 1]

    def test_preemptive_ignores_commitment(self):
        committed = _state((0, 1, 9))
        committed.committed = True
        fresh = _state((1, 1, 2))
        candidates = [Candidate(fresh, fresh.eta[0]),
                      Candidate(committed, committed.eta[0])]
        decisions = select_probes(SEDFPolicy(), candidates, 1, 1, True)
        assert [d.resource_id for d in decisions] == [1]


class TestApplyProbes:
    def test_captures_all_active_eis_on_probed_resource(self):
        a = _state((0, 1, 5))
        b = _state((0, 3, 8), (1, 4, 9))
        candidates = [Candidate(a, a.eta[0]), Candidate(b, b.eta[0])]
        decisions = select_probes(SEDFPolicy(), candidates, 4, 1, True)
        captured = apply_probes(decisions, candidates, 4)
        assert len(captured) == 2
        assert a.is_complete
        assert b.captured_count == 1

    def test_capture_commits_tinterval(self):
        a = _state((0, 1, 5))
        candidates = [Candidate(a, a.eta[0])]
        decisions = select_probes(SEDFPolicy(), candidates, 2, 1, True)
        apply_probes(decisions, candidates, 2)
        assert a.committed

    def test_inactive_ei_not_captured(self):
        a = _state((0, 1, 3))
        b = _state((0, 6, 9))
        candidates = [Candidate(a, a.eta[0]), Candidate(b, b.eta[0])]
        decisions = select_probes(SEDFPolicy(), [candidates[0]], 2, 1,
                                  True)
        apply_probes(decisions, candidates, 2)
        assert a.is_complete
        assert b.captured_count == 0
