"""Tests for the paper's three policies: score formulas and semantics.

Includes a worked example in the spirit of the paper's Figure 2 / Example
1: one candidate t-interval with four EIs evaluated at a chronon T.
"""

import pytest

from repro.core import ExecutionInterval, TInterval
from repro.online import (
    Candidate,
    MEDFPolicy,
    MRSFPolicy,
    SEDFPolicy,
    TIntervalState,
    m_edf_value,
    mrsf_value,
    s_edf_value,
)


class TestSEDFValues:
    def test_remaining_chronons(self):
        ei = ExecutionInterval(0, 2, 9)
        assert s_edf_value(ei, 4) == 5.0

    def test_at_deadline_zero(self):
        ei = ExecutionInterval(0, 2, 9)
        assert s_edf_value(ei, 9) == 0.0

    def test_inactive_uses_absolute_deadline(self):
        ei = ExecutionInterval(0, 5, 9)
        assert s_edf_value(ei, 0) == 9.0

    def test_policy_scores_candidate(self):
        eta = TInterval([ExecutionInterval(0, 1, 7)])
        state = TIntervalState(eta, 1)
        candidate = Candidate(state, eta[0])
        assert SEDFPolicy().score(candidate, 3) == 4.0


class TestMRSFValues:
    def test_formula(self):
        assert mrsf_value(profile_rank=3, captured_count=1) == 2.0

    def test_policy_uses_profile_rank_not_size(self):
        # A 2-EI t-interval inside a rank-3 profile scores 3 - captured.
        eta = TInterval([ExecutionInterval(0, 1, 5),
                         ExecutionInterval(1, 1, 5)])
        state = TIntervalState(eta, profile_rank=3)
        candidate = Candidate(state, eta[0])
        assert MRSFPolicy().score(candidate, 1) == 3.0
        state.mark_captured(1)
        assert MRSFPolicy().score(candidate, 1) == 2.0

    def test_lower_residual_preferred(self):
        eta = TInterval([ExecutionInterval(0, 1, 5),
                         ExecutionInterval(1, 1, 5)])
        near = TIntervalState(eta, 2)
        near.mark_captured(1)
        far = TIntervalState(
            TInterval([ExecutionInterval(2, 1, 5),
                       ExecutionInterval(3, 1, 5)]), 2)
        policy = MRSFPolicy()
        assert (policy.score(Candidate(near, near.eta[0]), 1)
                < policy.score(Candidate(far, far.eta[0]), 1))


class TestMEDFValues:
    def test_sums_uncaptured_siblings(self):
        eta = TInterval([ExecutionInterval(0, 1, 6),
                         ExecutionInterval(1, 2, 9)])
        state = TIntervalState(eta, 2)
        # At T=3 both active: (6-3) + (9-3) = 9.
        assert m_edf_value(state, 3) == 9.0

    def test_captured_siblings_excluded(self):
        eta = TInterval([ExecutionInterval(0, 1, 6),
                         ExecutionInterval(1, 2, 9)])
        state = TIntervalState(eta, 2)
        state.mark_captured(0)
        assert m_edf_value(state, 3) == 6.0

    def test_inactive_sibling_counted_at_time_zero(self):
        eta = TInterval([ExecutionInterval(0, 1, 6),
                         ExecutionInterval(1, 10, 14)])
        state = TIntervalState(eta, 2)
        # At T=3: active EI contributes 6-3=3; inactive contributes its
        # absolute deadline 14 (EDF evaluated at T=0, per the paper).
        assert m_edf_value(state, 3) == 17.0

    def test_policy_scores_via_state(self):
        eta = TInterval([ExecutionInterval(0, 1, 6)])
        state = TIntervalState(eta, 1)
        assert MEDFPolicy().score(Candidate(state, eta[0]), 2) == 4.0


class TestExample1WorkedExample:
    """A Figure-2-style example: a 4-EI t-interval evaluated at T = 10.

    EIs: A = r0[2,12] (active), B = r1[5,9] (already captured),
    C = r2[8,15] (active), D = r3[13,20] (not yet active).
    Profile rank = 4.
    """

    @pytest.fixture
    def state(self) -> TIntervalState:
        eta = TInterval([
            ExecutionInterval(0, 2, 12),
            ExecutionInterval(1, 5, 9),
            ExecutionInterval(2, 8, 15),
            ExecutionInterval(3, 13, 20),
        ])
        state = TIntervalState(eta, profile_rank=4)
        state.mark_captured(1)  # B was captured earlier
        return state

    def test_s_edf_per_ei(self, state):
        chronon = 10
        values = [s_edf_value(ei, chronon) for ei in state.eta]
        assert values == [2.0, -1.0, 5.0, 10.0]

    def test_mrsf(self, state):
        candidate = Candidate(state, state.eta[0])
        assert MRSFPolicy().score(candidate, 10) == 4 - 1 == 3

    def test_m_edf(self, state):
        # Uncaptured: A (2 left), C (5 left), D inactive -> absolute 20.
        assert m_edf_value(state, 10) == 2 + 5 + 20

    def test_policy_metadata(self):
        assert SEDFPolicy().level == "ei"
        assert MRSFPolicy().level == "rank"
        assert MEDFPolicy().level == "multi-ei"

    def test_labels(self):
        assert SEDFPolicy().label(True) == "S-EDF(P)"
        assert MRSFPolicy().label(False) == "MRSF(NP)"
