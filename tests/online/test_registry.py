"""Tests for the policy registry and spec parsing."""

import pytest

from repro.core import WorkloadError
from repro.online import (
    MEDFPolicy,
    MRSFPolicy,
    SEDFPolicy,
    available_policies,
    make_policy,
    parse_policy_spec,
)


class TestMakePolicy:
    def test_canonical_names(self):
        assert isinstance(make_policy("S-EDF"), SEDFPolicy)
        assert isinstance(make_policy("MRSF"), MRSFPolicy)
        assert isinstance(make_policy("M-EDF"), MEDFPolicy)

    def test_case_insensitive(self):
        assert isinstance(make_policy("mrsf"), MRSFPolicy)

    def test_dash_free_aliases(self):
        assert isinstance(make_policy("sedf"), SEDFPolicy)
        assert isinstance(make_policy("medf"), MEDFPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError, match="unknown policy"):
            make_policy("OPTIMAL")

    def test_available_policies_lists_paper_policies(self):
        names = available_policies()
        assert {"S-EDF", "MRSF", "M-EDF"} <= set(names)

    def test_all_available_policies_constructible(self):
        for name in available_policies():
            policy = make_policy(name)
            assert policy.name


class TestParsePolicySpec:
    def test_preemptive_suffix(self):
        policy, preemptive = parse_policy_spec("MRSF(P)")
        assert isinstance(policy, MRSFPolicy)
        assert preemptive

    def test_non_preemptive_suffix(self):
        policy, preemptive = parse_policy_spec("S-EDF(NP)")
        assert isinstance(policy, SEDFPolicy)
        assert not preemptive

    def test_bare_name_defaults_preemptive(self):
        _policy, preemptive = parse_policy_spec("M-EDF")
        assert preemptive

    def test_whitespace_tolerated(self):
        policy, preemptive = parse_policy_spec("  MRSF(NP) ")
        assert isinstance(policy, MRSFPolicy)
        assert not preemptive
