"""Tests for the baseline policies (Random, FCFS, LFF, Coverage)."""

from repro.core import BudgetVector, Epoch, ExecutionInterval, TInterval
from repro.online import (
    Candidate,
    CoveragePolicy,
    FCFSPolicy,
    LeastFlexibleFirstPolicy,
    RandomPolicy,
    TIntervalState,
)
from repro.simulation import run_online


def _candidate(resource: int, start: int, finish: int) -> Candidate:
    eta = TInterval([ExecutionInterval(resource, start, finish)])
    state = TIntervalState(eta, 1)
    return Candidate(state, state.eta[0])


class TestRandomPolicy:
    def test_deterministic_given_seed(self):
        candidate = _candidate(0, 1, 5)
        a = RandomPolicy(seed=1).score(candidate, 2)
        b = RandomPolicy(seed=1).score(candidate, 2)
        assert a == b

    def test_scores_in_unit_interval(self):
        policy = RandomPolicy(seed=2)
        for resource in range(20):
            score = policy.score(_candidate(resource, 1, 9), 3)
            assert 0.0 <= score < 1.0

    def test_different_candidates_get_different_scores(self):
        policy = RandomPolicy(seed=3)
        scores = {policy.score(_candidate(r, 1, 9), 1)
                  for r in range(10)}
        assert len(scores) > 1


class TestFCFSPolicy:
    def test_prefers_earlier_start(self):
        policy = FCFSPolicy()
        early = _candidate(0, 1, 9)
        late = _candidate(1, 5, 9)
        assert policy.score(early, 6) < policy.score(late, 6)


class TestLFFPolicy:
    def test_prefers_narrower_remaining_window(self):
        policy = LeastFlexibleFirstPolicy()
        tight = _candidate(0, 1, 6)
        loose = _candidate(1, 1, 12)
        assert policy.score(tight, 5) < policy.score(loose, 5)

    def test_remaining_counts_from_current_chronon(self):
        policy = LeastFlexibleFirstPolicy()
        candidate = _candidate(0, 1, 10)
        assert policy.score(candidate, 8) == 3.0  # chronons 8, 9, 10


class TestStaticRankPolicy:
    def test_prefers_simpler_profiles(self):
        from repro.online import StaticRankPolicy
        policy = StaticRankPolicy()
        eta = TInterval([ExecutionInterval(0, 1, 9)])
        simple = TIntervalState(eta, profile_rank=1)
        complex_state = TIntervalState(eta, profile_rank=3)
        assert (policy.score(Candidate(simple, eta[0]), 1)
                < policy.score(Candidate(complex_state, eta[0]), 1))

    def test_ignores_capture_progress(self):
        from repro.online import StaticRankPolicy
        policy = StaticRankPolicy()
        eta = TInterval([ExecutionInterval(0, 1, 9),
                         ExecutionInterval(1, 1, 9)])
        state = TIntervalState(eta, profile_rank=2)
        before = policy.score(Candidate(state, eta[0]), 1)
        state.mark_captured(1)
        after = policy.score(Candidate(state, eta[0]), 1)
        assert before == after


class TestMostResidualFirstPolicy:
    def test_is_inverse_of_mrsf(self):
        from repro.online import MostResidualFirstPolicy, MRSFPolicy
        anti = MostResidualFirstPolicy()
        mrsf = MRSFPolicy()
        eta = TInterval([ExecutionInterval(0, 1, 9),
                         ExecutionInterval(1, 1, 9)])
        near = TIntervalState(eta, profile_rank=2)
        near.mark_captured(1)
        far = TIntervalState(eta, profile_rank=2)
        near_candidate = Candidate(near, eta[0])
        far_candidate = Candidate(far, eta[0])
        assert mrsf.score(near_candidate, 1) < mrsf.score(far_candidate, 1)
        assert anti.score(near_candidate, 1) > anti.score(far_candidate, 1)

    def test_underperforms_mrsf_on_contended_workload(self):
        from repro.core import BudgetVector, Epoch
        from repro.experiments import ExperimentConfig, make_instance
        from repro.online import MostResidualFirstPolicy, MRSFPolicy

        config = ExperimentConfig(
            epoch_length=150, num_resources=30, num_profiles=50,
            intensity=10.0, window=5, repetitions=1, seed=55)
        _trace, profiles = make_instance(config, 0)
        mrsf = run_online(profiles, config.epoch, config.budget_vector,
                          MRSFPolicy())
        anti = run_online(profiles, config.epoch, config.budget_vector,
                          MostResidualFirstPolicy())
        assert mrsf.gc >= anti.gc


class TestCoveragePolicy:
    def test_prefers_most_covered_resource(self):
        policy = CoveragePolicy()
        a1 = _candidate(0, 1, 9)
        a2 = _candidate(0, 2, 8)
        b = _candidate(1, 1, 9)
        policy.observe_candidates([a1, a2, b], 3)
        assert policy.score(a1, 3) < policy.score(b, 3)

    def test_runs_in_simulator(self, arbitrage_profiles):
        result = run_online(arbitrage_profiles, Epoch(20),
                            BudgetVector(1), CoveragePolicy())
        assert 0.0 <= result.gc <= 1.0
