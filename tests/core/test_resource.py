"""Tests for resources and resource catalogs."""

import pytest

from repro.core import Resource, ResourceCatalog


class TestResource:
    def test_create_with_defaults(self):
        resource = Resource.create(3)
        assert resource.resource_id == 3
        assert resource.name == "r3"
        assert resource.meta == {}

    def test_create_with_metadata(self):
        resource = Resource.create(0, "feed/cnn", {"kind": "news"})
        assert resource.name == "feed/cnn"
        assert resource.meta == {"kind": "news"}

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="resource_id"):
            Resource.create(-1)

    def test_int_conversion(self):
        assert int(Resource.create(17)) == 17

    def test_resources_are_hashable(self):
        a = Resource.create(1, "a", {"x": "1"})
        b = Resource.create(1, "a", {"x": "1"})
        assert a == b
        assert hash(a) == hash(b)


class TestResourceCatalog:
    def test_dense_creates_sequential_ids(self):
        catalog = ResourceCatalog.dense(5)
        assert catalog.ids() == [0, 1, 2, 3, 4]
        assert catalog[3].resource_id == 3

    def test_dense_zero_is_empty(self):
        assert len(ResourceCatalog.dense(0)) == 0

    def test_dense_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceCatalog.dense(-1)

    def test_dense_with_metadata(self):
        catalog = ResourceCatalog.dense(
            2, metadata_for={1: {"brand": "intel"}})
        assert catalog[0].meta == {}
        assert catalog[1].meta == {"brand": "intel"}

    def test_duplicate_ids_rejected(self):
        catalog = ResourceCatalog()
        catalog.add(Resource.create(0))
        with pytest.raises(ValueError, match="duplicate"):
            catalog.add(Resource.create(0))

    def test_iteration_sorted_by_id(self):
        catalog = ResourceCatalog()
        for resource_id in (5, 1, 3):
            catalog.add(Resource.create(resource_id))
        assert [r.resource_id for r in catalog] == [1, 3, 5]

    def test_contains_checks_id(self):
        catalog = ResourceCatalog.dense(3)
        assert 2 in catalog
        assert 7 not in catalog

    def test_getitem_missing_raises_keyerror(self):
        with pytest.raises(KeyError, match="no resource"):
            ResourceCatalog.dense(2)[9]

    def test_by_name(self):
        catalog = ResourceCatalog.dense(3, prefix="feed")
        assert catalog.by_name("feed1").resource_id == 1

    def test_by_name_missing(self):
        with pytest.raises(KeyError):
            ResourceCatalog.dense(1).by_name("nope")
