"""Tests for the exception hierarchy."""

import pytest

from repro.core import (
    ModelError,
    ReproError,
    ScheduleInfeasibleError,
    SolverCapacityError,
    SolverError,
    TraceFormatError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ModelError, ScheduleInfeasibleError, SolverError,
        SolverCapacityError, TraceFormatError, WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_capacity_is_solver_error(self):
        assert issubclass(SolverCapacityError, SolverError)

    def test_catchable_at_base(self):
        with pytest.raises(ReproError):
            raise SolverCapacityError("too big")

    def test_messages_preserved(self):
        try:
            raise WorkloadError("bad alpha")
        except ReproError as exc:
            assert "bad alpha" in str(exc)
