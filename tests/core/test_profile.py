"""Tests for profiles and profile sets."""

import pytest

from repro.core import ExecutionInterval, Profile, ProfileSet, TInterval


def _eta(*specs: tuple[int, int, int]) -> TInterval:
    return TInterval([ExecutionInterval(r, s, f) for r, s, f in specs])


class TestProfile:
    def test_rank_is_max_tinterval_size(self):
        profile = Profile([
            _eta((0, 1, 2)),
            _eta((0, 3, 4), (1, 3, 4), (2, 3, 4)),
            _eta((1, 6, 7), (2, 6, 7)),
        ])
        assert profile.rank == 3

    def test_empty_profile_rank_zero(self):
        assert Profile([]).rank == 0

    def test_len_counts_tintervals(self):
        profile = Profile([_eta((0, 1, 2)), _eta((1, 3, 4))])
        assert len(profile) == 2

    def test_tintervals_get_local_ids(self):
        profile = Profile([_eta((0, 1, 2)), _eta((1, 3, 4))],
                          profile_id=7)
        assert [eta.tinterval_id for eta in profile] == [0, 1]
        assert all(eta.profile_id == 7 for eta in profile)

    def test_resource_ids_union(self):
        profile = Profile([_eta((0, 1, 2), (3, 1, 2)), _eta((5, 4, 6))])
        assert profile.resource_ids == frozenset({0, 3, 5})

    def test_is_unit_width(self):
        assert Profile([_eta((0, 2, 2))]).is_unit_width
        assert not Profile([_eta((0, 2, 3))]).is_unit_width

    def test_intra_resource_overlap_across_tintervals(self):
        profile = Profile([_eta((0, 1, 5)), _eta((0, 3, 8))])
        assert profile.has_intra_resource_overlap()

    def test_no_intra_resource_overlap(self):
        profile = Profile([_eta((0, 1, 2)), _eta((0, 5, 6))])
        assert not profile.has_intra_resource_overlap()

    def test_execution_intervals_iterates_pairs(self):
        profile = Profile([_eta((0, 1, 2), (1, 1, 2))])
        pairs = list(profile.execution_intervals())
        assert len(pairs) == 2
        assert all(eta is pairs[0][0] for eta, _ei in pairs)


class TestProfileSet:
    def test_assigns_dense_profile_ids(self):
        profiles = ProfileSet([Profile([_eta((0, 1, 2))]),
                               Profile([_eta((1, 3, 4))])])
        assert [p.profile_id for p in profiles] == [0, 1]

    def test_tinterval_ids_propagate(self):
        profiles = ProfileSet([Profile([_eta((0, 1, 2))])])
        eta = profiles.tinterval(0, 0)
        assert (eta.profile_id, eta.tinterval_id) == (0, 0)

    def test_rank_over_set(self):
        profiles = ProfileSet([
            Profile([_eta((0, 1, 2))]),
            Profile([_eta((0, 1, 2), (1, 1, 2))]),
        ])
        assert profiles.rank == 2

    def test_empty_set(self):
        profiles = ProfileSet()
        assert len(profiles) == 0
        assert profiles.rank == 0
        assert profiles.total_tintervals == 0
        assert profiles.horizon() == 1

    def test_total_tintervals(self):
        profiles = ProfileSet([
            Profile([_eta((0, 1, 2)), _eta((0, 3, 4))]),
            Profile([_eta((1, 1, 2))]),
        ])
        assert profiles.total_tintervals == 3

    def test_horizon(self):
        profiles = ProfileSet([Profile([_eta((0, 1, 2), (1, 5, 17))])])
        assert profiles.horizon() == 17

    def test_rank_of_uses_owning_profile(self):
        complex_profile = Profile([_eta((0, 1, 2), (1, 1, 2), (2, 1, 2)),
                                   _eta((0, 5, 6))])
        profiles = ProfileSet([complex_profile])
        small_eta = profiles.tinterval(0, 1)
        # The 1-EI t-interval still carries its profile's rank of 3.
        assert profiles.rank_of(small_eta) == 3

    def test_is_unit_width_set(self, unit_width_profiles):
        assert unit_width_profiles.is_unit_width

    def test_set_wide_intra_resource_overlap(self):
        profiles = ProfileSet([
            Profile([_eta((0, 1, 5))]),
            Profile([_eta((0, 4, 9))]),
        ])
        assert profiles.has_intra_resource_overlap()

    def test_tintervals_iterates_all(self, arbitrage_profiles):
        assert len(list(arbitrage_profiles.tintervals())) == 5
