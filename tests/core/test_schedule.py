"""Tests for schedules and capture indicators."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Schedule,
    TInterval,
)


class TestProbeBookkeeping:
    def test_add_and_contains(self):
        schedule = Schedule()
        assert schedule.add_probe(3, 7)
        assert (3, 7) in schedule
        assert (3, 8) not in schedule

    def test_duplicate_probe_collapses(self):
        schedule = Schedule()
        assert schedule.add_probe(1, 1)
        assert not schedule.add_probe(1, 1)
        assert len(schedule) == 1

    def test_invalid_probe_rejected(self):
        schedule = Schedule()
        with pytest.raises(ValueError):
            schedule.add_probe(-1, 1)
        with pytest.raises(ValueError):
            schedule.add_probe(0, 0)

    def test_probes_ordered_by_chronon_then_resource(self):
        schedule = Schedule([(2, 5), (0, 5), (1, 1)])
        assert list(schedule.probes()) == [(1, 1), (0, 5), (2, 5)]

    def test_probes_at(self):
        schedule = Schedule([(2, 5), (0, 5), (1, 1)])
        assert schedule.probes_at(5) == [0, 2]
        assert schedule.probes_at(9) == []

    def test_probe_chronons_sorted(self):
        schedule = Schedule([(0, 9), (0, 2), (0, 5)])
        assert schedule.probe_chronons(0) == [2, 5, 9]

    def test_contains_rejects_non_probe(self):
        schedule = Schedule([(0, 1)])
        assert "x" not in schedule
        assert (0,) not in schedule

    def test_copy_is_independent(self):
        schedule = Schedule([(0, 1)])
        clone = schedule.copy()
        clone.add_probe(1, 2)
        assert len(schedule) == 1
        assert len(clone) == 2


class TestCaptureIndicators:
    def test_ei_captured_when_probe_inside_window(self):
        schedule = Schedule([(0, 5)])
        assert schedule.captures_ei(ExecutionInterval(0, 3, 7))

    def test_ei_not_captured_outside_window(self):
        schedule = Schedule([(0, 8)])
        assert not schedule.captures_ei(ExecutionInterval(0, 3, 7))

    def test_ei_not_captured_wrong_resource(self):
        schedule = Schedule([(1, 5)])
        assert not schedule.captures_ei(ExecutionInterval(0, 3, 7))

    def test_ei_boundaries_count(self):
        ei = ExecutionInterval(0, 3, 7)
        assert Schedule([(0, 3)]).captures_ei(ei)
        assert Schedule([(0, 7)]).captures_ei(ei)

    def test_tinterval_needs_all_eis(self):
        eta = TInterval([ExecutionInterval(0, 1, 3),
                         ExecutionInterval(1, 5, 8)])
        assert not Schedule([(0, 2)]).captures_tinterval(eta)
        assert Schedule([(0, 2), (1, 6)]).captures_tinterval(eta)

    def test_one_probe_captures_overlapping_eis_same_resource(self):
        # Intra-resource overlap: one probe serves both EIs.
        schedule = Schedule([(0, 5)])
        first = ExecutionInterval(0, 3, 6)
        second = ExecutionInterval(0, 5, 9)
        assert schedule.captures_ei(first)
        assert schedule.captures_ei(second)


class TestBudgetFeasibility:
    def test_respects_constant_budget(self):
        schedule = Schedule([(0, 1), (1, 2)])
        assert schedule.respects_budget(BudgetVector(1), Epoch(5))

    def test_violates_budget(self):
        schedule = Schedule([(0, 1), (1, 1)])
        assert not schedule.respects_budget(BudgetVector(1), Epoch(5))
        assert schedule.respects_budget(BudgetVector(2), Epoch(5))

    def test_probe_outside_epoch_is_infeasible(self):
        schedule = Schedule([(0, 9)])
        assert not schedule.respects_budget(BudgetVector(1), Epoch(5))

    def test_override_budget(self):
        schedule = Schedule([(0, 1), (1, 1), (2, 1)])
        budget = BudgetVector(1, overrides={1: 3})
        assert schedule.respects_budget(budget, Epoch(5))
