"""Tests for gained completeness (the paper's objective function)."""

from repro.core import (
    ExecutionInterval,
    Profile,
    ProfileSet,
    Schedule,
    TInterval,
    evaluate_schedule,
    gained_completeness,
)


def _profiles() -> ProfileSet:
    p0 = Profile([
        TInterval([ExecutionInterval(0, 1, 3),
                   ExecutionInterval(1, 2, 4)]),
        TInterval([ExecutionInterval(0, 6, 8)]),
    ])
    p1 = Profile([TInterval([ExecutionInterval(2, 1, 10)])])
    return ProfileSet([p0, p1])


class TestGainedCompleteness:
    def test_empty_schedule_zero_gc(self):
        assert gained_completeness(_profiles(), Schedule()) == 0.0

    def test_full_capture_gc_one(self):
        schedule = Schedule([(0, 2), (1, 3), (0, 7), (2, 5)])
        assert gained_completeness(_profiles(), schedule) == 1.0

    def test_partial_capture(self):
        # Captures only p0's second t-interval and p1's t-interval.
        schedule = Schedule([(0, 7), (2, 5)])
        assert gained_completeness(_profiles(), schedule) == 2 / 3

    def test_partial_tinterval_does_not_count(self):
        # One EI of the 2-EI t-interval is not enough.
        schedule = Schedule([(0, 2)])
        assert gained_completeness(_profiles(), schedule) == 0.0

    def test_empty_profile_set_is_vacuously_complete(self):
        assert gained_completeness(ProfileSet(), Schedule()) == 1.0


class TestCompletenessReport:
    def test_counts(self):
        schedule = Schedule([(0, 7), (2, 5)])
        report = evaluate_schedule(_profiles(), schedule)
        assert report.captured == 2
        assert report.total == 3

    def test_per_profile_breakdown(self):
        schedule = Schedule([(0, 7), (2, 5)])
        report = evaluate_schedule(_profiles(), schedule)
        assert report.per_profile[0] == (1, 2)
        assert report.per_profile[1] == (1, 1)
        assert report.profile_gc(0) == 0.5
        assert report.profile_gc(1) == 1.0

    def test_profile_gc_missing_profile_is_vacuous(self):
        report = evaluate_schedule(_profiles(), Schedule())
        assert report.profile_gc(99) == 1.0

    def test_per_rank_breakdown(self):
        schedule = Schedule([(0, 7), (2, 5)])
        report = evaluate_schedule(_profiles(), schedule)
        # Two rank-1 t-intervals (both captured), one rank-2 (missed).
        assert report.per_rank[1] == (2, 2)
        assert report.per_rank[2] == (0, 1)

    def test_gc_property_matches_function(self):
        schedule = Schedule([(0, 2), (1, 3)])
        report = evaluate_schedule(_profiles(), schedule)
        assert report.gc == gained_completeness(_profiles(), schedule)
