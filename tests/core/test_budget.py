"""Tests for budget vectors."""

import pytest

from repro.core import BudgetVector, Epoch


class TestConstruction:
    def test_constant(self):
        budget = BudgetVector.constant(3)
        assert budget.at(1) == 3
        assert budget.at(999) == 3
        assert budget.is_constant()

    def test_zero_budget_allowed(self):
        assert BudgetVector(0).at(5) == 0

    def test_negative_default_rejected(self):
        with pytest.raises(ValueError):
            BudgetVector(-1)

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError, match="chronon 3"):
            BudgetVector(1, overrides={3: -2})

    def test_overrides(self):
        budget = BudgetVector(1, overrides={5: 4})
        assert budget.at(5) == 4
        assert budget.at(6) == 1
        assert not budget.is_constant()


class TestFromSequence:
    def test_maps_positions_to_chronons(self):
        budget = BudgetVector.from_sequence([3, 1, 2])
        assert [budget.at(c) for c in (1, 2, 3)] == [3, 1, 2]

    def test_past_end_uses_last_value(self):
        budget = BudgetVector.from_sequence([3, 1, 2])
        assert budget.at(10) == 2

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            BudgetVector.from_sequence([])


class TestAggregates:
    def test_max_over_constant(self):
        assert BudgetVector(2).max_over(Epoch(10)) == 2

    def test_max_over_with_override(self):
        budget = BudgetVector(1, overrides={4: 7})
        assert budget.max_over(Epoch(10)) == 7

    def test_max_over_ignores_out_of_epoch_override(self):
        budget = BudgetVector(1, overrides={40: 7})
        assert budget.max_over(Epoch(10)) == 1

    def test_total_over(self):
        budget = BudgetVector(2, overrides={1: 5})
        assert budget.total_over(Epoch(4)) == 2 * 4 + 3

    def test_equality(self):
        assert BudgetVector(2) == BudgetVector(2)
        assert BudgetVector(2) != BudgetVector(3)
        assert BudgetVector(2, {1: 3}) != BudgetVector(2)
