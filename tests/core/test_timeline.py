"""Tests for the discrete time model (chronons and epochs)."""

import pytest

from repro.core import Epoch


class TestEpochConstruction:
    def test_length_one_is_valid(self):
        assert len(Epoch(1)) == 1

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            Epoch(0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Epoch(-5)


class TestEpochIteration:
    def test_iterates_one_based_chronons(self):
        assert list(Epoch(4)) == [1, 2, 3, 4]

    def test_first_and_last(self):
        epoch = Epoch(7)
        assert epoch.first == 1
        assert epoch.last == 7

    def test_len_matches_iteration(self):
        epoch = Epoch(13)
        assert len(list(epoch)) == len(epoch)


class TestEpochMembership:
    def test_interior_chronon_contained(self):
        assert 3 in Epoch(5)

    def test_boundaries_contained(self):
        epoch = Epoch(5)
        assert 1 in epoch
        assert 5 in epoch

    def test_zero_not_contained(self):
        assert 0 not in Epoch(5)

    def test_past_end_not_contained(self):
        assert 6 not in Epoch(5)

    def test_non_integer_not_contained(self):
        epoch = Epoch(5)
        assert "3" not in epoch
        assert 3.0 not in epoch

    def test_bool_not_treated_as_chronon(self):
        # True == 1 numerically, but a bool is not a chronon.
        assert True not in Epoch(5)


class TestEpochHelpers:
    def test_clamp_below(self):
        assert Epoch(10).clamp(-3) == 1

    def test_clamp_above(self):
        assert Epoch(10).clamp(99) == 10

    def test_clamp_inside_is_identity(self):
        assert Epoch(10).clamp(4) == 4

    def test_require_accepts_valid(self):
        assert Epoch(10).require(10) == 10

    def test_require_rejects_invalid(self):
        with pytest.raises(ValueError, match="outside epoch"):
            Epoch(10).require(11)

    def test_epoch_is_hashable_value_object(self):
        assert Epoch(5) == Epoch(5)
        assert hash(Epoch(5)) == hash(Epoch(5))
        assert Epoch(5) != Epoch(6)
