"""Tests for instance validation."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
    validate_instance,
)


def _set(*profiles) -> ProfileSet:
    return ProfileSet(list(profiles))


class TestCleanInstances:
    def test_ok_instance_has_no_findings(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 1, 5)]),
            TInterval([ExecutionInterval(1, 3, 8)]),
        ]))
        report = validate_instance(profiles, Epoch(10), BudgetVector(1))
        assert report.ok
        assert report.diagnostics == ()

    def test_empty_set_is_ok(self):
        report = validate_instance(ProfileSet(), Epoch(5),
                                   BudgetVector(1))
        assert report.ok


class TestErrors:
    def test_ei_outside_epoch(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 20, 25)])]))
        report = validate_instance(profiles, Epoch(10), BudgetVector(1))
        assert not report.ok
        assert report.errors()[0].code == "ei-outside-epoch"
        assert report.uncapturable_keys() == {(0, 0)}

    def test_simultaneous_demand(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 3, 3),
                       ExecutionInterval(1, 3, 3)])]))
        report = validate_instance(profiles, Epoch(10), BudgetVector(1))
        codes = [d.code for d in report.errors()]
        assert "simultaneous-demand" in codes

    def test_simultaneous_demand_ok_with_budget_two(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 3, 3),
                       ExecutionInterval(1, 3, 3)])]))
        report = validate_instance(profiles, Epoch(10), BudgetVector(2))
        assert report.ok

    def test_zero_budget_window(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 2, 4)])]))
        budget = BudgetVector(1, overrides={2: 0, 3: 0, 4: 0})
        report = validate_instance(profiles, Epoch(10), budget)
        assert [d.code for d in report.errors()] == ["zero-budget-window"]

    def test_partial_budget_window_is_fine(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 2, 4)])]))
        budget = BudgetVector(1, overrides={2: 0, 3: 0})
        report = validate_instance(profiles, Epoch(10), budget)
        assert report.ok


class TestWarnings:
    def test_empty_profile(self):
        report = validate_instance(_set(Profile([], name="ghost")),
                                   Epoch(5), BudgetVector(1))
        assert report.ok  # warnings don't fail validation
        assert report.warnings()[0].code == "empty-profile"

    def test_duplicate_tinterval(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 1, 3)]),
            TInterval([ExecutionInterval(0, 1, 3)]),
        ]))
        report = validate_instance(profiles, Epoch(5), BudgetVector(1))
        warning = report.warnings()[0]
        assert warning.code == "duplicate-tinterval"
        assert warning.tinterval_id == 1

    def test_same_eis_different_order_are_duplicates(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 1, 3),
                       ExecutionInterval(1, 2, 4)]),
            TInterval([ExecutionInterval(1, 2, 4),
                       ExecutionInterval(0, 1, 3)]),
        ]))
        report = validate_instance(profiles, Epoch(5), BudgetVector(1))
        assert [d.code for d in report.warnings()] == [
            "duplicate-tinterval"]


class TestReportHelpers:
    def test_str_rendering(self):
        profiles = _set(Profile([
            TInterval([ExecutionInterval(0, 20, 25)])]))
        report = validate_instance(profiles, Epoch(10), BudgetVector(1))
        text = str(report.errors()[0])
        assert "ei-outside-epoch" in text
        assert "profile 0" in text

    def test_generated_workloads_validate_clean(self):
        from repro.experiments import baseline, make_instance
        config = baseline("smoke")
        _trace, profiles = make_instance(config, 0)
        report = validate_instance(profiles, config.epoch,
                                   config.budget_vector)
        assert report.ok, [str(d) for d in report.errors()]
