"""Tests for execution intervals and t-intervals."""

import pytest

from repro.core import ExecutionInterval, TInterval


class TestExecutionIntervalConstruction:
    def test_basic(self):
        ei = ExecutionInterval(0, 3, 7)
        assert (ei.resource_id, ei.start, ei.finish) == (0, 3, 7)

    def test_unit_interval(self):
        ei = ExecutionInterval(0, 5, 5)
        assert ei.is_unit
        assert ei.width == 1

    def test_width(self):
        assert ExecutionInterval(0, 3, 7).width == 5

    def test_start_before_one_rejected(self):
        with pytest.raises(ValueError, match="start"):
            ExecutionInterval(0, 0, 5)

    def test_finish_before_start_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            ExecutionInterval(0, 5, 4)

    def test_negative_resource_rejected(self):
        with pytest.raises(ValueError, match="resource_id"):
            ExecutionInterval(-1, 1, 2)


class TestExecutionIntervalPredicates:
    def test_active_at_inside(self):
        ei = ExecutionInterval(0, 3, 7)
        assert ei.active_at(3)
        assert ei.active_at(5)
        assert ei.active_at(7)

    def test_active_at_outside(self):
        ei = ExecutionInterval(0, 3, 7)
        assert not ei.active_at(2)
        assert not ei.active_at(8)

    def test_expired_at(self):
        ei = ExecutionInterval(0, 3, 7)
        assert not ei.expired_at(7)
        assert ei.expired_at(8)

    def test_overlaps_shared_chronon(self):
        assert ExecutionInterval(0, 1, 5).overlaps(
            ExecutionInterval(1, 5, 9))

    def test_overlaps_disjoint(self):
        assert not ExecutionInterval(0, 1, 4).overlaps(
            ExecutionInterval(1, 5, 9))

    def test_overlaps_is_symmetric(self):
        a = ExecutionInterval(0, 2, 6)
        b = ExecutionInterval(1, 4, 10)
        assert a.overlaps(b) == b.overlaps(a)

    def test_chronons_iterates_window(self):
        assert list(ExecutionInterval(0, 3, 5).chronons()) == [3, 4, 5]

    def test_shifted(self):
        shifted = ExecutionInterval(0, 3, 5).shifted(2)
        assert (shifted.start, shifted.finish) == (5, 7)

    def test_with_id(self):
        assert ExecutionInterval(0, 1, 2).with_id(4).ei_id == 4


class TestTIntervalConstruction:
    def test_assigns_local_ei_ids(self):
        eta = TInterval([ExecutionInterval(0, 1, 2),
                         ExecutionInterval(1, 3, 4)])
        assert [ei.ei_id for ei in eta] == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TInterval([])

    def test_size(self):
        eta = TInterval([ExecutionInterval(0, 1, 2)] * 3)
        assert eta.size == 3
        assert len(eta) == 3

    def test_indexing(self):
        eta = TInterval([ExecutionInterval(0, 1, 2),
                         ExecutionInterval(1, 5, 6)])
        assert eta[1].resource_id == 1

    def test_attached_sets_identities(self):
        eta = TInterval([ExecutionInterval(0, 1, 2)])
        attached = eta.attached(tinterval_id=4, profile_id=2)
        assert attached.tinterval_id == 4
        assert attached.profile_id == 2


class TestTIntervalProperties:
    def test_earliest_start_latest_finish(self):
        eta = TInterval([ExecutionInterval(0, 5, 9),
                         ExecutionInterval(1, 2, 4),
                         ExecutionInterval(2, 7, 12)])
        assert eta.earliest_start == 2
        assert eta.latest_finish == 12

    def test_resource_ids(self):
        eta = TInterval([ExecutionInterval(0, 1, 2),
                         ExecutionInterval(2, 1, 2),
                         ExecutionInterval(0, 5, 6)])
        assert eta.resource_ids == frozenset({0, 2})

    def test_is_unit_width(self):
        assert TInterval([ExecutionInterval(0, 3, 3)]).is_unit_width
        assert not TInterval([ExecutionInterval(0, 3, 4)]).is_unit_width

    def test_siblings_of(self):
        first = ExecutionInterval(0, 1, 2)
        second = ExecutionInterval(1, 3, 4)
        eta = TInterval([first, second])
        siblings = eta.siblings_of(eta[0])
        assert len(siblings) == 1
        assert siblings[0].resource_id == 1


class TestIntraResourceOverlap:
    def test_no_overlap_different_resources(self):
        eta = TInterval([ExecutionInterval(0, 1, 5),
                         ExecutionInterval(1, 1, 5)])
        assert not eta.has_intra_resource_overlap()

    def test_overlap_same_resource(self):
        eta = TInterval([ExecutionInterval(0, 1, 5),
                         ExecutionInterval(0, 4, 8)])
        assert eta.has_intra_resource_overlap()

    def test_touching_but_disjoint_same_resource(self):
        eta = TInterval([ExecutionInterval(0, 1, 4),
                         ExecutionInterval(0, 5, 8)])
        assert not eta.has_intra_resource_overlap()
