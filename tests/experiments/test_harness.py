"""Tests for the experiment harness (instances, settings, sweeps)."""

import pytest

from repro.experiments import (
    OFFLINE_LABEL,
    ExperimentConfig,
    make_instance,
    run_setting,
    sweep,
)


@pytest.fixture
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        epoch_length=60, num_resources=10, num_profiles=8,
        intensity=6.0, window=4, repetitions=2, grouping="indexed",
        seed=42)


class TestMakeInstance:
    def test_deterministic_per_repetition(self, tiny_config):
        first = make_instance(tiny_config, 0)
        second = make_instance(tiny_config, 0)
        assert list(first[0]) == list(second[0])
        assert first[1].total_tintervals == second[1].total_tintervals

    def test_repetitions_differ(self, tiny_config):
        first_trace, _ = make_instance(tiny_config, 0)
        second_trace, _ = make_instance(tiny_config, 1)
        assert list(first_trace) != list(second_trace)

    def test_profile_count_matches_config(self, tiny_config):
        _, profiles = make_instance(tiny_config, 0)
        assert len(profiles) == 8

    def test_auction_source(self, tiny_config):
        trace, profiles = make_instance(tiny_config, 0, source="auction")
        assert len(trace) > 0
        assert len(profiles) == 8

    def test_unknown_source_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="source"):
            make_instance(tiny_config, 0, source="oracle")


class TestRunSetting:
    def test_all_policies_present(self, tiny_config):
        outcome = run_setting(tiny_config, policies=["S-EDF(P)",
                                                     "MRSF(P)"])
        assert set(outcome.labels()) == {"S-EDF(P)", "MRSF(P)"}

    def test_repetition_count(self, tiny_config):
        outcome = run_setting(tiny_config, policies=["S-EDF(P)"])
        assert len(outcome.outcomes["S-EDF(P)"].gc_values) == 2

    def test_gc_in_unit_interval(self, tiny_config):
        outcome = run_setting(tiny_config, policies=["MRSF(P)"])
        for value in outcome.outcomes["MRSF(P)"].gc_values:
            assert 0.0 <= value <= 1.0

    def test_offline_included_when_requested(self, tiny_config):
        outcome = run_setting(tiny_config.with_(window=0),
                              policies=["MRSF(P)"],
                              include_offline=True)
        assert OFFLINE_LABEL in outcome.labels()

    def test_mean_and_stdev(self, tiny_config):
        outcome = run_setting(tiny_config, policies=["S-EDF(P)"])
        policy_outcome = outcome.outcomes["S-EDF(P)"]
        assert policy_outcome.mean_gc == pytest.approx(
            sum(policy_outcome.gc_values) / 2)
        assert policy_outcome.stdev_gc >= 0.0

    def test_single_repetition_stdev_zero(self, tiny_config):
        outcome = run_setting(tiny_config.with_(repetitions=1),
                              policies=["S-EDF(P)"])
        assert outcome.outcomes["S-EDF(P)"].stdev_gc == 0.0


class TestSweep:
    def test_sweep_runs_each_value(self, tiny_config):
        result = sweep("test", tiny_config, "budget", [1, 2],
                       policies=["S-EDF(P)"])
        assert result.x_values == (1, 2)
        assert len(result.runs) == 2

    def test_series_extraction(self, tiny_config):
        result = sweep("test", tiny_config, "budget", [1, 2],
                       policies=["S-EDF(P)"])
        series = result.series("S-EDF(P)")
        assert len(series) == 2
        # More budget can never hurt on the same instances.
        assert series[1] >= series[0]

    def test_runtime_metric(self, tiny_config):
        result = sweep("test", tiny_config, "budget", [1],
                       policies=["S-EDF(P)"])
        assert result.series("S-EDF(P)", metric="runtime")[0] >= 0.0

    def test_unknown_metric_rejected(self, tiny_config):
        result = sweep("test", tiny_config, "budget", [1],
                       policies=["S-EDF(P)"])
        with pytest.raises(ValueError, match="metric"):
            result.series("S-EDF(P)", metric="latency")

    def test_labels(self, tiny_config):
        result = sweep("test", tiny_config, "budget", [1],
                       policies=["S-EDF(P)", "MRSF(P)"])
        assert set(result.labels()) == {"S-EDF(P)", "MRSF(P)"}
