"""Tests for the client-churn experiment."""

import pytest

from repro.experiments import ChurnConfig, jain_index, run_churn
from repro.experiments.churn import CHURN_ENGINES, build_churn_workload
from repro.core import WorkloadError


def _config(**overrides) -> ChurnConfig:
    defaults = dict(epoch_length=120, num_resources=20, intensity=6.0,
                    num_clients=4, profiles_per_client=4, seed=99)
    defaults.update(overrides)
    return ChurnConfig(**defaults)


class TestJainIndex:
    def test_equal_values_perfectly_fair(self):
        assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_single_winner_is_1_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounded(self):
        values = [0.9, 0.1, 0.4]
        assert 1 / 3 <= jain_index(values) <= 1.0


class TestChurnConfig:
    def test_invalid_spread(self):
        with pytest.raises(WorkloadError):
            _config(join_spread=1.5)

    def test_invalid_leave_probability(self):
        with pytest.raises(WorkloadError):
            _config(leave_probability=-0.1)

    def test_zero_clients_rejected(self):
        with pytest.raises(WorkloadError):
            _config(num_clients=0)


class TestRunChurn:
    def test_static_join_baseline(self):
        result = run_churn(_config(join_spread=0.0))
        assert all(client.joined_at == 0 for client in result.clients)
        assert result.dropped == 0
        assert 0.0 <= result.overall_completeness <= 1.0

    def test_spread_joins_are_staggered(self):
        result = run_churn(_config(join_spread=0.8))
        joins = [client.joined_at for client in result.clients]
        assert max(joins) > 0

    def test_spread_reduces_completeness(self):
        static = run_churn(_config(join_spread=0.0))
        spread = run_churn(_config(join_spread=0.8))
        assert spread.overall_completeness <= \
            static.overall_completeness + 0.02

    def test_leavers_produce_drops(self):
        result = run_churn(_config(leave_probability=1.0))
        assert result.dropped > 0
        assert all(client.left_at is not None
                   for client in result.clients)

    def test_accounting_consistency(self):
        result = run_churn(_config(join_spread=0.5,
                                   leave_probability=0.5))
        registered = sum(client.registered for client in result.clients)
        assert registered == (result.completed + result.expired
                              + result.dropped)

    def test_notifications_bounded_by_registered(self):
        result = run_churn(_config(join_spread=0.3))
        for client in result.clients:
            assert 0 <= client.notified <= client.registered

    def test_fairness_in_unit_interval(self):
        result = run_churn(_config(join_spread=0.5))
        assert 0.0 < result.fairness <= 1.0

    def test_deterministic(self):
        first = run_churn(_config(join_spread=0.5))
        second = run_churn(_config(join_spread=0.5))
        assert first.completed == second.completed
        assert [c.notified for c in first.clients] == \
            [c.notified for c in second.clients]


class TestChurnEngines:
    def test_unknown_engine_rejected(self):
        with pytest.raises(WorkloadError):
            _config(engine="turbo")

    @pytest.mark.parametrize("engine", CHURN_ENGINES)
    def test_engines_accounting_balances(self, engine):
        result = run_churn(_config(join_spread=0.6,
                                   leave_probability=1.0,
                                   engine=engine))
        assert result.engine == engine
        registered = sum(client.registered for client in result.clients)
        assert registered == (result.completed + result.expired
                              + result.dropped)
        assert result.dropped > 0

    def test_incremental_matches_rebuild_exactly(self):
        fast = run_churn(_config(join_spread=0.7, leave_probability=0.5,
                                 engine="fast"))
        rebuild = run_churn(_config(join_spread=0.7,
                                    leave_probability=0.5,
                                    engine="rebuild"))
        assert fast.completed == rebuild.completed
        assert fast.expired == rebuild.expired
        assert fast.dropped == rebuild.dropped
        assert fast.probes_used == rebuild.probes_used
        assert [c.notified for c in fast.clients] == \
            [c.notified for c in rebuild.clients]
        assert [c.left_at for c in fast.clients] == \
            [c.left_at for c in rebuild.clients]

    def test_engine_matches_reference_proxy(self):
        # Not contractual (tie-break sequencing could diverge), but on
        # this scenario the event-indexed engine and the live proxy
        # agree outcome for outcome — a strong cross-implementation
        # anchor for the churn plan translation.
        fast = run_churn(_config(join_spread=0.6, leave_probability=0.5,
                                 engine="fast"))
        proxy = run_churn(_config(join_spread=0.6, leave_probability=0.5,
                                  engine="proxy"))
        assert fast.completed == proxy.completed
        assert fast.expired == proxy.expired
        assert fast.dropped == proxy.dropped
        assert [c.notified for c in fast.clients] == \
            [c.notified for c in proxy.clients]

    def test_workload_builder_is_deterministic(self):
        config = _config(join_spread=0.5, leave_probability=0.5)
        first = build_churn_workload(config)
        second = build_churn_workload(config)
        assert len(first[0]) == len(second[0])
        assert len(first[1]) == len(second[1])
        assert first[2].last == second[2].last
        actions = [(e.chronon, e.action) for e in first[1]]
        assert actions == [(e.chronon, e.action) for e in second[1]]
        # Adds ahead of removes; removes only at the leave chronon.
        removes = [e for e in first[1] if e.action == "remove"]
        assert all(e.chronon == (3 * config.epoch_length) // 4
                   for e in removes)
