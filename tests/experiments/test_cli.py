"""Tests for the repro-experiments CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale == "default"

    def test_scale_option(self):
        args = build_parser().parse_args(["fig4", "--scale", "smoke"])
        assert args.scale == "smoke"

    def test_csv_flag(self):
        args = build_parser().parse_args(["fig8", "--csv"])
        assert args.csv

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1_smoke(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "mean GC" in output
        assert "S-EDF(NP)" in output
        assert "configuration" in output

    def test_fig8_smoke_table(self, capsys):
        assert main(["fig8", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "budget" in output
        assert "gained completeness" in output

    def test_fig8_smoke_csv(self, capsys):
        assert main(["fig8", "--scale", "smoke", "--csv"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("# Figure 8")
        assert "budget,S-EDF(NP)" in output

    def test_fig7_two_panels(self, capsys):
        assert main(["fig7", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "Figure 7(1)" in output
        assert "Figure 7(2)" in output

    def test_table1_csv(self, capsys):
        assert main(["table1", "--scale", "smoke", "--csv"]) == 0
        output = capsys.readouterr().out
        assert "policy,mean_gc" in output

    def test_stats_subcommand(self, capsys):
        assert main(["stats", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "instance statistics" in output
        assert "rank(P)" in output
