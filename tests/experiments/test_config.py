"""Tests for experiment configuration and scales."""

import pytest

from repro.core import BudgetVector
from repro.experiments import SCALES, ExperimentConfig, baseline


class TestExperimentConfig:
    def test_defaults_match_paper_table1(self):
        config = ExperimentConfig()
        assert config.epoch_length == 1000
        assert config.num_resources == 400
        assert config.max_rank == 3
        assert config.intensity == 20.0
        assert config.budget == 1
        assert config.window == 20
        assert config.repetitions == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(epoch_length=0)
        with pytest.raises(ValueError):
            ExperimentConfig(num_resources=0)
        with pytest.raises(ValueError):
            ExperimentConfig(max_rank=0)
        with pytest.raises(ValueError):
            ExperimentConfig(intensity=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(budget=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(repetitions=0)

    def test_epoch_property(self):
        assert len(ExperimentConfig(epoch_length=50).epoch) == 50

    def test_budget_vector_property(self):
        config = ExperimentConfig(budget=3)
        assert config.budget_vector == BudgetVector(3)

    def test_with_replaces_fields(self):
        config = ExperimentConfig()
        changed = config.with_(budget=5, alpha=1.37)
        assert changed.budget == 5
        assert changed.alpha == 1.37
        assert config.budget == 1  # original untouched

    def test_describe_covers_all_knobs(self):
        rows = dict(ExperimentConfig().describe())
        assert rows["budget C"] == "1"
        assert rows["window W"] == "20"
        assert rows["rank(P) k"] == "3"

    def test_describe_overwrite_window(self):
        rows = dict(ExperimentConfig(window=None).describe())
        assert rows["window W"] == "overwrite"


class TestScales:
    def test_three_scales_exist(self):
        assert set(SCALES) == {"paper", "default", "smoke"}

    def test_paper_scale_is_default_config(self):
        assert baseline("paper") == ExperimentConfig()

    def test_smaller_scales_shrink(self):
        assert (baseline("smoke").num_profiles
                < baseline("default").num_profiles
                < baseline("paper").num_profiles)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            baseline("giant")
