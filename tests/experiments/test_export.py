"""Tests for result export (CSV/text files)."""

import pytest

from repro.cli import main
from repro.experiments import ExperimentConfig, run_setting, sweep
from repro.experiments.export import (
    export_result,
    export_run_outcome,
    export_sweep,
)
from repro.experiments.figures import FigurePair

_CONFIG = ExperimentConfig(
    epoch_length=50, num_resources=8, num_profiles=6, intensity=5.0,
    window=4, repetitions=1, grouping="indexed", seed=17)


@pytest.fixture(scope="module")
def sweep_result():
    return sweep("demo", _CONFIG, "budget", [1, 2],
                 policies=["S-EDF(P)"])


@pytest.fixture(scope="module")
def run_outcome():
    return run_setting(_CONFIG, policies=["S-EDF(P)", "MRSF(P)"])


class TestExportSweep:
    def test_writes_csv_and_table(self, sweep_result, tmp_path):
        written = export_sweep(sweep_result, tmp_path, "fig_demo")
        names = {path.name for path in written}
        assert names == {"fig_demo_gc.csv", "fig_demo_gc.txt"}
        csv_text = (tmp_path / "fig_demo_gc.csv").read_text()
        assert csv_text.startswith("budget,S-EDF(P)")

    def test_multiple_metrics(self, sweep_result, tmp_path):
        written = export_sweep(sweep_result, tmp_path, "fig_demo",
                               metrics=("gc", "runtime"))
        assert len(written) == 4

    def test_creates_directory(self, sweep_result, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_sweep(sweep_result, target, "x")
        assert target.is_dir()


class TestExportRunOutcome:
    def test_writes_three_files(self, run_outcome, tmp_path):
        written = export_run_outcome(run_outcome, tmp_path, "table1")
        assert {path.name for path in written} == {
            "table1.csv", "table1.txt", "table1_config.txt"}

    def test_csv_contains_policies(self, run_outcome, tmp_path):
        export_run_outcome(run_outcome, tmp_path, "table1")
        text = (tmp_path / "table1.csv").read_text()
        assert "MRSF(P)" in text
        assert text.splitlines()[0] == \
            "policy,mean_gc,stdev_gc,mean_runtime_s"

    def test_config_dump(self, run_outcome, tmp_path):
        export_run_outcome(run_outcome, tmp_path, "table1")
        text = (tmp_path / "table1_config.txt").read_text()
        assert "budget C" in text


class TestExportResultDispatch:
    def test_sweep_dispatch(self, sweep_result, tmp_path):
        written = export_result("fig", sweep_result, tmp_path)
        assert len(written) == 4  # gc + runtime, csv + txt each

    def test_outcome_dispatch(self, run_outcome, tmp_path):
        written = export_result("t1", run_outcome, tmp_path)
        assert len(written) == 3

    def test_pair_dispatch(self, sweep_result, tmp_path):
        pair = FigurePair(left=sweep_result, right=sweep_result)
        written = export_result("fig5", pair, tmp_path)
        panel_names = {path.name for path in written}
        assert any("panel1" in name for name in panel_names)
        assert any("panel2" in name for name in panel_names)

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            export_result("x", object(), tmp_path)


class TestCliOutputFlag:
    def test_output_writes_files(self, tmp_path, capsys):
        assert main(["table1", "--scale", "smoke",
                     "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert "wrote" in capsys.readouterr().out
