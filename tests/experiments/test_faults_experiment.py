"""Tests for the graceful-degradation experiment and its CLI entry."""

from repro.cli import build_parser, main
from repro.experiments import (
    DEFAULT_FAILURE_RATES,
    FAULT_POLICY_VARIANTS,
    breaker_ablation,
    fault_sweep,
    run_fault_setting,
)
from repro.experiments.config import baseline
from repro.faults import RetryConfig


class TestFaultSweep:
    def test_all_variants_survive_to_rate_half(self):
        result = fault_sweep(scale="smoke", rates=(0.0, 0.5))
        assert result.name == "faults"
        assert result.parameter == "failure_rate"
        assert result.x_values == (0.0, 0.5)
        assert set(result.labels()) == set(FAULT_POLICY_VARIANTS)
        for label in FAULT_POLICY_VARIANTS:
            series = result.series(label)
            assert len(series) == 2
            # GC degrades with the failure rate but never collapses to
            # zero at rate 0.5 (retries recover part of the loss).
            assert series[0] > series[1] > 0.0

    def test_sweep_is_deterministic(self):
        kwargs = dict(scale="smoke", rates=(0.3,),
                      policies=("S-EDF(P)", "MRSF(NP)"))
        one = fault_sweep(**kwargs)
        two = fault_sweep(**kwargs)
        assert one.series("S-EDF(P)") == two.series("S-EDF(P)")
        assert one.series("MRSF(NP)") == two.series("MRSF(NP)")

    def test_policies_share_the_fault_world(self):
        config = baseline("smoke")
        outcome = run_fault_setting(config, 0.0,
                                    policies=("S-EDF(P)",),
                                    retry=None, use_breaker=False)
        clean = run_fault_setting(config, 0.0,
                                  policies=("S-EDF(P)",),
                                  retry=RetryConfig(2), use_breaker=True)
        # At rate zero neither retries nor the breaker may change GC.
        assert outcome.outcomes["S-EDF(P)"].mean_gc == \
            clean.outcomes["S-EDF(P)"].mean_gc


class TestBreakerAblation:
    def test_breaker_at_least_as_good(self):
        gc = breaker_ablation(scale="smoke")
        assert set(gc) == {"with_breaker", "without_breaker"}
        assert gc["with_breaker"] >= gc["without_breaker"]
        assert gc["without_breaker"] > 0.0


class TestFaultsCli:
    def test_parser_accepts_faults(self):
        args = build_parser().parse_args(["faults", "--scale", "smoke"])
        assert args.experiment == "faults"

    def test_faults_smoke_table(self, capsys):
        assert main(["faults", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "failure_rate" in output
        assert "S-EDF(P)" in output
        assert "COVERAGE(NP)" in output

    def test_faults_smoke_csv(self, capsys):
        assert main(["faults", "--scale", "smoke", "--csv"]) == 0
        output = capsys.readouterr().out
        assert "failure_rate,S-EDF(P)" in output


def test_default_rates_reach_one_half():
    assert DEFAULT_FAILURE_RATES[0] == 0.0
    assert DEFAULT_FAILURE_RATES[-1] == 0.5
