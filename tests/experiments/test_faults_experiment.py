"""Tests for the graceful-degradation experiment and its CLI entry."""

from repro.cli import build_parser, main
from repro.experiments import (
    DEFAULT_FAILURE_RATES,
    FAULT_POLICY_VARIANTS,
    breaker_ablation,
    fault_sweep,
    run_fault_setting,
)
from repro.experiments.config import baseline
from repro.faults import RetryConfig


class TestFaultSweep:
    def test_all_variants_survive_to_rate_half(self):
        result = fault_sweep(scale="smoke", rates=(0.0, 0.5))
        assert result.name == "faults"
        assert result.parameter == "failure_rate"
        assert result.x_values == (0.0, 0.5)
        assert set(result.labels()) == set(FAULT_POLICY_VARIANTS)
        for label in FAULT_POLICY_VARIANTS:
            series = result.series(label)
            assert len(series) == 2
            # GC degrades with the failure rate but never collapses to
            # zero at rate 0.5 (retries recover part of the loss).
            assert series[0] > series[1] > 0.0

    def test_sweep_is_deterministic(self):
        kwargs = dict(scale="smoke", rates=(0.3,),
                      policies=("S-EDF(P)", "MRSF(NP)"))
        one = fault_sweep(**kwargs)
        two = fault_sweep(**kwargs)
        assert one.series("S-EDF(P)") == two.series("S-EDF(P)")
        assert one.series("MRSF(NP)") == two.series("MRSF(NP)")

    def test_policies_share_the_fault_world(self):
        config = baseline("smoke")
        outcome = run_fault_setting(config, 0.0,
                                    policies=("S-EDF(P)",),
                                    retry=None, use_breaker=False)
        clean = run_fault_setting(config, 0.0,
                                  policies=("S-EDF(P)",),
                                  retry=RetryConfig(2), use_breaker=True)
        # At rate zero neither retries nor the breaker may change GC.
        assert outcome.outcomes["S-EDF(P)"].mean_gc == \
            clean.outcomes["S-EDF(P)"].mean_gc


class TestFaultSweepEngines:
    def test_engines_produce_identical_series(self):
        kwargs = dict(scale="smoke", rates=(0.0, 0.3),
                      policies=("S-EDF(P)", "MRSF(NP)", "COVERAGE(NP)"))
        batch = fault_sweep(**kwargs, engine="batch")
        fast = fault_sweep(**kwargs, engine="fast")
        for label in kwargs["policies"]:
            assert batch.series(label) == fast.series(label)
        # Every lane lowered: nothing fell back to the fast engine.
        assert batch.fell_back == 0
        assert fast.fell_back == 0

    def test_setting_engines_agree(self):
        config = baseline("smoke")
        batch = run_fault_setting(config, 0.25, policies=("M-EDF(P)",),
                                  engine="batch")
        fast = run_fault_setting(config, 0.25, policies=("M-EDF(P)",),
                                 engine="fast")
        assert batch.outcomes["M-EDF(P)"].gc_values == \
            fast.outcomes["M-EDF(P)"].gc_values

    def test_fallback_lanes_are_counted(self):
        # RANDOM has no columnar kind: under the batch engine each of
        # its (repetition, rate) runs takes the fast path and is
        # surfaced through fell_back; the series itself is unaffected.
        config = baseline("smoke")
        result = fault_sweep(scale="smoke", rates=(0.2, 0.4),
                             policies=("S-EDF(P)", "RANDOM(NP)"),
                             engine="batch")
        assert result.fell_back == 2 * config.repetitions
        for run in result.runs:
            assert run.fell_back == config.repetitions
        pure = fault_sweep(scale="smoke", rates=(0.2, 0.4),
                           policies=("S-EDF(P)", "RANDOM(NP)"),
                           engine="fast")
        assert result.series("RANDOM(NP)") == pure.series("RANDOM(NP)")


class TestBreakerAblation:
    def test_breaker_at_least_as_good(self):
        gc = breaker_ablation(scale="smoke")
        assert set(gc) == {"with_breaker", "without_breaker"}
        assert gc["with_breaker"] >= gc["without_breaker"]
        assert gc["without_breaker"] > 0.0


class TestFaultsCli:
    def test_parser_accepts_faults(self):
        args = build_parser().parse_args(["faults", "--scale", "smoke"])
        assert args.experiment == "faults"

    def test_engine_flag_defaults_to_experiment_choice(self):
        args = build_parser().parse_args(["faults"])
        assert args.engine is None

    def test_engine_flag_is_honoured(self, capsys):
        # Both engines run the sweep and emit the same (deterministic)
        # table — the flag must reach fault_sweep instead of being
        # silently dropped.
        assert main(["faults", "--scale", "smoke",
                     "--engine", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert main(["faults", "--scale", "smoke",
                     "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert "failure_rate" in batch_out
        assert batch_out == fast_out

    def test_faults_smoke_table(self, capsys):
        assert main(["faults", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "failure_rate" in output
        assert "S-EDF(P)" in output
        assert "COVERAGE(NP)" in output

    def test_faults_smoke_csv(self, capsys):
        assert main(["faults", "--scale", "smoke", "--csv"]) == 0
        output = capsys.readouterr().out
        assert "failure_rate,S-EDF(P)" in output


def test_default_rates_reach_one_half():
    assert DEFAULT_FAILURE_RATES[0] == 0.0
    assert DEFAULT_FAILURE_RATES[-1] == 0.5
