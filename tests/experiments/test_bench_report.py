"""Bench-report regression gate: speedup extraction and thresholds."""

import json

import pytest

from repro.bench_report import collect_speedups, load_baseline, main


def _write(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestCollectSpeedups:
    def test_nested_paths(self):
        report = {
            "speedup": 2.0,
            "scales": {"target": {"speedup": 3.5,
                                  "noise": "x"}},
            "runs": [{"speedup": 1.5}, {"other": 1}],
        }
        assert collect_speedups(report) == {
            "speedup": 2.0,
            "scales.target.speedup": 3.5,
            "runs[0].speedup": 1.5,
        }

    def test_non_numeric_speedup_ignored(self):
        assert collect_speedups({"speedup": "fast"}) == {}


class TestGate:
    def test_ok_within_tolerance(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        _write(tmp_path / "BENCH_x.json", {"speedup": 2.9})
        _write(base / "BENCH_x.json", {"speedup": 3.0})
        code = main(["--dir", str(tmp_path), "--baseline-dir", str(base),
                     "--tolerance", "0.2"])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        _write(tmp_path / "BENCH_x.json", {"speedup": 2.0})
        _write(base / "BENCH_x.json", {"speedup": 3.0})
        code = main(["--dir", str(tmp_path), "--baseline-dir", str(base),
                     "--tolerance", "0.2"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_new_speedup_passes(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        _write(tmp_path / "BENCH_x.json", {"speedup": 1.0})
        code = main(["--dir", str(tmp_path), "--baseline-dir", str(base)])
        assert code == 0
        assert "new" in capsys.readouterr().out

    def test_no_reports_is_ok(self, tmp_path):
        assert main(["--dir", str(tmp_path)]) == 0

    def test_unreadable_report_warns_but_passes(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{not json",
                                                 encoding="utf-8")
        assert main(["--dir", str(tmp_path)]) == 0
        assert "unreadable" in capsys.readouterr().err

    def test_missing_baseline_file_is_none(self, tmp_path):
        base = tmp_path / "base"
        base.mkdir()
        assert load_baseline("BENCH_x.json", tmp_path, base) is None


class TestCli:
    def test_bench_report_subcommand(self, tmp_path, monkeypatch, capsys):
        pytest.importorskip("repro.cli")
        from repro.cli import main as cli_main
        monkeypatch.chdir(tmp_path)
        _write(tmp_path / "BENCH_x.json", {"speedup": 1.0})
        assert cli_main(["bench-report"]) == 0
        assert "BENCH_x.json" in capsys.readouterr().out
