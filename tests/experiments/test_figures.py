"""Smoke-scale checks of every figure reproduction.

These tests exercise the full per-figure pipelines at the tiny "smoke"
scale and assert structural properties plus the monotone trends that are
robust even at small scale. Shape assertions against the paper (who wins,
crossovers) are checked at the default scale by the benchmark suite and
recorded in EXPERIMENTS.md — at smoke scale they would be noise.
"""

import pytest

from repro.experiments import (
    ALL_POLICY_VARIANTS,
    OFFLINE_LABEL,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
)


@pytest.fixture(scope="module")
def fig4():
    return figure4("smoke")


@pytest.fixture(scope="module")
def fig8():
    return figure8("smoke")


class TestTable1:
    def test_all_variants_run(self):
        outcome = table1("smoke")
        assert set(outcome.labels()) == set(ALL_POLICY_VARIANTS)
        for label in outcome.labels():
            assert 0.0 <= outcome.mean_gc(label) <= 1.0


class TestFigure3:
    def test_runs_on_auction_trace(self):
        outcome = figure3("smoke")
        assert set(outcome.labels()) == set(ALL_POLICY_VARIANTS)
        assert outcome.config.budget == 2


class TestFigure4:
    def test_includes_offline(self, fig4):
        assert OFFLINE_LABEL in fig4.labels()

    def test_rank_one_online_policies_coincide(self, fig4):
        # Proposition 5 territory: on P^[1] MRSF == M-EDF; at rank 1 all
        # online policies are per-chronon optimal and equal.
        sedf = fig4.series("S-EDF(NP)")[0]
        mrsf = fig4.series("MRSF(P)")[0]
        assert sedf == pytest.approx(mrsf, abs=0.02)

    def test_gc_decreases_with_rank(self, fig4):
        series = fig4.series("MRSF(P)")
        assert series[0] >= series[-1]

    def test_unit_width_instances(self, fig4):
        assert fig4.runs[0].config.window == 0


class TestFigure5:
    def test_two_panels(self):
        pair = figure5("smoke")
        assert pair.left.parameter == "num_profiles"
        assert pair.right.parameter == "num_profiles"
        assert OFFLINE_LABEL in pair.left.labels()
        assert OFFLINE_LABEL not in pair.right.labels()

    def test_runtime_series_positive(self):
        pair = figure5("smoke")
        for label in pair.left.labels():
            assert all(value >= 0.0
                       for value in pair.left.series(label, "runtime"))


class TestFigure6:
    def test_gc_decreases_with_intensity(self):
        pair = figure6("smoke")
        for label in pair.left.labels():
            series = pair.left.series(label)
            assert series[0] >= series[-1] - 0.05

    def test_gc_decreases_with_profiles(self):
        pair = figure6("smoke")
        for label in pair.right.labels():
            series = pair.right.series(label)
            assert series[0] >= series[-1] - 0.05


class TestFigure7:
    def test_gc_increases_with_alpha(self):
        pair = figure7("smoke")
        for label in pair.left.labels():
            series = pair.left.series(label)
            assert series[-1] >= series[0] - 0.05

    def test_beta_sweep_runs(self):
        pair = figure7("smoke")
        assert pair.right.parameter == "beta"
        assert len(pair.right.runs) == 3


class TestFigure8:
    def test_gc_monotone_in_budget(self, fig8):
        for label in fig8.labels():
            series = fig8.series(label)
            for left, right in zip(series, series[1:]):
                assert right >= left - 0.02
