"""Default-scale shape regression tests for the paper's headline claims.

The benchmark suite asserts these shapes too, but benches only run with
``--benchmark-only``; this module pins the two cheapest, most
load-bearing claims into the ordinary test run so a regression cannot
slip through a tests-only CI. Kept to reduced sizes (seconds, not
minutes).
"""

import pytest

from repro.experiments import (
    OFFLINE_LABEL,
    ExperimentConfig,
    run_setting,
    sweep,
)


@pytest.fixture(scope="module")
def small_fig4():
    """A shrunk Figure-4 sweep: rank in {1, 3}, W=0, C=1."""
    config = ExperimentConfig(
        epoch_length=200, num_resources=80, num_profiles=100,
        intensity=10.0, window=0, grouping="indexed", budget=1,
        repetitions=2, seed=777)
    return sweep("mini-fig4", config, "max_rank", [1, 3],
                 policies=["S-EDF(NP)", "MRSF(P)"],
                 include_offline=True)


class TestHeadlineClaims:
    def test_gc_decreases_with_rank(self, small_fig4):
        series = small_fig4.series("MRSF(P)")
        assert series[0] > series[1]

    def test_rank_one_policies_coincide(self, small_fig4):
        assert small_fig4.series("MRSF(P)")[0] == pytest.approx(
            small_fig4.series("S-EDF(NP)")[0])

    def test_mrsf_beats_offline_approximation(self, small_fig4):
        mrsf = small_fig4.series("MRSF(P)")
        offline = small_fig4.series(OFFLINE_LABEL)
        for index in range(len(mrsf)):
            assert mrsf[index] >= offline[index] - 1e-9

    def test_sedf_np_dominated_at_rank_three(self, small_fig4):
        sedf = small_fig4.series("S-EDF(NP)")[1]
        offline = small_fig4.series(OFFLINE_LABEL)[1]
        assert sedf <= offline + 0.02

    def test_tinterval_aware_policies_lead_at_baseline(self):
        config = ExperimentConfig(
            epoch_length=200, num_resources=80, num_profiles=100,
            intensity=10.0, window=10, grouping="overlap", budget=1,
            repetitions=2, seed=778)
        outcome = run_setting(config, policies=[
            "S-EDF(NP)", "S-EDF(P)", "MRSF(P)", "M-EDF(P)"])
        assert outcome.mean_gc("MRSF(P)") > outcome.mean_gc("S-EDF(NP)")
        assert outcome.mean_gc("M-EDF(P)") > outcome.mean_gc("S-EDF(NP)")
