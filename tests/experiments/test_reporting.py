"""Tests for ASCII/CSV reporting."""

import pytest

from repro.experiments import ExperimentConfig, sweep
from repro.experiments.reporting import render_table, sweep_csv, sweep_table


@pytest.fixture(scope="module")
def sweep_result():
    config = ExperimentConfig(
        epoch_length=50, num_resources=8, num_profiles=6, intensity=5.0,
        window=4, repetitions=1, grouping="indexed", seed=3)
    return sweep("Demo", config, "budget", [1, 2],
                 policies=["S-EDF(P)", "MRSF(P)"])


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_floats_formatted(self):
        text = render_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_column_padding(self):
        text = render_table(["long-header", "b"], [[1, 2]])
        rows = text.splitlines()
        assert rows[0].index("| b") == rows[2].index("| 2")


class TestSweepTable:
    def test_contains_parameter_and_policies(self, sweep_result):
        text = sweep_table(sweep_result)
        assert "budget" in text
        assert "S-EDF(P)" in text
        assert "MRSF(P)" in text

    def test_one_row_per_value(self, sweep_result):
        lines = sweep_table(sweep_result).splitlines()
        # title + header + separator + 2 data rows
        assert len(lines) == 5

    def test_runtime_metric_title(self, sweep_result):
        text = sweep_table(sweep_result, metric="runtime")
        assert "runtime" in text

    def test_label_subset(self, sweep_result):
        text = sweep_table(sweep_result, labels=["MRSF(P)"])
        assert "MRSF(P)" in text
        assert "S-EDF(P)" not in text


class TestSweepCsv:
    def test_header_row(self, sweep_result):
        lines = sweep_csv(sweep_result).splitlines()
        assert lines[0] == "budget,S-EDF(P),MRSF(P)"

    def test_data_rows(self, sweep_result):
        lines = sweep_csv(sweep_result).splitlines()
        assert len(lines) == 3
        first = lines[1].split(",")
        assert first[0] == "1"
        assert 0.0 <= float(first[1]) <= 1.0
