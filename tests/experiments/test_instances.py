"""Instance cache: key sensitivity, disk round-trips, corruption handling.

The cache key must cover *every* field that influences generation —
every ``ExperimentConfig`` field, the repetition index and the trace
source — so no two distinct cells can ever collide. The disk store must
never serve a corrupted or partial entry: every damage mode is detected,
counted in ``disk_errors`` and answered by regeneration.
"""

import dataclasses
import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import make_instance
from repro.experiments.instances import (
    FORMAT_VERSION,
    InstanceCache,
    configure_instances,
    generate_instance,
    instance_key,
)

BASE = ExperimentConfig(epoch_length=30, num_resources=6, num_profiles=8,
                        intensity=4.0, window=5, repetitions=1,
                        grouping="overlap", seed=42)


def perturb(config: ExperimentConfig, field: dataclasses.Field):
    """A value for ``field`` differing from ``config``'s current one."""
    value = getattr(config, field.name)
    if field.name == "grouping":
        return "indexed" if value == "overlap" else "overlap"
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    raise AssertionError(
        f"add a perturbation rule for new config field {field.name!r}")


def profiles_equal(left, right) -> bool:
    ls, rs = list(left), list(right)
    if len(ls) != len(rs):
        return False
    return all(a.profile_id == b.profile_id and a.name == b.name
               and tuple(a) == tuple(b) for a, b in zip(ls, rs))


class TestInstanceKey:
    def test_stable(self):
        assert instance_key(BASE, 0, "poisson") \
            == instance_key(BASE, 0, "poisson")

    @pytest.mark.parametrize(
        "field", dataclasses.fields(ExperimentConfig),
        ids=lambda field: field.name)
    def test_every_config_field_perturbs_the_key(self, field):
        changed = BASE.with_(**{field.name: perturb(BASE, field)})
        assert instance_key(changed, 0, "poisson") \
            != instance_key(BASE, 0, "poisson")

    def test_repetition_perturbs_the_key(self):
        assert instance_key(BASE, 0, "poisson") \
            != instance_key(BASE, 1, "poisson")

    def test_source_perturbs_the_key(self):
        assert instance_key(BASE, 0, "poisson") \
            != instance_key(BASE, 0, "auction")


class TestMemoryCache:
    def test_hit_returns_same_objects(self):
        cache = InstanceCache(max_entries=2)
        first = cache.get_or_generate(BASE, 0)
        second = cache.get_or_generate(BASE, 0)
        assert first[0] is second[0] and first[1] is second[1]
        assert cache.stats() == {"memory_hits": 1, "disk_hits": 0,
                                 "misses": 1, "stores": 0,
                                 "disk_errors": 0}

    def test_lru_evicts_oldest(self):
        cache = InstanceCache(max_entries=2)
        cache.get_or_generate(BASE, 0)
        cache.get_or_generate(BASE, 1)
        cache.get_or_generate(BASE, 2)  # evicts repetition 0
        cache.get_or_generate(BASE, 0)
        assert cache.misses == 4

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            InstanceCache(max_entries=0)


class TestDiskStore:
    def test_round_trip_identical(self, tmp_path):
        writer = InstanceCache(cache_dir=tmp_path)
        trace, profiles = writer.get_or_generate(BASE, 0)
        assert writer.stores == 1
        reader = InstanceCache(cache_dir=tmp_path)
        disk_trace, disk_profiles = reader.get_or_generate(BASE, 0)
        assert reader.disk_hits == 1 and reader.misses == 0
        assert list(disk_trace) == list(trace)
        assert profiles_equal(disk_profiles, profiles)

    def test_auction_payloads_survive(self, tmp_path):
        writer = InstanceCache(cache_dir=tmp_path)
        trace, _ = writer.get_or_generate(BASE, 0, "auction")
        reader = InstanceCache(cache_dir=tmp_path)
        disk_trace, _ = reader.get_or_generate(BASE, 0, "auction")
        assert reader.disk_hits == 1
        assert [event.payload for event in disk_trace] \
            == [event.payload for event in trace]

    def _entry_paths(self, tmp_path):
        key = instance_key(BASE, 0, "poisson")
        return tmp_path / f"{key}.npz", tmp_path / f"{key}.json"

    def _assert_regenerated(self, tmp_path, expect_error=True):
        """A fresh cache must regenerate (not serve) the damaged entry."""
        fresh_trace, fresh_profiles = generate_instance(BASE, 0)
        cache = InstanceCache(cache_dir=tmp_path)
        trace, profiles = cache.get_or_generate(BASE, 0)
        assert cache.disk_hits == 0 and cache.misses == 1
        assert cache.disk_errors == (1 if expect_error else 0)
        assert list(trace) == list(fresh_trace)
        assert profiles_equal(profiles, fresh_profiles)
        # The miss rewrites the entry; the store is healthy again.
        healed = InstanceCache(cache_dir=tmp_path)
        healed.get_or_generate(BASE, 0)
        assert healed.disk_hits == 1 and healed.disk_errors == 0

    def test_truncated_npz_regenerated(self, tmp_path):
        InstanceCache(cache_dir=tmp_path).get_or_generate(BASE, 0)
        columns_path, _ = self._entry_paths(tmp_path)
        columns_path.write_bytes(columns_path.read_bytes()[:40])
        self._assert_regenerated(tmp_path)

    def test_malformed_manifest_regenerated(self, tmp_path):
        InstanceCache(cache_dir=tmp_path).get_or_generate(BASE, 0)
        _, manifest_path = self._entry_paths(tmp_path)
        manifest_path.write_text("{not json", encoding="utf-8")
        self._assert_regenerated(tmp_path)

    def test_version_skew_regenerated(self, tmp_path):
        InstanceCache(cache_dir=tmp_path).get_or_generate(BASE, 0)
        _, manifest_path = self._entry_paths(tmp_path)
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        self._assert_regenerated(tmp_path)

    def test_missing_columns_file_regenerated(self, tmp_path):
        InstanceCache(cache_dir=tmp_path).get_or_generate(BASE, 0)
        columns_path, _ = self._entry_paths(tmp_path)
        columns_path.unlink()
        self._assert_regenerated(tmp_path)

    def test_partial_entry_without_manifest_is_plain_miss(self, tmp_path):
        """npz written but no manifest (interrupted store) = clean miss."""
        InstanceCache(cache_dir=tmp_path).get_or_generate(BASE, 0)
        _, manifest_path = self._entry_paths(tmp_path)
        manifest_path.unlink()
        self._assert_regenerated(tmp_path, expect_error=False)

    def test_out_of_range_chronons_regenerated(self, tmp_path):
        """Damaged column values fail trace re-validation, not serve."""
        import numpy as np
        InstanceCache(cache_dir=tmp_path).get_or_generate(BASE, 0)
        columns_path, _ = self._entry_paths(tmp_path)
        with np.load(columns_path) as columns:
            data = {name: columns[name] for name in columns.files}
        data["trace_chronons"] = data["trace_chronons"] + 10_000
        np.savez(columns_path, **data)
        self._assert_regenerated(tmp_path)


class TestProcessWideConfiguration:
    def test_make_instance_uses_configured_cache(self, tmp_path):
        try:
            cache = configure_instances(cache_dir=tmp_path)
            make_instance(BASE, 0)
            assert cache.misses == 1 and cache.stores == 1
            make_instance(BASE, 0)
            assert cache.memory_hits == 1
        finally:
            configure_instances(cache_dir=None)

    def test_fast_default_round_trip(self):
        from repro.experiments.instances import fast_default
        try:
            configure_instances(fast=False)
            assert fast_default() is False
            configure_instances(fast=True)
            assert fast_default() is True
        finally:
            configure_instances(cache_dir=None, fast=True)
