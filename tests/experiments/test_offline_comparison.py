"""The offline solver-comparison experiment: results and parallelism.

Mirrors the online parallel-sweep contract: process-pool execution must
return exactly the serial gained-completeness numbers (instances are
regenerated from per-cell seeds and merged in serial order), and the
reference Local-Ratio engine must change only runtimes, never results.
"""

from repro.experiments import OFFLINE_SOLVER_LABELS, offline_comparison


def _gc_map(outcome):
    return {label: po.gc_values for label, po in outcome.outcomes.items()}


class TestOfflineComparison:
    def test_structure_and_labels(self):
        result = offline_comparison("smoke")
        assert result.parameter == "num_profiles"
        assert len(result.x_values) == len(result.runs)
        for run in result.runs:
            assert tuple(run.outcomes) == OFFLINE_SOLVER_LABELS
            # The P^[1], C=1 regime the paper evaluates offline in.
            assert run.config.window == 0
            assert run.config.budget == 1

    def test_local_ratio_competitive_with_greedy(self):
        # The decomposition should not lose to the plain greedy order on
        # aggregate (they share the exact feasibility machinery).
        result = offline_comparison("smoke")
        local_ratio = sum(result.series("local-ratio"))
        greedy = sum(result.series("greedy"))
        assert local_ratio >= greedy - 1e-9

    def test_workers_match_serial(self):
        serial = offline_comparison("smoke")
        parallel = offline_comparison("smoke", workers=2)
        assert parallel.x_values == serial.x_values
        for serial_run, parallel_run in zip(serial.runs, parallel.runs):
            assert _gc_map(parallel_run) == _gc_map(serial_run)

    def test_reference_engine_same_results(self):
        fast = offline_comparison("smoke")
        reference = offline_comparison("smoke", engine="reference")
        for fast_run, reference_run in zip(fast.runs, reference.runs):
            assert _gc_map(fast_run) == _gc_map(reference_run)

    def test_registered_in_cli(self):
        from repro.cli import _EXPERIMENTS
        assert _EXPERIMENTS["offline"] is offline_comparison
