"""Parallel sweep executor: process-pool results equal serial results.

The pool farms out (setting, repetition) cells; since instance
generation is fully seeded per cell, every gained-completeness number
must come back identical to the serial path (wall-clock runtimes are
measured per process and naturally differ).
"""

from repro.experiments import ExperimentConfig
from repro.experiments.harness import run_setting, sweep

_CONFIG = ExperimentConfig(
    epoch_length=20, num_resources=6, num_profiles=8, intensity=4.0,
    window=4, repetitions=3, grouping="overlap", seed=99)

_POLICIES = ("S-EDF(P)", "MRSF(P)")


def _gc_map(outcome):
    return {label: po.gc_values for label, po in outcome.outcomes.items()}


class TestParallelExecution:
    def test_run_setting_workers_matches_serial(self):
        serial = run_setting(_CONFIG, _POLICIES)
        parallel = run_setting(_CONFIG, _POLICIES, workers=2)
        assert _gc_map(parallel) == _gc_map(serial)

    def test_sweep_workers_matches_serial(self):
        serial = sweep("s", _CONFIG, "budget", [1, 2], _POLICIES)
        parallel = sweep("s", _CONFIG, "budget", [1, 2], _POLICIES,
                         workers=4)
        assert parallel.x_values == serial.x_values
        for serial_run, parallel_run in zip(serial.runs, parallel.runs):
            assert _gc_map(parallel_run) == _gc_map(serial_run)

    def test_sweep_workers_includes_offline(self):
        serial = sweep("s", _CONFIG, "budget", [1], _POLICIES,
                       include_offline=True)
        parallel = sweep("s", _CONFIG, "budget", [1], _POLICIES,
                         include_offline=True, workers=2)
        for serial_run, parallel_run in zip(serial.runs, parallel.runs):
            assert _gc_map(parallel_run) == _gc_map(serial_run)

    def test_workers_one_takes_serial_path(self):
        serial = run_setting(_CONFIG, _POLICIES)
        degenerate = run_setting(_CONFIG, _POLICIES, workers=1)
        assert _gc_map(degenerate) == _gc_map(serial)
