"""Batch-engine harness path: mega blocks, fall-backs and worker
invariance.

The harness groups sweep cells sharing a generation key into columnar
mega blocks; this file pins down that the blocked path (serial and on a
process pool of any size) reproduces exactly the fast engine's numbers,
that unsupported policies fall back per (cell, policy), and that
:func:`~repro.experiments.instances.generation_key` captures precisely
the generative config fields.
"""

from repro.experiments import ExperimentConfig
from repro.experiments.harness import run_setting, sweep
from repro.experiments.instances import (
    InstanceCache,
    generation_key,
    instance_key,
)

_CONFIG = ExperimentConfig(
    epoch_length=20, num_resources=6, num_profiles=8, intensity=4.0,
    window=4, repetitions=3, grouping="overlap", seed=99)

#: RANDOM has no columnar kind — including it exercises the per-policy
#: fall-back inside an otherwise-blocked cell.
_POLICIES = ("S-EDF(P)", "MRSF(P)", "RANDOM(NP)")


def _gc_map(outcome):
    return {label: po.gc_values for label, po in outcome.outcomes.items()}


class TestBatchHarness:
    def test_run_setting_batch_matches_fast(self):
        fast = run_setting(_CONFIG, _POLICIES)
        batch = run_setting(_CONFIG, _POLICIES, engine="batch")
        assert _gc_map(batch) == _gc_map(fast)

    def test_sweep_batch_matches_fast(self):
        fast = sweep("s", _CONFIG, "budget", [1, 2, 3], _POLICIES)
        batch = sweep("s", _CONFIG, "budget", [1, 2, 3], _POLICIES,
                      engine="batch")
        assert batch.x_values == fast.x_values
        for fast_run, batch_run in zip(fast.runs, batch.runs):
            assert _gc_map(batch_run) == _gc_map(fast_run)

    def test_sweep_batch_includes_offline(self):
        fast = sweep("s", _CONFIG, "budget", [1], _POLICIES,
                     include_offline=True)
        batch = sweep("s", _CONFIG, "budget", [1], _POLICIES,
                      include_offline=True, engine="batch")
        for fast_run, batch_run in zip(fast.runs, batch.runs):
            assert _gc_map(batch_run) == _gc_map(fast_run)

    def test_sweep_batch_worker_count_invariant(self):
        """Chunking groups cells by block key; any worker count must
        reproduce the serial blocked results bit for bit."""
        serial = sweep("s", _CONFIG, "budget", [1, 2, 3], _POLICIES,
                       engine="batch")
        for workers in (2, 3):
            pooled = sweep("s", _CONFIG, "budget", [1, 2, 3], _POLICIES,
                           engine="batch", workers=workers)
            assert pooled.x_values == serial.x_values
            for serial_run, pooled_run in zip(serial.runs, pooled.runs):
                assert _gc_map(pooled_run) == _gc_map(serial_run)

    def test_sweep_non_budget_axis_blocks_per_value(self):
        """Sweeping a generative field gives each value its own block —
        still identical to the fast engine."""
        fast = sweep("s", _CONFIG, "window", [3, 4], _POLICIES)
        batch = sweep("s", _CONFIG, "window", [3, 4], _POLICIES,
                      engine="batch")
        for fast_run, batch_run in zip(fast.runs, batch.runs):
            assert _gc_map(batch_run) == _gc_map(fast_run)


class TestGenerationKey:
    def test_budget_and_repetitions_do_not_perturb(self):
        base = generation_key(_CONFIG, 0, "poisson")
        assert generation_key(_CONFIG.with_(budget=7), 0,
                              "poisson") == base
        assert generation_key(_CONFIG.with_(repetitions=9), 0,
                              "poisson") == base

    def test_generative_fields_perturb(self):
        base = generation_key(_CONFIG, 0, "poisson")
        assert generation_key(_CONFIG.with_(seed=1), 0, "poisson") != base
        assert generation_key(_CONFIG.with_(window=5), 0,
                              "poisson") != base
        assert generation_key(_CONFIG, 1, "poisson") != base

    def test_instance_key_still_covers_budget(self):
        assert instance_key(_CONFIG.with_(budget=7), 0, "poisson") != \
            instance_key(_CONFIG, 0, "poisson")

    def test_memory_cache_shares_across_budgets(self):
        cache = InstanceCache(max_entries=4)
        _trace_a, profiles_a = cache.get_or_generate(_CONFIG, 0)
        _trace_b, profiles_b = cache.get_or_generate(
            _CONFIG.with_(budget=7), 0)
        assert profiles_b is profiles_a
