"""Tests for JSON serialization round-trips."""

import json

import pytest
from hypothesis import given, settings

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    ModelError,
    Profile,
    ProfileSet,
    Schedule,
    TInterval,
)
from repro.io import (
    budget_from_jsonable,
    budget_to_jsonable,
    load_profiles,
    load_result,
    profiles_from_jsonable,
    profiles_to_jsonable,
    result_from_jsonable,
    result_to_jsonable,
    save_profiles,
    save_result,
    schedule_from_jsonable,
    schedule_to_jsonable,
)
from repro.online import MRSFPolicy
from repro.simulation import run_online

from tests.properties.strategies import profile_sets


def _profiles() -> ProfileSet:
    return ProfileSet([
        Profile([
            TInterval([ExecutionInterval(0, 1, 4),
                       ExecutionInterval(1, 2, 6)]),
            TInterval([ExecutionInterval(2, 8, 8)]),
        ], name="alpha"),
        Profile([TInterval([ExecutionInterval(0, 3, 9)])], name="beta"),
    ])


class TestProfilesRoundTrip:
    def test_structure_preserved(self):
        original = _profiles()
        restored = profiles_from_jsonable(profiles_to_jsonable(original))
        assert len(restored) == len(original)
        assert restored.total_tintervals == original.total_tintervals
        assert restored.rank == original.rank
        for original_profile, restored_profile in zip(original,
                                                      restored):
            assert restored_profile.name == original_profile.name
            for original_eta, restored_eta in zip(original_profile,
                                                  restored_profile):
                assert restored_eta.eis == original_eta.eis

    def test_jsonable_is_json_safe(self):
        payload = profiles_to_jsonable(_profiles())
        assert json.loads(json.dumps(payload)) == payload

    def test_file_round_trip(self, tmp_path):
        original = _profiles()
        path = tmp_path / "profiles.json"
        save_profiles(original, path)
        restored = load_profiles(path)
        assert restored.total_tintervals == original.total_tintervals

    @given(profiles=profile_sets())
    @settings(max_examples=40)
    def test_round_trip_property(self, profiles):
        restored = profiles_from_jsonable(
            profiles_to_jsonable(profiles))
        assert [[eta.eis for eta in profile] for profile in restored] \
            == [[eta.eis for eta in profile] for profile in profiles]


class TestScheduleRoundTrip:
    def test_round_trip(self):
        schedule = Schedule([(0, 3), (1, 3), (0, 7)])
        restored = schedule_from_jsonable(schedule_to_jsonable(schedule))
        assert list(restored.probes()) == list(schedule.probes())

    def test_empty(self):
        restored = schedule_from_jsonable(
            schedule_to_jsonable(Schedule()))
        assert len(restored) == 0


class TestBudgetRoundTrip:
    def test_constant(self):
        budget = BudgetVector(3)
        assert budget_from_jsonable(budget_to_jsonable(budget)) == budget

    def test_with_overrides(self):
        budget = BudgetVector(1, overrides={5: 4, 9: 0})
        assert budget_from_jsonable(budget_to_jsonable(budget)) == budget


class TestResultRoundTrip:
    def test_full_round_trip(self):
        profiles = _profiles()
        result = run_online(profiles, Epoch(12), BudgetVector(1),
                            MRSFPolicy())
        restored = result_from_jsonable(result_to_jsonable(result))
        assert restored.label == result.label
        assert restored.gc == result.gc
        assert restored.report.per_profile == result.report.per_profile
        assert restored.report.per_rank == result.report.per_rank
        assert list(restored.schedule.probes()) == \
            list(result.schedule.probes())
        assert restored.expired == result.expired

    def test_file_round_trip(self, tmp_path):
        profiles = _profiles()
        result = run_online(profiles, Epoch(12), BudgetVector(1),
                            MRSFPolicy())
        path = tmp_path / "result.json"
        save_result(result, path)
        restored = load_result(path)
        assert restored.gc == result.gc


class TestEnvelopeValidation:
    def test_wrong_format_rejected(self):
        payload = profiles_to_jsonable(_profiles())
        payload["format"] = "repro/schedule"
        with pytest.raises(ModelError, match="format"):
            profiles_from_jsonable(payload)

    def test_wrong_version_rejected(self):
        payload = profiles_to_jsonable(_profiles())
        payload["version"] = 99
        with pytest.raises(ModelError, match="version"):
            profiles_from_jsonable(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(ModelError, match="envelope"):
            schedule_from_jsonable([1, 2, 3])
