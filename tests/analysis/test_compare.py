"""Tests for the policy comparison helper."""

import pytest

from repro.analysis import compare_policies
from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)


@pytest.fixture(scope="module")
def instance():
    profiles = ProfileSet([
        Profile([TInterval([ExecutionInterval(0, 1, 3)]),
                 TInterval([ExecutionInterval(1, 2, 4)])]),
        Profile([TInterval([ExecutionInterval(2, 1, 2),
                            ExecutionInterval(0, 4, 6)])]),
    ])
    return profiles, Epoch(8), BudgetVector(1)


class TestComparePolicies:
    def test_runs_all_specs(self, instance):
        profiles, epoch, budget = instance
        comparison = compare_policies(profiles, epoch, budget,
                                      ["S-EDF(P)", "MRSF(NP)"])
        assert set(comparison.results) == {"S-EDF(P)", "MRSF(NP)"}

    def test_offline_approx_included(self, instance):
        profiles, epoch, budget = instance
        comparison = compare_policies(profiles, epoch, budget,
                                      ["MRSF(P)"],
                                      include_offline_approx=True)
        assert "offline-approx" in comparison.results

    def test_optimum_and_competitive_ratio(self, instance):
        profiles, epoch, budget = instance
        comparison = compare_policies(profiles, epoch, budget,
                                      ["MRSF(P)"], include_optimum=True)
        ratio = comparison.competitive_ratio("MRSF(P)")
        assert 0.0 <= ratio <= 1.0

    def test_competitive_ratio_requires_optimum(self, instance):
        profiles, epoch, budget = instance
        comparison = compare_policies(profiles, epoch, budget,
                                      ["MRSF(P)"])
        with pytest.raises(ValueError, match="optimum"):
            comparison.competitive_ratio("MRSF(P)")

    def test_best_label(self, instance):
        profiles, epoch, budget = instance
        comparison = compare_policies(profiles, epoch, budget,
                                      ["S-EDF(P)", "MRSF(P)"])
        best = comparison.best_label()
        assert comparison.gc(best) == max(
            comparison.gc("S-EDF(P)"), comparison.gc("MRSF(P)"))

    def test_rows_include_optimum(self, instance):
        profiles, epoch, budget = instance
        comparison = compare_policies(profiles, epoch, budget,
                                      ["MRSF(P)"], include_optimum=True)
        labels = [row[0] for row in comparison.rows()]
        assert "(optimum)" in labels

    def test_vacuous_ratio_when_optimum_zero(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 5, 5),
                       ExecutionInterval(1, 5, 5)])])])
        comparison = compare_policies(profiles, Epoch(8),
                                      BudgetVector(1), ["MRSF(P)"],
                                      include_optimum=True)
        assert comparison.competitive_ratio("MRSF(P)") == 1.0
