"""Tests for instance statistics."""

import pytest

from repro.analysis import compute_stats
from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)


def _profiles() -> ProfileSet:
    p0 = Profile([
        TInterval([ExecutionInterval(0, 1, 4),       # width 4
                   ExecutionInterval(1, 2, 2)]),      # width 1
        TInterval([ExecutionInterval(0, 3, 6)]),      # overlaps first EI
    ])
    p1 = Profile([TInterval([ExecutionInterval(2, 8, 8)])])
    return ProfileSet([p0, p1])


@pytest.fixture
def stats():
    return compute_stats(_profiles(), Epoch(10), BudgetVector(1))


class TestCounts:
    def test_populations(self, stats):
        assert stats.num_profiles == 2
        assert stats.num_tintervals == 3
        assert stats.num_eis == 4

    def test_rank(self, stats):
        assert stats.rank == 2

    def test_mean_tinterval_size(self, stats):
        assert stats.mean_tinterval_size == pytest.approx(4 / 3)

    def test_mean_ei_width(self, stats):
        assert stats.mean_ei_width == pytest.approx((4 + 1 + 4 + 1) / 4)

    def test_unit_width_fraction(self, stats):
        assert stats.unit_width_fraction == pytest.approx(0.5)


class TestOverlapRate:
    def test_overlapping_pair_counted(self, stats):
        # r0's [1,4] and [3,6] overlap; the other two EIs do not.
        assert stats.intra_resource_overlap_rate == pytest.approx(0.5)

    def test_no_overlap(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 2)]),
            TInterval([ExecutionInterval(0, 5, 6)]),
        ])])
        result = compute_stats(profiles, Epoch(10), BudgetVector(1))
        assert result.intra_resource_overlap_rate == 0.0


class TestDemand:
    def test_peak_demand_counts_distinct_resources(self, stats):
        # At chronons 2-4: r0 and r1 (then r0 alone) -> peak 2.
        assert stats.peak_demand == 2

    def test_same_resource_counts_once(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 5)]),
            TInterval([ExecutionInterval(0, 2, 6)]),
        ])])
        result = compute_stats(profiles, Epoch(10), BudgetVector(1))
        assert result.peak_demand == 1

    def test_demand_to_budget(self, stats):
        assert stats.demand_to_budget == pytest.approx(4 / 10)

    def test_zero_budget(self):
        result = compute_stats(_profiles(), Epoch(10), BudgetVector(0))
        assert result.demand_to_budget == float("inf")

    def test_empty_instance(self):
        result = compute_stats(ProfileSet(), Epoch(5), BudgetVector(1))
        assert result.num_eis == 0
        assert result.peak_demand == 0
        assert result.demand_to_budget == 0.0


class TestDescribe:
    def test_rows_render(self, stats):
        rows = dict(stats.describe())
        assert rows["profiles"] == "2"
        assert rows["rank(P)"] == "2"
        assert "demand / budget" in rows
