"""Tests for the circuit breaker, backoff, and retry config."""

import pytest

from repro.core.errors import FaultError
from repro.faults import CircuitBreaker, RetryConfig, execute_probes
from repro.faults.model import OK_DECISION, FaultDecision
from repro.runtime.server import PROBE_FAILED


class TestRetryConfig:
    def test_negative_retries_rejected(self):
        with pytest.raises(FaultError):
            RetryConfig(max_retries=-1)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=4)
        assert not breaker.record_failure(0, 1)
        assert not breaker.record_failure(0, 2)
        assert breaker.record_failure(0, 3)
        assert breaker.is_blocked(0, 4)
        assert breaker.is_blocked(0, 7)  # 3 + cooldown 4
        assert not breaker.is_blocked(0, 8)

    def test_success_resets(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=4)
        breaker.record_failure(0, 1)
        breaker.record_success(0)
        assert not breaker.record_failure(0, 2)

    def test_half_open_failure_retrips_with_backoff(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=4,
                                 backoff_factor=2.0, max_cooldown=64)
        breaker.record_failure(0, 1)
        breaker.record_failure(0, 2)  # trips; open through chronon 6
        assert breaker.is_blocked(0, 6)
        # Half-open trial at 7 fails: re-trips immediately, doubled.
        assert breaker.record_failure(0, 7)
        assert breaker.is_blocked(0, 15)  # 7 + 4 * 2
        assert not breaker.is_blocked(0, 16)

    def test_cooldown_is_capped(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4,
                                 backoff_factor=10.0, max_cooldown=8)
        breaker.record_failure(0, 1)   # cooldown 4
        breaker.record_failure(0, 6)   # would be 40, capped at 8
        assert breaker.is_blocked(0, 14)
        assert not breaker.is_blocked(0, 15)

    def test_resources_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4)
        breaker.record_failure(0, 1)
        assert breaker.is_blocked(0, 2)
        assert not breaker.is_blocked(1, 2)

    def test_quarantine_accounting(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure(3, 1)
        breaker.record_failure(5, 1)
        assert breaker.quarantined_now(2) == {3, 5}
        assert breaker.quarantined_count == 2
        breaker.record_success(3)
        # Ever-quarantined is cumulative; current quarantine is not.
        assert breaker.quarantined_now(2) == {5}
        assert breaker.quarantined_count == 2

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"cooldown": 0},
        {"backoff_factor": 0.5},
        {"cooldown": 10, "max_cooldown": 5},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(FaultError):
            CircuitBreaker(**kwargs)


class _Decision:
    def __init__(self, resource_id):
        self.resource_id = resource_id


class _ScriptedProber:
    """Fails resources per a script: {resource_id: attempts_that_fail}."""

    def __init__(self, failing):
        self.failing = failing
        self.calls = []

    def __call__(self, resource_id, attempt):
        self.calls.append((resource_id, attempt))
        if attempt < self.failing.get(resource_id, 0):
            return FaultDecision(PROBE_FAILED, fault="drop")
        return OK_DECISION


class TestExecuteProbes:
    def test_all_ok_consumes_no_extra_budget(self):
        prober = _ScriptedProber({})
        round_ = execute_probes([_Decision(0), _Decision(1)], 1, 5, prober)
        assert set(round_.outcomes) == {0, 1}
        assert round_.attempts == 2
        assert round_.failures == 0
        assert round_.retries == 0

    def test_failed_probe_without_retry_stays_failed(self):
        prober = _ScriptedProber({0: 1})
        round_ = execute_probes([_Decision(0)], 1, 5, prober)
        assert round_.outcomes == {}
        assert round_.failed == [0]
        assert round_.failures == 1

    def test_retry_recovers_with_leftover_budget(self):
        prober = _ScriptedProber({0: 1})
        round_ = execute_probes([_Decision(0)], 1, 2, prober,
                                retry=RetryConfig(1))
        assert 0 in round_.outcomes
        assert round_.retries == 1
        assert round_.attempts == 2
        assert prober.calls == [(0, 0), (0, 1)]

    def test_no_leftover_budget_means_no_retry(self):
        prober = _ScriptedProber({0: 1})
        round_ = execute_probes([_Decision(0)], 1, 1, prober,
                                retry=RetryConfig(3))
        assert round_.retries == 0
        assert round_.failed == [0]

    def test_retries_capped_per_resource(self):
        prober = _ScriptedProber({0: 10})
        round_ = execute_probes([_Decision(0)], 1, 100, prober,
                                retry=RetryConfig(2))
        assert round_.failed == [0]
        assert round_.retries == 2
        assert round_.failures == 3

    def test_retry_budget_shared_across_resources_in_order(self):
        prober = _ScriptedProber({0: 2, 1: 1})
        # budget 4: two first attempts + two retries, both to resource 0
        # (decision order), leaving none for resource 1.
        round_ = execute_probes([_Decision(0), _Decision(1)], 1, 4,
                                prober, retry=RetryConfig(2))
        assert 0 in round_.outcomes
        assert round_.failed == [1]

    def test_breaker_trip_stops_in_chronon_retries(self):
        prober = _ScriptedProber({0: 10})
        breaker = CircuitBreaker(failure_threshold=2, cooldown=4)
        round_ = execute_probes([_Decision(0)], 1, 100, prober,
                                retry=RetryConfig(5), breaker=breaker)
        # First attempt + one retry trip the breaker; retries stop.
        assert round_.retries == 1
        assert breaker.is_blocked(0, 1)

    def test_success_feeds_breaker(self):
        prober = _ScriptedProber({})
        breaker = CircuitBreaker(failure_threshold=2, cooldown=4)
        breaker.record_failure(0, 1)
        execute_probes([_Decision(0)], 5, 5, prober, breaker=breaker)
        # The success cleared the failure streak: one more failure does
        # not trip the threshold-2 breaker.
        assert not breaker.record_failure(0, 6)


class TestCooldownGrowth:
    def test_fractional_backoff_factor_never_stalls(self):
        # Regression: int() truncation made cooldown=1, factor=1.5
        # produce 1, 1, 2, ... (the second trip's window was no longer
        # than the first); ceil gives strictly growing windows until
        # the cap.
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1,
                                 backoff_factor=1.5, max_cooldown=64)
        windows = [breaker._cooldown_for(trips) for trips in range(5)]
        assert windows == [1, 2, 3, 4, 6]
        assert all(b > a for a, b in zip(windows, windows[1:]))

    def test_integer_factors_unchanged_by_ceil(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4,
                                 backoff_factor=2.0, max_cooldown=64)
        assert [breaker._cooldown_for(t) for t in range(4)] == \
            [4, 8, 16, 32]


class TestReset:
    def test_reset_reopens_quarantined_resources(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10)
        breaker.record_failure(0, 1)
        assert breaker.is_blocked(0, 5)
        breaker.reset()
        assert not breaker.is_blocked(0, 5)
        assert breaker.quarantined_count == 0

    def test_reset_clears_trip_escalation(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4,
                                 backoff_factor=2.0)
        breaker.record_failure(0, 1)
        breaker.record_failure(0, 6)  # second trip: doubled window
        breaker.reset()
        # A fresh epoch starts from the base cooldown again.
        breaker.record_failure(0, 1)
        assert breaker.is_blocked(0, 5)
        assert not breaker.is_blocked(0, 6)

    def test_reset_clears_failure_streaks(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=4)
        breaker.record_failure(0, 1)
        breaker.reset()
        assert not breaker.record_failure(0, 2)


class TestHalfOpen:
    def test_half_open_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4)
        breaker.record_failure(0, 1)  # open through chronon 5
        assert not breaker.is_half_open(0, 5)
        assert breaker.is_half_open(0, 6)

    def test_untripped_resource_is_not_half_open(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=4)
        breaker.record_failure(0, 1)  # streak of 1: below threshold
        assert not breaker.is_half_open(0, 10)

    def test_success_closes_half_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=4)
        breaker.record_failure(0, 1)
        breaker.record_success(0)
        assert not breaker.is_half_open(0, 10)
