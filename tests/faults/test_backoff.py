"""Tests for the full-jitter backoff policy."""

import pytest

from repro.core.errors import FaultError
from repro.faults import BackoffPolicy, RetryConfig


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"base_delay": -0.1},
        {"factor": 0.5},
        {"base_delay": 0.5, "max_delay": 0.1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(FaultError):
            BackoffPolicy(**kwargs)

    def test_attempt_zero_rejected(self):
        with pytest.raises(FaultError):
            BackoffPolicy().window_for(0)


class TestWindows:
    def test_exponential_envelope(self):
        policy = BackoffPolicy(base_delay=0.01, factor=2.0, max_delay=1.0)
        assert policy.window_for(1) == pytest.approx(0.01)
        assert policy.window_for(2) == pytest.approx(0.02)
        assert policy.window_for(3) == pytest.approx(0.04)

    def test_window_capped(self):
        policy = BackoffPolicy(base_delay=0.01, factor=10.0,
                               max_delay=0.05)
        assert policy.window_for(3) == pytest.approx(0.05)

    def test_zero_base_means_zero_delay(self):
        policy = BackoffPolicy(base_delay=0.0, max_delay=0.0)
        assert policy.delay_for("0:1", 1) == 0.0


class TestJitter:
    def test_delay_within_window(self):
        policy = BackoffPolicy(base_delay=0.01, factor=2.0, max_delay=0.1)
        for attempt in (1, 2, 3):
            delay = policy.delay_for("7:3", attempt)
            assert 0.0 <= delay <= policy.window_for(attempt)

    def test_deterministic_across_instances(self):
        first = BackoffPolicy(seed=42)
        second = BackoffPolicy(seed=42)
        assert first.delay_for("5:9", 2) == second.delay_for("5:9", 2)

    def test_seed_and_key_decorrelate(self):
        policy = BackoffPolicy(seed=1)
        other_seed = BackoffPolicy(seed=2)
        assert policy.delay_for("0:1", 1) != \
            other_seed.delay_for("0:1", 1)
        assert policy.delay_for("0:1", 1) != policy.delay_for("0:2", 1)


class TestRetryInterop:
    def test_from_retry_lifts_allowance(self):
        policy = BackoffPolicy.from_retry(RetryConfig(3))
        assert policy.max_retries == 3

    def test_from_none_disables_retries(self):
        assert BackoffPolicy.from_retry(None).max_retries == 0

    def test_as_retry_round_trip(self):
        assert BackoffPolicy(max_retries=2).as_retry() == RetryConfig(2)
