"""Tests for the fault-injecting origin-server wrapper."""

import pytest

from repro.core import Epoch
from repro.core.errors import ProbeFailure
from repro.faults import FaultSpec, Outage, UnreliableServer
from repro.runtime import OriginServer
from repro.traces import UpdateEvent, UpdateTrace


def make_trace() -> UpdateTrace:
    return UpdateTrace(
        [UpdateEvent(3, 0, "a"), UpdateEvent(7, 0, "b"),
         UpdateEvent(5, 1, "x")],
        Epoch(20))


@pytest.fixture
def reliable() -> OriginServer:
    return OriginServer(make_trace())


class TestTransparency:
    def test_null_spec_is_transparent(self, reliable):
        wrapped = UnreliableServer(OriginServer(make_trace()))
        for chronon in (3, 5, 9, 12):
            reliable.advance_to(chronon)
            wrapped.advance_to(chronon)
            for resource_id in (0, 1, 2):
                outcome = wrapped.try_probe(resource_id)
                assert outcome.ok
                assert outcome.snapshot == reliable.probe(resource_id)

    def test_state_machine_delegates(self):
        wrapped = UnreliableServer(OriginServer(make_trace()))
        wrapped.advance_to(4)
        assert wrapped.clock == 4
        wrapped.publish(UpdateEvent(6, 5, "pub"))
        wrapped.advance_to(6)
        assert wrapped.version_of(5) == 1
        assert wrapped.probe(5).value == "pub"


class TestFaultInjection:
    def test_outage_fails_probes(self):
        spec = FaultSpec(outages=(Outage(0, 0, 10),))
        wrapped = UnreliableServer(OriginServer(make_trace()), spec)
        wrapped.advance_to(5)
        outcome = wrapped.try_probe(0)
        assert not outcome.ok
        assert outcome.fault == "outage"
        assert outcome.snapshot is None
        # Other resources are unaffected.
        assert wrapped.try_probe(1).ok
        # The outage ends.
        wrapped.advance_to(11)
        assert wrapped.try_probe(0).ok

    def test_strict_probe_raises_probe_failure(self):
        spec = FaultSpec(outages=(Outage(0, 0, None),))
        wrapped = UnreliableServer(OriginServer(make_trace()), spec)
        wrapped.advance_to(5)
        with pytest.raises(ProbeFailure, match="resource 0"):
            wrapped.probe(0)

    def test_probe_failure_carries_context(self):
        spec = FaultSpec(outages=(Outage(0, 0, None),))
        wrapped = UnreliableServer(OriginServer(make_trace()), spec)
        wrapped.advance_to(5)
        try:
            wrapped.probe(0)
        except ProbeFailure as failure:
            assert failure.resource_id == 0
            assert failure.chronon == 5
            assert failure.fault == "outage"

    def test_rate_limit_resets_each_chronon(self):
        spec = FaultSpec(max_probes_per_chronon=1)
        wrapped = UnreliableServer(OriginServer(make_trace()), spec)
        wrapped.advance_to(4)
        assert wrapped.try_probe(0).ok
        assert wrapped.try_probe(1).status == "throttled"
        wrapped.advance_to(5)
        assert wrapped.try_probe(1).ok


class TestStaleReads:
    def test_stale_read_serves_lagged_state(self):
        spec = FaultSpec(stale_probability=1.0, stale_lag=2)
        wrapped = UnreliableServer(OriginServer(make_trace()), spec)
        wrapped.advance_to(6)
        outcome = wrapped.try_probe(0)
        assert outcome.ok and outcome.stale
        # As of chronon 4 only the chronon-3 update had landed.
        assert outcome.snapshot.value == "a"
        assert outcome.snapshot.version == 1
        assert outcome.snapshot.updated_at == 3
        assert outcome.snapshot.probed_at == 6

    def test_stale_read_before_any_update(self):
        spec = FaultSpec(stale_probability=1.0, stale_lag=5)
        wrapped = UnreliableServer(OriginServer(make_trace()), spec)
        wrapped.advance_to(4)
        outcome = wrapped.try_probe(0)
        assert outcome.ok and outcome.stale
        assert outcome.snapshot.version == 0
        assert outcome.snapshot.value == ""
        assert not outcome.snapshot.is_fresh

    def test_stale_lag_zero_is_current(self):
        spec = FaultSpec(stale_probability=1.0, stale_lag=0)
        wrapped = UnreliableServer(OriginServer(make_trace()), spec)
        wrapped.advance_to(7)
        outcome = wrapped.try_probe(0)
        assert outcome.snapshot.value == "b"


class TestDeterminismAndReplay:
    def run_outcomes(self, server: UnreliableServer):
        statuses = []
        for chronon in range(1, 15):
            server.advance_to(chronon)
            for resource_id in (0, 1, 2):
                statuses.append(server.try_probe(resource_id).status)
        return statuses

    def test_same_seed_same_outcomes(self):
        spec = FaultSpec(failure_probability=0.4, seed=13)
        one = self.run_outcomes(
            UnreliableServer(OriginServer(make_trace()), spec))
        two = self.run_outcomes(
            UnreliableServer(OriginServer(make_trace()), spec))
        assert one == two

    def test_trace_replay_reproduces_run(self):
        spec = FaultSpec(failure_probability=0.4,
                         stale_probability=0.2, seed=21)
        original = UnreliableServer(OriginServer(make_trace()), spec)
        statuses = self.run_outcomes(original)
        assert len(original.fault_trace) == len(statuses)

        replayed = UnreliableServer(
            OriginServer(make_trace()),
            injector=original.fault_trace.replay())
        assert self.run_outcomes(replayed) == statuses
