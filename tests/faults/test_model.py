"""Tests for the fault model: specs, injectors, traces, replay."""

import pytest

from repro.core.errors import FaultError
from repro.faults import (
    PROBE_FAILED,
    PROBE_OK,
    PROBE_THROTTLED,
    FaultInjector,
    FaultReplayError,
    FaultSpec,
    Outage,
)


class TestFaultSpec:
    def test_null_spec(self):
        assert FaultSpec().is_null

    def test_non_null_specs(self):
        assert not FaultSpec(failure_probability=0.1).is_null
        assert not FaultSpec(outages=(Outage(0, 1, 2),)).is_null
        assert not FaultSpec(max_probes_per_chronon=3).is_null
        assert not FaultSpec(per_resource={1: 0.5}).is_null

    def test_zeroed_per_resource_is_null(self):
        assert FaultSpec(per_resource={1: 0.0}).is_null

    @pytest.mark.parametrize("kwargs", [
        {"failure_probability": -0.1},
        {"failure_probability": 1.5},
        {"timeout_probability": 2.0},
        {"stale_probability": -1.0},
        {"stale_lag": -1},
        {"max_probes_per_chronon": -2},
        {"per_resource": {0: 1.1}},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(FaultError):
            FaultSpec(**kwargs)

    def test_overlapping_outages_rejected(self):
        with pytest.raises(FaultError) as err:
            FaultSpec(outages=(Outage(2, 3, 9), Outage(2, 7, 12)))
        message = str(err.value)
        assert "resource 2" in message
        assert "Outage(resource_id=2, start=3, last=9)" in message
        assert "Outage(resource_id=2, start=7, last=12)" in message

    def test_window_after_permanent_outage_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(outages=(Outage(1, 0, None), Outage(1, 50, 60)))

    def test_disjoint_and_cross_resource_windows_accepted(self):
        spec = FaultSpec(outages=(Outage(0, 0, 4), Outage(0, 5, None),
                                  Outage(1, 2, 8)))
        assert len(spec.outages) == 3

    def test_per_resource_overrides_global_rate(self):
        spec = FaultSpec(failure_probability=0.2, per_resource={7: 0.9})
        assert spec.failure_rate_for(7) == 0.9
        assert spec.failure_rate_for(3) == 0.2


class TestOutage:
    def test_covers_window(self):
        outage = Outage(0, 5, 8)
        assert not outage.covers(4)
        assert outage.covers(5)
        assert outage.covers(8)
        assert not outage.covers(9)

    def test_permanent_outage(self):
        outage = Outage(0, 3, None)
        assert outage.covers(3)
        assert outage.covers(10_000)

    def test_inverted_window_rejected(self):
        with pytest.raises(FaultError, match="ends at"):
            Outage(0, 5, 4)


class TestFaultInjector:
    def test_null_spec_never_faults(self):
        injector = FaultInjector(FaultSpec())
        for chronon in range(1, 20):
            injector.begin_chronon(chronon)
            for resource_id in range(5):
                assert injector.decide(resource_id, chronon).ok

    def test_decisions_are_order_independent(self):
        spec = FaultSpec(failure_probability=0.5, seed=11)
        forward = FaultInjector(spec)
        backward = FaultInjector(spec)
        ids = list(range(10))
        fwd = {i: forward.decide(i, 1).status for i in ids}
        bwd = {i: backward.decide(i, 1).status for i in reversed(ids)}
        assert fwd == bwd

    def test_decisions_deterministic_across_injectors(self):
        spec = FaultSpec(failure_probability=0.3,
                         timeout_probability=0.2,
                         stale_probability=0.2, seed=5)
        one = FaultInjector(spec)
        two = FaultInjector(spec)
        for chronon in range(1, 10):
            one.begin_chronon(chronon)
            two.begin_chronon(chronon)
            for resource_id in range(6):
                a = one.decide(resource_id, chronon)
                b = two.decide(resource_id, chronon)
                assert (a.status, a.fault, a.stale) == \
                    (b.status, b.fault, b.stale)

    def test_different_seeds_differ(self):
        spec_a = FaultSpec(failure_probability=0.5, seed=1)
        spec_b = FaultSpec(failure_probability=0.5, seed=2)
        outcomes_a = [FaultInjector(spec_a).decide(r, 1).status
                      for r in range(40)]
        outcomes_b = [FaultInjector(spec_b).decide(r, 1).status
                      for r in range(40)]
        assert outcomes_a != outcomes_b

    def test_attempts_draw_independently(self):
        # A failed first attempt must not force the retry to fail too.
        spec = FaultSpec(failure_probability=0.5, seed=3)
        injector = FaultInjector(spec)
        statuses = {injector.decide(0, 1, attempt).status
                    for attempt in range(20)}
        assert statuses == {PROBE_OK, PROBE_FAILED}

    def test_failure_rate_is_roughly_honoured(self):
        spec = FaultSpec(failure_probability=0.3, seed=9)
        injector = FaultInjector(spec)
        failed = sum(
            not injector.decide(resource_id, chronon).ok
            for chronon in range(1, 101)
            for resource_id in range(10))
        assert 0.2 < failed / 1000 < 0.4

    def test_outage_beats_probability(self):
        spec = FaultSpec(outages=(Outage(2, 1, 5),))
        injector = FaultInjector(spec)
        decision = injector.decide(2, 3)
        assert decision.status == PROBE_FAILED
        assert decision.fault == "outage"
        assert injector.decide(2, 6).ok

    def test_rate_limit_throttles_excess_requests(self):
        spec = FaultSpec(max_probes_per_chronon=2)
        injector = FaultInjector(spec)
        injector.begin_chronon(1)
        assert injector.decide(0, 1).ok
        assert injector.decide(1, 1).ok
        third = injector.decide(2, 1)
        assert third.status == PROBE_THROTTLED
        assert third.fault == "rate-limit"
        # The window resets with the chronon.
        injector.begin_chronon(2)
        assert injector.decide(3, 2).ok

    def test_stale_decision(self):
        spec = FaultSpec(stale_probability=1.0)
        decision = FaultInjector(spec).decide(0, 1)
        assert decision.ok
        assert decision.stale


class TestFaultTrace:
    def test_records_every_attempt(self):
        spec = FaultSpec(failure_probability=0.5, seed=4)
        injector = FaultInjector(spec)
        injector.begin_chronon(1)
        for resource_id in range(5):
            injector.decide(resource_id, 1)
        assert len(injector.trace) == 5

    def test_recording_can_be_disabled(self):
        injector = FaultInjector(FaultSpec(failure_probability=0.5),
                                 record=False)
        injector.decide(0, 1)
        assert len(injector.trace) == 0

    def test_replay_reproduces_decisions(self):
        spec = FaultSpec(failure_probability=0.5,
                         stale_probability=0.3, seed=8)
        injector = FaultInjector(spec)
        originals = []
        for chronon in range(1, 8):
            injector.begin_chronon(chronon)
            for resource_id in range(4):
                originals.append(
                    injector.decide(resource_id, chronon))
        replay = injector.trace.replay()
        index = 0
        for chronon in range(1, 8):
            replay.begin_chronon(chronon)
            for resource_id in range(4):
                decision = replay.decide(resource_id, chronon)
                original = originals[index]
                assert (decision.status, decision.stale) == \
                    (original.status, original.stale)
                index += 1

    def test_replay_defaults_to_ok_off_trace(self):
        injector = FaultInjector(FaultSpec(failure_probability=1.0))
        injector.decide(0, 1)
        replay = injector.trace.replay()
        assert not replay.decide(0, 1).ok
        assert replay.decide(99, 99).ok

    def test_strict_replay_raises_off_trace(self):
        injector = FaultInjector(FaultSpec(failure_probability=1.0))
        injector.decide(0, 1)
        replay = injector.trace.replay(strict=True)
        assert not replay.decide(0, 1).ok
        with pytest.raises(FaultReplayError) as err:
            replay.decide(resource_id=7, chronon=3, attempt=2)
        assert err.value.resource_id == 7
        assert err.value.chronon == 3
        assert err.value.attempt == 2
        assert err.value.trace_length == 1
        message = str(err.value)
        assert "chronon=3" in message
        assert "resource=7" in message
        assert "attempt=2" in message
        assert "1-record trace" in message

    def test_strict_replay_is_a_fault_error(self):
        # Callers catching the package's base error keep working.
        assert issubclass(FaultReplayError, FaultError)

    def test_faults_only_filters_ok_records(self):
        spec = FaultSpec(per_resource={0: 1.0})
        injector = FaultInjector(spec)
        injector.decide(0, 1)
        injector.decide(1, 1)
        interesting = injector.trace.faults_only()
        assert [record.resource_id for record in interesting] == [0]
