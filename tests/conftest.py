"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)


@pytest.fixture
def epoch() -> Epoch:
    """A 20-chronon epoch."""
    return Epoch(20)


@pytest.fixture
def unit_budget() -> BudgetVector:
    """One probe per chronon."""
    return BudgetVector(1)


@pytest.fixture
def arbitrage_profiles() -> ProfileSet:
    """The quickstart scenario: one complex profile + one simple profile.

    Profile 0 ("arbitrage") has two 2-EI t-intervals pairing resources 0
    and 1 with overlapping windows; profile 1 ("feed") has three rank-1
    t-intervals on resource 2.
    """
    arbitrage = Profile([
        TInterval([ExecutionInterval(0, 2, 5),
                   ExecutionInterval(1, 3, 6)]),
        TInterval([ExecutionInterval(0, 10, 13),
                   ExecutionInterval(1, 11, 14)]),
    ], name="arbitrage")
    feed = Profile([
        TInterval([ExecutionInterval(2, 1, 4)]),
        TInterval([ExecutionInterval(2, 7, 10)]),
        TInterval([ExecutionInterval(2, 14, 17)]),
    ], name="feed")
    return ProfileSet([arbitrage, feed])


@pytest.fixture
def unit_width_profiles() -> ProfileSet:
    """A small P^[1] set: every EI spans exactly one chronon."""
    p0 = Profile([
        TInterval([ExecutionInterval(0, 2, 2),
                   ExecutionInterval(1, 4, 4)]),
        TInterval([ExecutionInterval(0, 6, 6)]),
    ])
    p1 = Profile([
        TInterval([ExecutionInterval(1, 2, 2)]),
        TInterval([ExecutionInterval(2, 4, 4),
                   ExecutionInterval(0, 8, 8)]),
    ])
    return ProfileSet([p0, p1])
