"""Tests for the three-stage profile generator."""

import pytest

from repro.core import Epoch, WorkloadError
from repro.traces import PoissonUpdateModel
from repro.workloads import (
    GeneratorConfig,
    OverwriteRestriction,
    ProfileGenerator,
    WindowRestriction,
)


@pytest.fixture
def epoch() -> Epoch:
    return Epoch(200)


@pytest.fixture
def trace(epoch):
    return PoissonUpdateModel(10, seed=1).generate(range(20), epoch)


class TestGeneratorConfig:
    def test_defaults(self):
        config = GeneratorConfig(num_profiles=5, max_rank=3)
        assert config.alpha == 0.0
        assert config.window == 20

    def test_restriction_window(self):
        config = GeneratorConfig(num_profiles=1, max_rank=1, window=7)
        restriction = config.restriction()
        assert isinstance(restriction, WindowRestriction)
        assert restriction.window == 7

    def test_restriction_overwrite(self):
        config = GeneratorConfig(num_profiles=1, max_rank=1, window=None)
        assert isinstance(config.restriction(), OverwriteRestriction)

    def test_invalid_values_rejected(self):
        with pytest.raises(WorkloadError):
            GeneratorConfig(num_profiles=-1, max_rank=1)
        with pytest.raises(WorkloadError):
            GeneratorConfig(num_profiles=1, max_rank=0)
        with pytest.raises(WorkloadError):
            GeneratorConfig(num_profiles=1, max_rank=1, alpha=-1)
        with pytest.raises(WorkloadError):
            GeneratorConfig(num_profiles=1, max_rank=1, window=-1)


class TestGeneration:
    def test_profile_count(self, trace, epoch):
        config = GeneratorConfig(num_profiles=15, max_rank=3, seed=2)
        profiles = ProfileGenerator(config).generate(trace, epoch)
        assert len(profiles) == 15

    def test_rank_bounded(self, trace, epoch):
        config = GeneratorConfig(num_profiles=30, max_rank=3, seed=3)
        profiles = ProfileGenerator(config).generate(trace, epoch)
        assert profiles.rank <= 3

    def test_deterministic_given_seed(self, trace, epoch):
        config = GeneratorConfig(num_profiles=10, max_rank=2, seed=4)
        first = ProfileGenerator(config).generate(trace, epoch)
        second = ProfileGenerator(config).generate(trace, epoch)
        for p1, p2 in zip(first, second):
            assert [eta.eis for eta in p1] == [eta.eis for eta in p2]

    def test_zero_profiles(self, trace, epoch):
        config = GeneratorConfig(num_profiles=0, max_rank=1)
        profiles = ProfileGenerator(config).generate(trace, epoch)
        assert len(profiles) == 0

    def test_no_resources_rejected(self, epoch):
        empty_trace = PoissonUpdateModel(0).generate([], epoch)
        config = GeneratorConfig(num_profiles=2, max_rank=1)
        with pytest.raises(WorkloadError, match="no resources"):
            ProfileGenerator(config).generate(empty_trace, epoch)

    def test_beta_skews_toward_simple_profiles(self, trace, epoch):
        flat = GeneratorConfig(num_profiles=200, max_rank=4, beta=0.0,
                               seed=5)
        skew = GeneratorConfig(num_profiles=200, max_rank=4, beta=2.0,
                               seed=5)
        flat_ranks = [p.rank for p in
                      ProfileGenerator(flat).generate(trace, epoch)
                      if len(p) > 0]
        skew_ranks = [p.rank for p in
                      ProfileGenerator(skew).generate(trace, epoch)
                      if len(p) > 0]
        assert (sum(skew_ranks) / len(skew_ranks)
                < sum(flat_ranks) / len(flat_ranks))

    def test_alpha_concentrates_on_popular_resources(self, epoch):
        # Make resource popularity unambiguous: heavier update streams
        # for lower ids (the default popularity ordering).
        model = PoissonUpdateModel(
            5, seed=6,
            per_resource_intensity={0: 60, 1: 50, 2: 40})
        trace = model.generate(range(20), epoch)
        skew = GeneratorConfig(num_profiles=150, max_rank=1, alpha=2.5,
                               seed=7)
        profiles = ProfileGenerator(skew).generate(trace, epoch)
        top_hits = sum(1 for p in profiles
                       if p.resource_ids and p.resource_ids <= {0, 1, 2})
        assert top_hits > 100

    def test_explicit_resource_ordering(self, trace, epoch):
        config = GeneratorConfig(num_profiles=50, max_rank=1, alpha=3.0,
                                 seed=8)
        profiles = ProfileGenerator(config).generate(
            trace, epoch, resource_ids=[5, 6, 7])
        used = set()
        for profile in profiles:
            used |= profile.resource_ids
        assert used <= {5, 6, 7}

    def test_window_zero_yields_unit_width(self, trace, epoch):
        config = GeneratorConfig(num_profiles=10, max_rank=2, window=0,
                                 grouping="indexed", seed=9)
        profiles = ProfileGenerator(config).generate(trace, epoch)
        assert profiles.is_unit_width

    def test_rank_clamped_to_resource_count(self, epoch):
        model = PoissonUpdateModel(10, seed=10)
        trace = model.generate(range(2), epoch)
        config = GeneratorConfig(num_profiles=10, max_rank=5, seed=11)
        profiles = ProfileGenerator(config).generate(trace, epoch)
        assert profiles.rank <= 2
