"""Tests for the AuctionWatch and SingleResource profile templates."""

import pytest

from repro.core import Epoch, WorkloadError
from repro.traces import UpdateEvent, UpdateTrace
from repro.workloads import (
    AuctionWatchTemplate,
    SingleResourceTemplate,
    WindowRestriction,
)


@pytest.fixture
def trace() -> UpdateTrace:
    # Resource 0 updates at 2, 10; resource 1 at 3, 12; resource 2 at 30.
    return UpdateTrace(
        [UpdateEvent(2, 0), UpdateEvent(10, 0),
         UpdateEvent(3, 1), UpdateEvent(12, 1),
         UpdateEvent(30, 2)],
        Epoch(40))


class TestIndexedGrouping:
    def test_pairs_ith_updates(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5))
        profile = template.build_profile([0, 1], trace, Epoch(40))
        assert len(profile) == 2
        first = profile[0]
        assert {(ei.resource_id, ei.start) for ei in first} == {(0, 2),
                                                                (1, 3)}

    def test_rounds_limited_by_sparsest_resource(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5))
        profile = template.build_profile([0, 2], trace, Epoch(40))
        assert len(profile) == 1  # resource 2 has a single update

    def test_resource_without_updates_yields_empty_profile(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5))
        profile = template.build_profile([0, 3], trace, Epoch(40))
        assert len(profile) == 0

    def test_rank_equals_resource_count(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5))
        profile = template.build_profile([0, 1], trace, Epoch(40))
        assert profile.rank == 2


class TestOverlapGrouping:
    def test_pairs_overlapping_windows(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5),
                                        grouping="overlap")
        profile = template.build_profile([0, 1], trace, Epoch(40))
        # Anchor = sparsest stream (tie -> first): windows [2,7]&[3,8]
        # overlap, [10,15]&[12,17] overlap.
        assert len(profile) == 2
        for eta in profile:
            eis = list(eta)
            assert eis[0].overlaps(eis[1])

    def test_anchor_without_match_dropped(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5),
                                        grouping="overlap")
        # Resource 2's window [30,35] overlaps nothing on resource 0.
        profile = template.build_profile([2, 0], trace, Epoch(40))
        assert len(profile) == 0

    def test_unknown_grouping_rejected(self):
        with pytest.raises(WorkloadError, match="grouping"):
            AuctionWatchTemplate(WindowRestriction(5), grouping="magic")


class TestTemplateValidation:
    def test_empty_resource_list_rejected(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5))
        with pytest.raises(WorkloadError):
            template.build_profile([], trace, Epoch(40))

    def test_duplicate_resources_rejected(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5))
        with pytest.raises(WorkloadError, match="duplicate"):
            template.build_profile([0, 0], trace, Epoch(40))

    def test_default_name(self, trace):
        template = AuctionWatchTemplate(WindowRestriction(5))
        profile = template.build_profile([0, 1], trace, Epoch(40))
        assert profile.name == "AuctionWatch(2)"


class TestSingleResourceTemplate:
    def test_each_ei_its_own_tinterval(self, trace):
        template = SingleResourceTemplate(WindowRestriction(5))
        profile = template.build_profile([0, 1], trace, Epoch(40))
        assert len(profile) == 4
        assert profile.rank == 1

    def test_empty_resource_list_rejected(self, trace):
        template = SingleResourceTemplate(WindowRestriction(5))
        with pytest.raises(WorkloadError):
            template.build_profile([], trace, Epoch(40))

    def test_resource_without_updates_contributes_nothing(self, trace):
        template = SingleResourceTemplate(WindowRestriction(5))
        profile = template.build_profile([3], trace, Epoch(40))
        assert len(profile) == 0
