"""Tests for the overwrite and window(W) delivery restrictions."""

import pytest

from repro.core import Epoch
from repro.workloads import (
    OverwriteRestriction,
    WindowRestriction,
    derive_execution_intervals,
)


class TestOverwriteRestriction:
    def test_ei_runs_until_next_update(self):
        eis = OverwriteRestriction().execution_intervals(
            0, [3, 8, 15], Epoch(20))
        assert [(ei.start, ei.finish) for ei in eis] == [
            (3, 7), (8, 14), (15, 20)]

    def test_last_update_extends_to_epoch_end(self):
        eis = OverwriteRestriction().execution_intervals(0, [5], Epoch(9))
        assert [(ei.start, ei.finish) for ei in eis] == [(5, 9)]

    def test_back_to_back_updates_give_unit_eis(self):
        eis = OverwriteRestriction().execution_intervals(
            0, [4, 5], Epoch(10))
        assert (eis[0].start, eis[0].finish) == (4, 4)

    def test_unsorted_input_handled(self):
        eis = OverwriteRestriction().execution_intervals(
            0, [8, 3], Epoch(10))
        assert [(ei.start, ei.finish) for ei in eis] == [(3, 7), (8, 10)]

    def test_duplicate_updates_collapse(self):
        eis = OverwriteRestriction().execution_intervals(
            0, [3, 3, 8], Epoch(10))
        assert len(eis) == 2

    def test_no_updates_no_eis(self):
        assert OverwriteRestriction().execution_intervals(
            0, [], Epoch(10)) == []

    def test_resource_id_propagates(self):
        eis = OverwriteRestriction().execution_intervals(7, [1], Epoch(5))
        assert eis[0].resource_id == 7


class TestWindowRestriction:
    def test_window_width(self):
        eis = WindowRestriction(5).execution_intervals(0, [3], Epoch(20))
        assert [(ei.start, ei.finish) for ei in eis] == [(3, 8)]

    def test_window_clipped_at_epoch_end(self):
        eis = WindowRestriction(5).execution_intervals(0, [18], Epoch(20))
        assert [(ei.start, ei.finish) for ei in eis] == [(18, 20)]

    def test_zero_window_gives_unit_eis(self):
        eis = WindowRestriction(0).execution_intervals(
            0, [3, 9], Epoch(20))
        assert all(ei.is_unit for ei in eis)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            WindowRestriction(-1)

    def test_overlapping_windows_allowed(self):
        # Updates closer than W produce intra-resource overlap.
        eis = WindowRestriction(10).execution_intervals(
            0, [3, 6], Epoch(30))
        assert eis[0].overlaps(eis[1])


class TestDeriveHelper:
    def test_dispatches_to_restriction(self):
        eis = derive_execution_intervals(
            2, [4], Epoch(10), WindowRestriction(2))
        assert [(ei.resource_id, ei.start, ei.finish)
                for ei in eis] == [(2, 4, 6)]
