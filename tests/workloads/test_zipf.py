"""Tests for bounded Zipf sampling."""

import numpy as np
import pytest

from repro.workloads import BoundedZipf


class TestValidation:
    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            BoundedZipf(-0.1, 10)

    def test_empty_support_rejected(self):
        with pytest.raises(ValueError):
            BoundedZipf(1.0, 0)


class TestPmf:
    def test_uniform_when_theta_zero(self):
        dist = BoundedZipf(0.0, 4)
        assert all(dist.pmf(i) == pytest.approx(0.25) for i in range(1, 5))

    def test_pmf_sums_to_one(self):
        dist = BoundedZipf(1.37, 100)
        assert sum(dist.pmf(i) for i in range(1, 101)) == pytest.approx(1)

    def test_pmf_decreasing_for_positive_theta(self):
        dist = BoundedZipf(1.0, 10)
        values = [dist.pmf(i) for i in range(1, 11)]
        assert values == sorted(values, reverse=True)

    def test_pmf_zero_outside_support(self):
        dist = BoundedZipf(1.0, 10)
        assert dist.pmf(0) == 0.0
        assert dist.pmf(11) == 0.0

    def test_exact_ratio(self):
        dist = BoundedZipf(1.0, 2)
        # P(1)/P(2) = 2 for theta=1.
        assert dist.pmf(1) / dist.pmf(2) == pytest.approx(2.0)


class TestSampling:
    def test_samples_in_support(self):
        rng = np.random.default_rng(1)
        dist = BoundedZipf(1.5, 7, rng=rng)
        samples = dist.sample_many(1000)
        assert samples.min() >= 1
        assert samples.max() <= 7

    def test_skew_prefers_small_values(self):
        rng = np.random.default_rng(2)
        dist = BoundedZipf(2.0, 50, rng=rng)
        samples = dist.sample_many(5000)
        assert np.mean(samples == 1) > 0.5

    def test_uniform_sampling_flat(self):
        rng = np.random.default_rng(3)
        dist = BoundedZipf(0.0, 4, rng=rng)
        samples = dist.sample_many(8000)
        for value in range(1, 5):
            assert np.mean(samples == value) == pytest.approx(0.25,
                                                              abs=0.03)

    def test_single_sample(self):
        dist = BoundedZipf(1.0, 5, rng=np.random.default_rng(4))
        assert 1 <= dist.sample() <= 5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BoundedZipf(0.0, 3).sample_many(-1)


class TestSampleDistinct:
    def test_distinct_values(self):
        dist = BoundedZipf(1.0, 10, rng=np.random.default_rng(5))
        for _ in range(20):
            drawn = dist.sample_distinct(5)
            assert len(set(drawn)) == 5

    def test_full_support_draw(self):
        dist = BoundedZipf(1.0, 5, rng=np.random.default_rng(6))
        assert sorted(dist.sample_distinct(5)) == [1, 2, 3, 4, 5]

    def test_over_draw_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            BoundedZipf(1.0, 3).sample_distinct(4)

    def test_zero_draw(self):
        assert BoundedZipf(1.0, 3).sample_distinct(0) == []


class TestStreamEquivalence:
    """Batched draws consume the RNG stream exactly like scalar calls."""

    def test_batch_sample_matches_scalar_sequence(self):
        for theta in (0.0, 0.8, 1.37):
            scalar = BoundedZipf(theta, 40, rng=np.random.default_rng(7))
            batch = BoundedZipf(theta, 40, rng=np.random.default_rng(7))
            one_at_a_time = [scalar.sample() for _ in range(64)]
            batched = batch.sample(64)
            assert one_at_a_time == [int(value) for value in batched]

    def test_batch_sample_empty(self):
        assert BoundedZipf(1.0, 5).sample(0).size == 0

    def test_batch_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            BoundedZipf(1.0, 5).sample(-1)

    def test_sample_from_matches_sample(self):
        for theta in (0.0, 1.37):
            direct = BoundedZipf(theta, 25, rng=np.random.default_rng(8))
            replay = BoundedZipf(theta, 25, rng=np.random.default_rng(8))
            uniforms = np.random.default_rng(8).random(50)
            assert [direct.sample() for _ in range(50)] \
                == [replay.sample_from(u) for u in uniforms]

    def test_sample_distinct_from_replays_choice(self):
        """External-uniform replay equals Generator.choice exactly."""
        for theta in (0.0, 0.8, 1.37):
            for seed in range(10):
                for count in (1, 3, 7, 12):
                    reference = BoundedZipf(theta, 12,
                                            rng=np.random.default_rng(seed))
                    replay = BoundedZipf(theta, 12,
                                         rng=np.random.default_rng(seed))
                    expected = reference.sample_distinct(count)
                    got = replay.sample_distinct_from(count,
                                                      replay._rng.random)
                    assert expected == got
