"""Tests for the temporal-trigger PeriodicWatchTemplate."""

import pytest

from repro.core import Epoch, WorkloadError
from repro.workloads import PeriodicWatchTemplate


class TestConstruction:
    def test_invalid_period(self):
        with pytest.raises(WorkloadError):
            PeriodicWatchTemplate(0)

    def test_invalid_width(self):
        with pytest.raises(WorkloadError):
            PeriodicWatchTemplate(5, width=-1)

    def test_invalid_phase(self):
        with pytest.raises(WorkloadError):
            PeriodicWatchTemplate(5, phase=-1)


class TestRounds:
    def test_rounds_every_period(self):
        template = PeriodicWatchTemplate(10, width=2)
        profile = template.build_profile([0, 1], None, Epoch(35))
        starts = [eta.earliest_start for eta in profile]
        assert starts == [1, 11, 21, 31]

    def test_window_width(self):
        template = PeriodicWatchTemplate(10, width=3)
        profile = template.build_profile([0], None, Epoch(30))
        first = profile[0][0]
        assert (first.start, first.finish) == (1, 4)

    def test_window_clipped_at_epoch_end(self):
        template = PeriodicWatchTemplate(10, width=5)
        profile = template.build_profile([0], None, Epoch(32))
        last = profile[len(profile) - 1][0]
        assert last.finish == 32

    def test_phase_shifts_rounds(self):
        template = PeriodicWatchTemplate(10, phase=4)
        profile = template.build_profile([0], None, Epoch(30))
        assert [eta.earliest_start for eta in profile] == [5, 15, 25]

    def test_one_ei_per_resource_per_round(self):
        template = PeriodicWatchTemplate(10, width=2)
        profile = template.build_profile([3, 5, 7], None, Epoch(20))
        for eta in profile:
            assert eta.resource_ids == frozenset({3, 5, 7})
            assert eta.size == 3

    def test_rank_is_resource_count(self):
        template = PeriodicWatchTemplate(10)
        profile = template.build_profile([0, 1], None, Epoch(20))
        assert profile.rank == 2

    def test_trace_is_ignored(self):
        from repro.traces import PoissonUpdateModel
        epoch = Epoch(30)
        trace = PoissonUpdateModel(10, seed=1).generate([0], epoch)
        with_trace = PeriodicWatchTemplate(10).build_profile(
            [0], trace, epoch)
        without = PeriodicWatchTemplate(10).build_profile(
            [0], None, epoch)
        assert [eta.eis for eta in with_trace] == \
            [eta.eis for eta in without]


class TestValidation:
    def test_empty_resources_rejected(self):
        with pytest.raises(WorkloadError):
            PeriodicWatchTemplate(5).build_profile([], None, Epoch(10))

    def test_duplicate_resources_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            PeriodicWatchTemplate(5).build_profile([1, 1], None,
                                                   Epoch(10))


class TestDslIntegration:
    def test_every_clause_builds_periodic_profile(self):
        from repro.dsl import compile_text
        from repro.traces import UpdateTrace

        epoch = Epoch(40)
        trace = UpdateTrace([], epoch)
        compiled = compile_text(
            "profile clock { watch 0, 1 every 10 within 2; }",
            trace, epoch)
        profile = compiled.profiles[0]
        assert [eta.earliest_start for eta in profile] == [1, 11, 21, 31]
        assert profile.rank == 2

    def test_every_requires_window(self):
        from repro.dsl import DslSyntaxError, parse
        with pytest.raises(DslSyntaxError, match="within"):
            parse("profile p { watch 0 every 10 until overwrite; }")

    def test_every_on_subscribe_rejected(self):
        from repro.dsl import DslSyntaxError, parse
        with pytest.raises(DslSyntaxError, match="watch"):
            parse("profile p { subscribe 0 every 10 within 2; }")

    def test_zero_period_rejected(self):
        from repro.dsl import DslSyntaxError, parse
        with pytest.raises(DslSyntaxError, match="period"):
            parse("profile p { watch 0 every 0 within 2; }")

    def test_printer_round_trip(self):
        from repro.dsl import format_document, parse
        text = "profile p {\n    watch 0, 1 every 10 within 2;\n}\n"
        assert format_document(parse(text)) == text
