"""Tests for predicted update traces and the knowledge-gap evaluation."""

import pytest

from repro.core import BudgetVector, Epoch, ModelError
from repro.forecast import (
    AdaptiveEstimator,
    ForecastUpdateModel,
    PeriodicityEstimator,
    PoissonRateEstimator,
    evaluate_knowledge_gap,
)
from repro.online import MRSFPolicy
from repro.traces import PeriodicUpdateModel, PoissonUpdateModel
from repro.workloads import GeneratorConfig


@pytest.fixture(scope="module")
def epoch() -> Epoch:
    return Epoch(200)


@pytest.fixture(scope="module")
def periodic_trace(epoch):
    return PeriodicUpdateModel(20).generate(range(8), epoch)


class TestForecastUpdateModel:
    def test_predictions_only_after_train_end(self, periodic_trace,
                                              epoch):
        model = ForecastUpdateModel(periodic_trace,
                                    PeriodicityEstimator(), train_end=100)
        predicted = model.generate(range(8), epoch)
        assert all(event.chronon > 100 for event in predicted)

    def test_periodic_predictions_exact(self, periodic_trace, epoch):
        model = ForecastUpdateModel(periodic_trace,
                                    PeriodicityEstimator(), train_end=100)
        predicted = model.generate([0], epoch)
        actual = model.actual_window(epoch)
        assert predicted.update_chronons(0) == actual.update_chronons(0)

    def test_predicted_payload_marker(self, periodic_trace, epoch):
        model = ForecastUpdateModel(periodic_trace,
                                    PoissonRateEstimator(), train_end=100)
        predicted = model.generate(range(8), epoch)
        assert all(event.payload == "predicted" for event in predicted)

    def test_actual_window_excludes_training(self, periodic_trace,
                                             epoch):
        model = ForecastUpdateModel(periodic_trace,
                                    PoissonRateEstimator(), train_end=100)
        actual = model.actual_window(epoch)
        assert all(event.chronon > 100 for event in actual)

    def test_invalid_train_end_rejected(self, periodic_trace):
        with pytest.raises(ModelError, match="train_end"):
            ForecastUpdateModel(periodic_trace, PoissonRateEstimator(),
                                train_end=0)
        with pytest.raises(ModelError, match="evaluation window"):
            ForecastUpdateModel(periodic_trace, PoissonRateEstimator(),
                                train_end=200)

    def test_fit_for_exposes_fits(self, periodic_trace):
        model = ForecastUpdateModel(periodic_trace,
                                    PeriodicityEstimator(), train_end=100)
        fit = model.fit_for(0)
        assert fit is not None and fit.model == "periodic"
        assert model.fit_for(99) is None


class TestKnowledgeGap:
    @pytest.fixture(scope="class")
    def config(self):
        return GeneratorConfig(num_profiles=25, max_rank=2, window=6,
                               grouping="indexed", seed=9)

    def test_periodic_trace_no_degradation(self, config):
        epoch = Epoch(300)
        trace = PeriodicUpdateModel(
            20, phases={r: (3 * r) % 20 for r in range(12)}
        ).generate(range(12), epoch)
        result = evaluate_knowledge_gap(
            trace, PeriodicityEstimator(), train_end=150,
            generator_config=config, epoch=epoch,
            budget=BudgetVector(1), policy=MRSFPolicy())
        assert result.degradation == pytest.approx(0.0, abs=0.02)

    def test_poisson_trace_degrades(self, config):
        epoch = Epoch(300)
        trace = PoissonUpdateModel(15, seed=4).generate(range(12), epoch)
        result = evaluate_knowledge_gap(
            trace, PoissonRateEstimator(), train_end=150,
            generator_config=config, epoch=epoch,
            budget=BudgetVector(1), policy=MRSFPolicy())
        assert result.gc_predicted < result.gc_perfect
        assert 0.0 < result.degradation <= 1.0

    def test_adaptive_matches_periodic_on_clockwork(self, config):
        epoch = Epoch(300)
        trace = PeriodicUpdateModel(
            25, phases={r: r % 25 for r in range(10)}
        ).generate(range(10), epoch)
        adaptive = evaluate_knowledge_gap(
            trace, AdaptiveEstimator(), train_end=150,
            generator_config=config, epoch=epoch,
            budget=BudgetVector(1), policy=MRSFPolicy())
        periodic = evaluate_knowledge_gap(
            trace, PeriodicityEstimator(), train_end=150,
            generator_config=config, epoch=epoch,
            budget=BudgetVector(1), policy=MRSFPolicy())
        assert adaptive.gc_predicted == pytest.approx(
            periodic.gc_predicted, abs=0.05)

    def test_event_counts_reported(self, config):
        epoch = Epoch(300)
        trace = PoissonUpdateModel(10, seed=5).generate(range(10), epoch)
        result = evaluate_knowledge_gap(
            trace, PoissonRateEstimator(), train_end=150,
            generator_config=config, epoch=epoch,
            budget=BudgetVector(1), policy=MRSFPolicy())
        assert result.actual_events > 0
        assert result.predicted_events > 0

    def test_degradation_zero_when_perfect_is_zero(self):
        from repro.forecast.evaluation import KnowledgeGapResult
        result = KnowledgeGapResult(gc_perfect=0.0, gc_predicted=0.0,
                                    predicted_events=0, actual_events=0)
        assert result.degradation == 0.0
