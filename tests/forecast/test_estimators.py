"""Tests for update-behavior estimators."""

import pytest

from repro.core import Epoch, ModelError
from repro.forecast import (
    AdaptiveEstimator,
    PeriodicityEstimator,
    PoissonRateEstimator,
    fit_trace,
)
from repro.traces import PeriodicUpdateModel, UpdateEvent, UpdateTrace


class TestPoissonRateEstimator:
    def test_rate_is_mle(self):
        fit = PoissonRateEstimator().fit_resource(0, [10, 20, 30, 40],
                                                  train_end=100)
        # 4 updates over 100 chronons -> gap 25.
        assert fit.gap == pytest.approx(25.0)
        assert fit.model == "poisson"
        assert fit.last_update == 40

    def test_insufficient_history_silent(self):
        fit = PoissonRateEstimator(min_updates=2).fit_resource(
            0, [10], train_end=100)
        assert fit.model == "silent"
        assert fit.gap is None
        assert fit.predict(200) == []

    def test_ignores_post_training_events(self):
        fit = PoissonRateEstimator().fit_resource(
            0, [10, 20, 150], train_end=100)
        assert fit.last_update == 20
        assert fit.gap == pytest.approx(50.0)

    def test_invalid_train_end(self):
        with pytest.raises(ModelError):
            PoissonRateEstimator().fit_resource(0, [1], train_end=0)

    def test_invalid_min_updates(self):
        with pytest.raises(ModelError):
            PoissonRateEstimator(min_updates=0)


class TestPeriodicityEstimator:
    def test_median_gap(self):
        fit = PeriodicityEstimator().fit_resource(
            0, [10, 20, 30, 41], train_end=100)
        assert fit.gap == pytest.approx(10.0)
        assert fit.model == "periodic"

    def test_robust_to_outlier_gap(self):
        fit = PeriodicityEstimator().fit_resource(
            0, [10, 20, 30, 40, 90], train_end=100)
        assert fit.gap == pytest.approx(10.0)

    def test_insufficient_history(self):
        fit = PeriodicityEstimator().fit_resource(0, [10, 20],
                                                  train_end=100)
        assert fit.model == "silent"

    def test_invalid_min_updates(self):
        with pytest.raises(ModelError):
            PeriodicityEstimator(min_updates=1)


class TestAdaptiveEstimator:
    def test_clockwork_history_goes_periodic(self):
        fit = AdaptiveEstimator().fit_resource(
            0, [10, 20, 30, 40, 50], train_end=100)
        assert fit.model == "periodic"

    def test_bursty_history_goes_poisson(self):
        fit = AdaptiveEstimator().fit_resource(
            0, [5, 6, 40, 41, 90], train_end=100)
        assert fit.model == "poisson"

    def test_short_history_falls_back_to_poisson(self):
        fit = AdaptiveEstimator().fit_resource(0, [10, 50],
                                               train_end=100)
        assert fit.model == "poisson"

    def test_invalid_threshold(self):
        with pytest.raises(ModelError):
            AdaptiveEstimator(cv_threshold=0)


class TestPrediction:
    def test_predictions_follow_gap(self):
        fit = PoissonRateEstimator().fit_resource(0, [10, 20],
                                                  train_end=100)
        # gap = 50, last update 20 -> predictions 70, 120 (within 150).
        assert fit.predict(150) == [70, 120]

    def test_predictions_bounded_by_horizon(self):
        fit = PeriodicityEstimator().fit_resource(0, [10, 20, 30],
                                                  train_end=50)
        assert all(chronon <= 60 for chronon in fit.predict(60))

    def test_predictions_strictly_increasing(self):
        fit = PeriodicityEstimator().fit_resource(0, [1, 2, 3],
                                                  train_end=10)
        predictions = fit.predict(30)
        assert predictions == sorted(set(predictions))


class TestFitTrace:
    def test_fits_every_resource(self):
        epoch = Epoch(100)
        trace = PeriodicUpdateModel(10).generate([0, 1, 2], epoch)
        fits = fit_trace(PeriodicityEstimator(), trace, train_end=60)
        assert set(fits) == {0, 1, 2}
        assert all(fit.model == "periodic" for fit in fits.values())

    def test_silent_resource(self):
        trace = UpdateTrace([UpdateEvent(5, 0)], Epoch(50))
        fits = fit_trace(PoissonRateEstimator(), trace, train_end=40)
        assert fits[0].model == "silent"
