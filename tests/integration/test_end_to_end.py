"""End-to-end pipeline tests: trace -> profiles -> policies -> report."""

import pytest

from repro.core import BudgetVector, Epoch, evaluate_schedule
from repro.offline import LocalRatioApproximation, MILPSolver
from repro.online import make_policy, parse_policy_spec
from repro.simulation import run_online
from repro.traces import (
    AuctionTraceSynthesizer,
    FeedTraceSynthesizer,
    FPNUpdateModel,
    StockMarketSynthesizer,
    UpdateTrace,
)
from repro.workloads import (
    AuctionWatchTemplate,
    GeneratorConfig,
    ProfileGenerator,
    WindowRestriction,
)


class TestAuctionPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        epoch = Epoch(300)
        synthesizer = AuctionTraceSynthesizer(60, epoch, mean_bids=10.0,
                                              seed=5)
        trace = synthesizer.generate()
        generator = ProfileGenerator(GeneratorConfig(
            num_profiles=40, max_rank=3, alpha=1.0, window=15,
            grouping="overlap", seed=6))
        profiles = generator.generate(trace, epoch)
        return epoch, trace, profiles

    def test_profiles_generated(self, pipeline):
        _epoch, _trace, profiles = pipeline
        assert len(profiles) == 40
        assert profiles.rank <= 3

    def test_all_policy_variants_run(self, pipeline):
        epoch, _trace, profiles = pipeline
        budget = BudgetVector(2)
        for spec in ("S-EDF(P)", "S-EDF(NP)", "MRSF(P)", "MRSF(NP)",
                     "M-EDF(P)", "M-EDF(NP)"):
            policy, preemptive = parse_policy_spec(spec)
            result = run_online(profiles, epoch, budget, policy,
                                preemptive=preemptive)
            assert 0.0 <= result.gc <= 1.0
            assert result.schedule.respects_budget(budget, epoch)

    def test_offline_approximation_runs(self, pipeline):
        epoch, _trace, profiles = pipeline
        budget = BudgetVector(2)
        result = LocalRatioApproximation().solve(profiles, epoch, budget)
        assert result.schedule.respects_budget(budget, epoch)

    def test_csv_round_trip_preserves_results(self, pipeline, tmp_path):
        epoch, trace, _profiles = pipeline
        path = tmp_path / "auction.csv"
        trace.to_csv(path)
        reloaded = UpdateTrace.from_csv(path, epoch)
        generator = ProfileGenerator(GeneratorConfig(
            num_profiles=10, max_rank=2, window=10, seed=7))
        original_profiles = generator.generate(trace, epoch)
        reloaded_profiles = generator.generate(reloaded, epoch)
        budget = BudgetVector(1)
        first = run_online(original_profiles, epoch, budget,
                           make_policy("MRSF"))
        second = run_online(reloaded_profiles, epoch, budget,
                            make_policy("MRSF"))
        assert first.report.captured == second.report.captured


class TestFPNPipeline:
    def test_fpn_model_feeds_generator(self):
        epoch = Epoch(200)
        recorded = FeedTraceSynthesizer(20, epoch, seed=8).generate()
        model = FPNUpdateModel(recorded)
        replay = model.generate(range(20), epoch)
        generator = ProfileGenerator(GeneratorConfig(
            num_profiles=15, max_rank=2, window=10, seed=9))
        profiles = generator.generate(replay, epoch)
        result = run_online(profiles, epoch, BudgetVector(1),
                            make_policy("M-EDF"))
        assert result.report.captured + result.expired == \
            profiles.total_tintervals


class TestArbitragePipeline:
    def test_overlap_grouping_produces_overlapping_pairs(self):
        epoch = Epoch(250)
        synthesizer = StockMarketSynthesizer(2, epoch,
                                             updates_per_market=30,
                                             seed=10)
        trace = synthesizer.generate()
        template = AuctionWatchTemplate(WindowRestriction(8),
                                        grouping="overlap")
        profile = template.build_profile([0, 1], trace, epoch)
        for eta in profile:
            eis = list(eta)
            assert eis[0].overlaps(eis[1])


class TestOnlineVsOffline:
    def test_online_bounded_by_optimum_on_small_instance(self):
        epoch = Epoch(60)
        synthesizer = AuctionTraceSynthesizer(8, epoch, mean_bids=4.0,
                                              seed=11)
        trace = synthesizer.generate()
        generator = ProfileGenerator(GeneratorConfig(
            num_profiles=6, max_rank=2, window=5, seed=12))
        profiles = generator.generate(trace, epoch)
        budget = BudgetVector(1)
        optimum = MILPSolver().solve(profiles, epoch, budget)
        for name in ("S-EDF", "MRSF", "M-EDF"):
            online = run_online(profiles, epoch, budget,
                                make_policy(name))
            assert online.report.captured <= optimum.report.captured

    def test_reports_consistent_across_paths(self):
        epoch = Epoch(80)
        synthesizer = AuctionTraceSynthesizer(10, epoch, mean_bids=5.0,
                                              seed=13)
        trace = synthesizer.generate()
        generator = ProfileGenerator(GeneratorConfig(
            num_profiles=8, max_rank=2, window=6, seed=14))
        profiles = generator.generate(trace, epoch)
        result = run_online(profiles, epoch, BudgetVector(1),
                            make_policy("MRSF"))
        rescored = evaluate_schedule(profiles, result.schedule)
        assert rescored.captured == result.report.captured
