"""Every example script must run to completion under a clean interpreter.

The examples are part of the public deliverable; breaking one should fail
CI, not a user.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS,
                         ids=lambda path: path.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {script.stem for script in EXAMPLE_SCRIPTS}
    assert {"quickstart", "arbitrage", "auction_watch",
            "feed_monitor"} <= names


def test_examples_do_not_leak_sys_path():
    before = list(sys.path)
    for script in EXAMPLE_SCRIPTS:
        runpy.run_path(str(script), run_name="not_main")
    assert sys.path == before
