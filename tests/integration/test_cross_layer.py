"""Cross-layer integration: DSL -> JSON -> runtime -> quotas in one flow."""

import pytest

from repro.core import BudgetVector, Epoch, validate_instance
from repro.dsl import compile_text, format_document, parse
from repro.extensions import run_with_quotas
from repro.io import load_profiles, save_profiles
from repro.online import make_policy
from repro.simulation import run_online
from repro.traces import PoissonUpdateModel

SPEC = """
profile pair {
    watch 0, 1 overlap within 8;
}
profile digest {
    watch 2, 3, 4 within 10 quota 2;
}
profile inbox {
    subscribe 5, 6 until overwrite;
}
"""


@pytest.fixture(scope="module")
def world():
    epoch = Epoch(200)
    trace = PoissonUpdateModel(10, seed=31).generate(range(8), epoch)
    compiled = compile_text(SPEC, trace, epoch)
    return epoch, trace, compiled


class TestDslToSimulation:
    def test_compiled_profiles_validate_clean(self, world):
        epoch, _trace, compiled = world
        report = validate_instance(compiled.profiles, epoch,
                                   BudgetVector(1))
        assert report.ok, [str(d) for d in report.errors()]

    def test_quota_run_uses_dsl_quotas(self, world):
        epoch, _trace, compiled = world
        plain = run_online(compiled.profiles, epoch, BudgetVector(1),
                           make_policy("MRSF"))
        relaxed = run_with_quotas(compiled.profiles, epoch,
                                  BudgetVector(1), make_policy("MRSF"),
                                  compiled.quotas)
        assert relaxed.report.captured >= plain.report.captured

    def test_round_trip_through_json(self, world, tmp_path):
        epoch, _trace, compiled = world
        path = tmp_path / "profiles.json"
        save_profiles(compiled.profiles, path)
        reloaded = load_profiles(path)
        first = run_online(compiled.profiles, epoch, BudgetVector(1),
                           make_policy("M-EDF"))
        second = run_online(reloaded, epoch, BudgetVector(1),
                            make_policy("M-EDF"))
        assert first.report.captured == second.report.captured
        assert list(first.schedule.probes()) == \
            list(second.schedule.probes())

    def test_canonical_form_compiles_identically(self, world):
        epoch, trace, compiled = world
        canonical = format_document(parse(SPEC))
        recompiled = compile_text(canonical, trace, epoch)
        assert recompiled.profiles.total_tintervals == \
            compiled.profiles.total_tintervals
        first = run_online(compiled.profiles, epoch, BudgetVector(1),
                           make_policy("MRSF"))
        second = run_online(recompiled.profiles, epoch, BudgetVector(1),
                            make_policy("MRSF"))
        assert first.report.captured == second.report.captured


class TestCliFigurePair:
    def test_fig7_smoke_via_cli_with_output(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["fig7", "--scale", "smoke",
                     "--output", str(tmp_path)]) == 0
        names = {path.name for path in tmp_path.iterdir()}
        assert any("panel1" in name for name in names)
        assert any("panel2" in name for name in names)
        assert "Figure 7(1)" in capsys.readouterr().out
