"""Workload-scale checks of the paper's propositions (Section 4).

These complement the hypothesis-based properties: they run on realistic
generated workloads (the regime the paper's propositions are exercised in)
rather than adversarial micro-instances.
"""

import pytest

from repro.core import BudgetVector
from repro.experiments import ExperimentConfig, make_instance
from repro.offline import MILPSolver
from repro.online import MEDFPolicy, MRSFPolicy
from repro.simulation import run_online


@pytest.fixture(scope="module")
def unit_width_workloads():
    """Three independent P^[1] workload instances (w = 0)."""
    config = ExperimentConfig(
        epoch_length=200, num_resources=40, num_profiles=60,
        intensity=10.0, window=0, grouping="indexed", repetitions=1,
        seed=77)
    instances = []
    for repetition in range(3):
        _trace, profiles = make_instance(config, repetition)
        instances.append((profiles, config))
    return instances


class TestProposition5:
    """M-EDF is (near-)equivalent to MRSF on P^[1] workloads."""

    def test_outcomes_nearly_identical(self, unit_width_workloads):
        for profiles, config in unit_width_workloads:
            budget = config.budget_vector
            mrsf = run_online(profiles, config.epoch, budget,
                              MRSFPolicy())
            medf = run_online(profiles, config.epoch, budget,
                              MEDFPolicy())
            total = profiles.total_tintervals
            gap = abs(mrsf.report.captured - medf.report.captured)
            assert gap <= max(2, 0.01 * total), (
                f"MRSF={mrsf.report.captured} "
                f"M-EDF={medf.report.captured} of {total}"
            )

    def test_instances_are_unit_width(self, unit_width_workloads):
        for profiles, _config in unit_width_workloads:
            assert profiles.is_unit_width


class TestProposition4:
    """MRSF is k-competitive without intra-resource overlap.

    The workload generator rarely produces fully overlap-free instances,
    so the bound is checked against instances constructed to avoid
    overlap: w = 0 with the indexed grouping and sparse updates.
    """

    def test_k_competitiveness_on_disjoint_resource_partitions(self):
        # Overlap-free by construction: each profile owns a disjoint
        # slice of the resource universe, so no two EIs ever share a
        # resource (let alone overlap on one).
        from repro.traces import PoissonUpdateModel
        from repro.workloads import AuctionWatchTemplate, WindowRestriction
        from repro.core import Epoch, ProfileSet

        epoch = Epoch(120)
        trace = PoissonUpdateModel(5.0, seed=31).generate(range(30),
                                                          epoch)
        template = AuctionWatchTemplate(WindowRestriction(0),
                                        grouping="indexed")
        members = []
        for index in range(10):
            chunk = [3 * index, 3 * index + 1, 3 * index + 2]
            members.append(template.build_profile(chunk, trace, epoch))
        profiles = ProfileSet(members)
        assert not profiles.has_intra_resource_overlap()

        rank = max(1, profiles.rank)
        budget = BudgetVector(1)
        online = run_online(profiles, epoch, budget, MRSFPolicy())
        optimum = MILPSolver().solve(profiles, epoch, budget)
        assert online.report.captured >= \
            optimum.report.captured / rank - 1e-9
