"""Tests for quota (k-of-n) t-intervals (paper §6 extension)."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    Schedule,
    TInterval,
)
from repro.extensions import (
    QuotaMap,
    QuotaMRSFPolicy,
    QuotaTIntervalState,
    quota_completeness,
    run_with_quotas,
)
from repro.online import MRSFPolicy
from repro.simulation import run_online


def _eta(*specs: tuple[int, int, int], profile_id=0, tinterval_id=0
         ) -> TInterval:
    return TInterval([ExecutionInterval(r, s, f) for r, s, f in specs],
                     tinterval_id=tinterval_id, profile_id=profile_id)


class TestQuotaMap:
    def test_default_requires_all(self):
        eta = _eta((0, 1, 2), (1, 1, 2))
        assert QuotaMap.all_required().quota_for(eta) == 2

    def test_explicit_quota(self):
        eta = _eta((0, 1, 2), (1, 1, 2))
        quotas = QuotaMap({(0, 0): 1})
        assert quotas.quota_for(eta) == 1

    def test_quota_clamped_to_size(self):
        eta = _eta((0, 1, 2))
        quotas = QuotaMap({(0, 0): 5})
        assert quotas.quota_for(eta) == 1

    def test_any_of(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 2),
                       ExecutionInterval(1, 1, 2)])])])
        quotas = QuotaMap.any_of(profiles)
        assert quotas.quota_for(profiles.tinterval(0, 0)) == 1

    def test_invalid_quota_rejected(self):
        with pytest.raises(ValueError):
            QuotaMap({(0, 0): 0})


class TestQuotaState:
    def test_complete_at_quota(self):
        state = QuotaTIntervalState(_eta((0, 1, 5), (1, 1, 5), (2, 1, 5)),
                                    profile_rank=3, quota=2)
        state.mark_captured(0)
        assert not state.is_complete
        state.mark_captured(2)
        assert state.is_complete

    def test_expiry_when_quota_unreachable(self):
        state = QuotaTIntervalState(_eta((0, 1, 3), (1, 1, 4), (2, 1, 9)),
                                    profile_rank=3, quota=2)
        # At chronon 5 two EIs have expired uncaptured; only one left.
        assert state.is_expired(5)

    def test_no_expiry_while_quota_reachable(self):
        state = QuotaTIntervalState(_eta((0, 1, 3), (1, 1, 9), (2, 1, 9)),
                                    profile_rank=3, quota=2)
        assert not state.is_expired(5)

    def test_residual_counts_to_quota(self):
        state = QuotaTIntervalState(_eta((0, 1, 5), (1, 1, 5), (2, 1, 5)),
                                    profile_rank=3, quota=2)
        assert state.residual == 2
        state.mark_captured(0)
        assert state.residual == 1

    def test_invalid_quota_rejected(self):
        with pytest.raises(ValueError):
            QuotaTIntervalState(_eta((0, 1, 2)), 1, quota=0)


class TestQuotaCompleteness:
    def test_counts_quota_satisfied(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 3),
                       ExecutionInterval(1, 5, 7)])])])
        schedule = Schedule([(0, 2)])
        all_required = QuotaMap.all_required()
        any_of = QuotaMap.any_of(profiles)
        assert quota_completeness(profiles, schedule, all_required) == 0
        assert quota_completeness(profiles, schedule, any_of) == 1

    def test_empty_set_vacuous(self):
        assert quota_completeness(ProfileSet(), Schedule(),
                                  QuotaMap.all_required()) == 1.0


class TestRunWithQuotas:
    @pytest.fixture
    def contended(self) -> ProfileSet:
        # A 2-EI t-interval whose EIs collide with two singletons under
        # budget 1: all-or-nothing cannot win everything, 1-of-2 can.
        complex_profile = Profile([
            TInterval([ExecutionInterval(0, 2, 2),
                       ExecutionInterval(1, 4, 4)])])
        rival = Profile([TInterval([ExecutionInterval(2, 2, 2)]),
                         TInterval([ExecutionInterval(3, 4, 4)])])
        return ProfileSet([complex_profile, rival])

    def test_quota_one_easier_than_all(self, contended):
        epoch = Epoch(6)
        budget = BudgetVector(1)
        strict = run_online(contended, epoch, budget, MRSFPolicy())
        relaxed = run_with_quotas(contended, epoch, budget,
                                  QuotaMRSFPolicy(),
                                  QuotaMap.any_of(contended))
        assert relaxed.report.captured >= strict.report.captured

    def test_all_required_matches_plain_semantics(self, contended):
        epoch = Epoch(6)
        budget = BudgetVector(1)
        plain = run_online(contended, epoch, budget, MRSFPolicy())
        quota_run = run_with_quotas(contended, epoch, budget,
                                    MRSFPolicy(),
                                    QuotaMap.all_required())
        assert quota_run.report.captured == plain.report.captured

    def test_quota_policy_scores_residual_to_quota(self):
        state = QuotaTIntervalState(_eta((0, 1, 5), (1, 1, 5), (2, 1, 5)),
                                    profile_rank=3, quota=1)
        from repro.online import Candidate
        candidate = Candidate(state, state.eta[0])
        assert QuotaMRSFPolicy().score(candidate, 1) == 1.0

    def test_quota_policy_falls_back_on_plain_state(self):
        from repro.online import Candidate, TIntervalState
        eta = _eta((0, 1, 5), (1, 1, 5))
        state = TIntervalState(eta, profile_rank=2)
        candidate = Candidate(state, eta[0])
        assert QuotaMRSFPolicy().score(candidate, 1) == 2.0
