"""Tests for utility-weighted completeness (paper §6 extension)."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    Schedule,
    TInterval,
)
from repro.extensions import (
    UtilityWeightedPolicy,
    UtilityWeights,
    run_weighted,
    weighted_completeness,
)
from repro.online import Candidate, SEDFPolicy, TIntervalState
from repro.simulation import run_online


def _profiles() -> ProfileSet:
    p0 = Profile([TInterval([ExecutionInterval(0, 1, 3)]),
                  TInterval([ExecutionInterval(0, 5, 7)])])
    p1 = Profile([TInterval([ExecutionInterval(1, 1, 3)])])
    return ProfileSet([p0, p1])


class TestUtilityWeights:
    def test_default_is_one(self):
        weights = UtilityWeights.uniform()
        assert weights.for_profile(0) == 1.0
        assert weights.for_tinterval(0, 0) == 1.0

    def test_profile_weight_inherited(self):
        weights = UtilityWeights(profile_weights={0: 3.0})
        assert weights.for_tinterval(0, 1) == 3.0
        assert weights.for_tinterval(1, 0) == 1.0

    def test_tinterval_weight_overrides_profile(self):
        weights = UtilityWeights(profile_weights={0: 3.0},
                                 tinterval_weights={(0, 1): 9.0})
        assert weights.for_tinterval(0, 0) == 3.0
        assert weights.for_tinterval(0, 1) == 9.0

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            UtilityWeights(profile_weights={0: 0.0})
        with pytest.raises(ValueError):
            UtilityWeights(tinterval_weights={(0, 0): -1.0})


class TestWeightedCompleteness:
    def test_uniform_equals_plain_gc(self):
        profiles = _profiles()
        schedule = Schedule([(0, 2), (1, 2)])
        weighted = weighted_completeness(profiles, schedule,
                                         UtilityWeights.uniform())
        assert weighted == pytest.approx(2 / 3)

    def test_weights_shift_the_ratio(self):
        profiles = _profiles()
        schedule = Schedule([(1, 2)])  # captures only p1's t-interval
        weights = UtilityWeights(profile_weights={1: 8.0})
        # gained 8 of total (1 + 1 + 8).
        assert weighted_completeness(profiles, schedule, weights) == \
            pytest.approx(0.8)

    def test_empty_set_vacuous(self):
        assert weighted_completeness(ProfileSet(), Schedule(),
                                     UtilityWeights.uniform()) == 1.0


class TestUtilityWeightedPolicy:
    def test_high_utility_scores_lower(self):
        weights = UtilityWeights(profile_weights={0: 10.0})
        policy = UtilityWeightedPolicy(SEDFPolicy(), weights)
        eta_hi = TInterval([ExecutionInterval(0, 1, 5)],
                           tinterval_id=0, profile_id=0)
        eta_lo = TInterval([ExecutionInterval(1, 1, 5)],
                           tinterval_id=0, profile_id=1)
        hi = Candidate(TIntervalState(eta_hi, 1), eta_hi[0])
        lo = Candidate(TIntervalState(eta_lo, 1), eta_lo[0])
        assert policy.score(hi, 1) < policy.score(lo, 1)

    def test_base_order_kept_within_equal_utilities(self):
        policy = UtilityWeightedPolicy(SEDFPolicy(),
                                       UtilityWeights.uniform())
        urgent = TInterval([ExecutionInterval(0, 1, 2)],
                           tinterval_id=0, profile_id=0)
        lax = TInterval([ExecutionInterval(1, 1, 9)],
                        tinterval_id=1, profile_id=0)
        c_urgent = Candidate(TIntervalState(urgent, 1), urgent[0])
        c_lax = Candidate(TIntervalState(lax, 1), lax[0])
        assert policy.score(c_urgent, 1) < policy.score(c_lax, 1)

    def test_name_composition(self):
        policy = UtilityWeightedPolicy(SEDFPolicy(),
                                       UtilityWeights.uniform())
        assert policy.name == "U[S-EDF]"


class TestRunWeighted:
    def test_uniform_weights_match_plain_run(self):
        profiles = _profiles()
        epoch = Epoch(10)
        budget = BudgetVector(1)
        weighted = run_weighted(profiles, epoch, budget, SEDFPolicy(),
                                UtilityWeights.uniform())
        assert weighted.weighted_gc == pytest.approx(weighted.result.gc)

    def test_high_utility_tinterval_prioritized_under_contention(self):
        # Two unit t-intervals collide at chronon 3; only one fits.
        p0 = Profile([TInterval([ExecutionInterval(0, 3, 3)])])
        p1 = Profile([TInterval([ExecutionInterval(1, 3, 3)])])
        profiles = ProfileSet([p0, p1])
        epoch = Epoch(5)
        budget = BudgetVector(1)

        # Without weights, the tie breaks to resource 0.
        plain = run_online(profiles, epoch, budget, SEDFPolicy())
        assert plain.schedule.probe_chronons(0) == [3]

        # Weighting p1 higher must flip the decision.
        weights = UtilityWeights(profile_weights={1: 5.0})
        weighted = run_weighted(profiles, epoch, budget, SEDFPolicy(),
                                weights)
        assert weighted.result.schedule.probe_chronons(1) == [3]
        assert weighted.weighted_gc == pytest.approx(5 / 6)
