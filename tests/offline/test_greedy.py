"""Tests for the greedy offline baseline."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)
from repro.offline import GreedyOfflineSolver, MILPSolver


def _profiles() -> ProfileSet:
    return ProfileSet([
        Profile([
            TInterval([ExecutionInterval(0, 1, 3)]),
            TInterval([ExecutionInterval(1, 2, 4),
                       ExecutionInterval(2, 3, 6)]),
        ]),
        Profile([TInterval([ExecutionInterval(0, 5, 8)])]),
    ])


class TestGreedySolver:
    def test_schedule_feasible(self):
        epoch = Epoch(10)
        budget = BudgetVector(1)
        result = GreedyOfflineSolver().solve(_profiles(), epoch, budget)
        assert result.schedule.respects_budget(budget, epoch)

    def test_accepted_all_captured(self):
        epoch = Epoch(10)
        result = GreedyOfflineSolver().solve(_profiles(), epoch,
                                             BudgetVector(1))
        captured = sum(1 for eta in _profiles().tintervals()
                       if result.schedule.captures_tinterval(eta))
        assert captured >= result.report.captured

    def test_never_beats_optimum(self):
        epoch = Epoch(10)
        budget = BudgetVector(1)
        profiles = _profiles()
        greedy = GreedyOfflineSolver().solve(profiles, epoch, budget)
        optimum = MILPSolver().solve(profiles, epoch, budget)
        assert greedy.report.captured <= optimum.report.captured

    def test_prefers_small_tintervals(self):
        # One fat t-interval conflicts with two singletons; greedy takes
        # the singletons first.
        profiles = ProfileSet([
            Profile([TInterval([ExecutionInterval(0, 1, 1),
                                ExecutionInterval(1, 2, 2)])]),
            Profile([TInterval([ExecutionInterval(2, 1, 1)])]),
            Profile([TInterval([ExecutionInterval(3, 2, 2)])]),
        ])
        result = GreedyOfflineSolver().solve(profiles, Epoch(5),
                                             BudgetVector(1))
        assert result.report.captured == 2
        assert result.report.per_rank[1] == (2, 2)

    def test_empty_profiles(self):
        result = GreedyOfflineSolver().solve(ProfileSet(), Epoch(5),
                                             BudgetVector(1))
        assert result.report.total == 0
        assert result.gc == 1.0

    def test_per_profile_breakdown(self):
        result = GreedyOfflineSolver().solve(_profiles(), Epoch(10),
                                             BudgetVector(1))
        assert sum(c for c, _t in result.report.per_profile.values()) \
            == result.report.captured

    def test_free_rider_gc_reported(self):
        result = GreedyOfflineSolver().solve(_profiles(), Epoch(10),
                                             BudgetVector(1))
        assert result.extras["gc_with_free_riders"] >= result.gc
