"""Tests for the MILP exact solver, including agreement with enumeration."""

import numpy as np
import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    SolverCapacityError,
    TInterval,
)
from repro.offline import EnumerationSolver, MILPSolver


def _random_instance(seed: int, num_resources: int = 4,
                     num_profiles: int = 3, horizon: int = 10
                     ) -> tuple[ProfileSet, Epoch]:
    rng = np.random.default_rng(seed)
    profiles = []
    for _ in range(num_profiles):
        etas = []
        for _ in range(int(rng.integers(1, 4))):
            eis = []
            for _ in range(int(rng.integers(1, 3))):
                start = int(rng.integers(1, horizon))
                finish = min(horizon, start + int(rng.integers(0, 3)))
                eis.append(ExecutionInterval(
                    int(rng.integers(0, num_resources)), start, finish))
            etas.append(TInterval(eis))
        profiles.append(Profile(etas))
    return ProfileSet(profiles), Epoch(horizon)


class TestAgreementWithEnumeration:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_optimum_budget_one(self, seed):
        profiles, epoch = _random_instance(seed)
        budget = BudgetVector(1)
        enum_result = EnumerationSolver().solve(profiles, epoch, budget)
        milp_result = MILPSolver().solve(profiles, epoch, budget)
        assert milp_result.report.captured == enum_result.report.captured

    @pytest.mark.parametrize("seed", range(3))
    def test_same_optimum_budget_two(self, seed):
        profiles, epoch = _random_instance(seed + 50)
        budget = BudgetVector(2)
        enum_result = EnumerationSolver().solve(profiles, epoch, budget)
        milp_result = MILPSolver().solve(profiles, epoch, budget)
        assert milp_result.report.captured == enum_result.report.captured


class TestSolverBehavior:
    def test_empty_profile_set(self):
        result = MILPSolver().solve(ProfileSet(), Epoch(5),
                                    BudgetVector(1))
        assert result.report.total == 0
        assert result.gc == 1.0

    def test_schedule_feasible(self):
        profiles, epoch = _random_instance(7)
        budget = BudgetVector(1)
        result = MILPSolver().solve(profiles, epoch, budget)
        assert result.schedule.respects_budget(budget, epoch)

    def test_proven_optimal_flag(self):
        profiles, epoch = _random_instance(8)
        result = MILPSolver().solve(profiles, epoch, BudgetVector(1))
        assert result.extras["proven_optimal"] == 1.0

    def test_ei_outside_epoch_is_uncapturable(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 2, 3)]),
            TInterval([ExecutionInterval(0, 50, 60)]),
        ])])
        result = MILPSolver().solve(profiles, Epoch(10), BudgetVector(1))
        assert result.report.captured == 1

    def test_variable_cap_enforced(self):
        profiles, epoch = _random_instance(9)
        with pytest.raises(SolverCapacityError, match="variables"):
            MILPSolver(max_variables=2).solve(profiles, epoch,
                                              BudgetVector(1))

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MILPSolver(max_variables=0)

    def test_objective_matches_report(self):
        profiles, epoch = _random_instance(10)
        result = MILPSolver().solve(profiles, epoch, BudgetVector(1))
        assert result.extras["milp_objective"] == pytest.approx(
            result.report.captured, abs=1e-6)

    def test_zero_budget(self):
        profiles, epoch = _random_instance(11)
        result = MILPSolver().solve(profiles, epoch, BudgetVector(0))
        assert result.report.captured == 0

    def test_time_limit_option_accepted(self):
        profiles, epoch = _random_instance(12)
        result = MILPSolver(time_limit=30.0).solve(profiles, epoch,
                                                   BudgetVector(1))
        # Small instance: the limit is not binding and the solve is
        # still proven optimal.
        assert result.extras["proven_optimal"] == 1.0


class TestUpperBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_bound_dominates_optimum(self, seed):
        profiles, epoch = _random_instance(seed + 20)
        budget = BudgetVector(1)
        solver = MILPSolver()
        bound = solver.upper_bound(profiles, epoch, budget)
        optimum = solver.solve(profiles, epoch, budget)
        assert bound >= optimum.report.captured - 1e-6

    def test_bound_at_most_total(self):
        profiles, epoch = _random_instance(30)
        bound = MILPSolver().upper_bound(profiles, epoch,
                                         BudgetVector(5))
        assert bound <= profiles.total_tintervals + 1e-6

    def test_empty_set_bound_zero(self):
        assert MILPSolver().upper_bound(ProfileSet(), Epoch(5),
                                        BudgetVector(1)) == 0.0

    def test_relaxation_flag_resets(self):
        profiles, epoch = _random_instance(31)
        solver = MILPSolver()
        solver.upper_bound(profiles, epoch, BudgetVector(1))
        # A subsequent exact solve must be integral again.
        result = solver.solve(profiles, epoch, BudgetVector(1))
        assert result.extras["milp_objective"] == pytest.approx(
            round(result.extras["milp_objective"]), abs=1e-6)
