"""Tests for the conflict-graph construction."""

import pytest

from repro.core import (
    BudgetVector,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)
from repro.offline import (
    demand_map,
    overlap_adjacency,
    overlap_graph,
    self_infeasible,
    unit_conflict_adjacency,
    unit_conflict_graph,
)


def _unit_profiles(*etas: list[tuple[int, int]]) -> ProfileSet:
    """Each eta spec is a list of (resource, chronon) unit EIs."""
    return ProfileSet([Profile([
        TInterval([ExecutionInterval(r, c, c) for r, c in eta])
        for eta in etas
    ])])


class TestDemandMap:
    def test_merges_same_resource_same_chronon(self):
        eta = TInterval([ExecutionInterval(0, 3, 3),
                         ExecutionInterval(0, 3, 3),
                         ExecutionInterval(1, 3, 3)])
        assert demand_map(eta) == {3: {0, 1}}

    def test_multiple_chronons(self):
        eta = TInterval([ExecutionInterval(0, 1, 1),
                         ExecutionInterval(1, 5, 5)])
        assert demand_map(eta) == {1: {0}, 5: {1}}


class TestSelfInfeasible:
    def test_needs_more_than_budget(self):
        eta = TInterval([ExecutionInterval(0, 3, 3),
                         ExecutionInterval(1, 3, 3)])
        assert self_infeasible(eta, BudgetVector(1))
        assert not self_infeasible(eta, BudgetVector(2))

    def test_non_unit_within_window_budget(self):
        # Two resources confined to [3, 4]: window capacity 2 suffices.
        eta = TInterval([ExecutionInterval(0, 3, 4),
                         ExecutionInterval(1, 3, 4)])
        assert not self_infeasible(eta, BudgetVector(1))

    def test_non_unit_pigeonhole_violation(self):
        # Three distinct resources forced into the 2-chronon window
        # [3, 4] under budget 1: only 2 probes exist there -> doomed.
        eta = TInterval([ExecutionInterval(0, 3, 4),
                         ExecutionInterval(1, 3, 4),
                         ExecutionInterval(2, 3, 4)])
        assert self_infeasible(eta, BudgetVector(1))
        assert not self_infeasible(eta, BudgetVector(2))

    def test_non_unit_pigeonhole_sub_window(self):
        # The violated window [2, 3] is a proper sub-span of the eta:
        # the wide EI on resource 3 is NOT confined there and must not
        # count, while the three EIs inside [2, 3] exceed its 2 probes.
        eta = TInterval([ExecutionInterval(0, 2, 3),
                         ExecutionInterval(1, 2, 3),
                         ExecutionInterval(2, 2, 3),
                         ExecutionInterval(3, 1, 9)])
        assert self_infeasible(eta, BudgetVector(1))

    def test_non_unit_rescuable_by_budget_override(self):
        # Same shape, but a budget burst inside the window rescues it.
        eta = TInterval([ExecutionInterval(0, 3, 4),
                         ExecutionInterval(1, 3, 4),
                         ExecutionInterval(2, 3, 4)])
        burst = BudgetVector(1, overrides={3: 2})
        assert not self_infeasible(eta, burst)

    def test_duplicate_resources_count_once(self):
        # Two EIs of one resource can share a probe; no violation.
        eta = TInterval([ExecutionInterval(0, 3, 4),
                         ExecutionInterval(0, 3, 4),
                         ExecutionInterval(1, 3, 4)])
        assert not self_infeasible(eta, BudgetVector(1))


class TestUnitConflictGraph:
    def test_requires_unit_width(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 3)])])])
        with pytest.raises(ValueError, match="P\\^\\[1\\]"):
            unit_conflict_graph(profiles, BudgetVector(1))

    def test_same_chronon_different_resources_conflict(self):
        profiles = _unit_profiles([(0, 3)], [(1, 3)])
        graph = unit_conflict_graph(profiles, BudgetVector(1))
        assert graph.has_edge((0, 0), (0, 1))

    def test_same_chronon_same_resource_no_conflict(self):
        profiles = _unit_profiles([(0, 3)], [(0, 3)])
        graph = unit_conflict_graph(profiles, BudgetVector(1))
        assert not graph.has_edge((0, 0), (0, 1))

    def test_different_chronons_no_conflict(self):
        profiles = _unit_profiles([(0, 3)], [(1, 5)])
        graph = unit_conflict_graph(profiles, BudgetVector(1))
        assert graph.number_of_edges() == 0

    def test_budget_two_relaxes_conflict(self):
        profiles = _unit_profiles([(0, 3)], [(1, 3)])
        graph = unit_conflict_graph(profiles, BudgetVector(2))
        assert graph.number_of_edges() == 0

    def test_budget_two_three_way_conflict(self):
        profiles = _unit_profiles([(0, 3), (1, 3)], [(2, 3)])
        graph = unit_conflict_graph(profiles, BudgetVector(2))
        # Together they need 3 resources at chronon 3 > budget 2.
        assert graph.has_edge((0, 0), (0, 1))

    def test_self_infeasible_excluded(self):
        profiles = _unit_profiles([(0, 3), (1, 3)], [(2, 5)])
        graph = unit_conflict_graph(profiles, BudgetVector(1))
        assert (0, 0) not in graph.nodes
        assert (0, 1) in graph.nodes


class TestOverlapGraph:
    def test_time_overlap_creates_edge(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 5)]),
            TInterval([ExecutionInterval(1, 4, 9)]),
        ])])
        graph = overlap_graph(profiles)
        assert graph.has_edge((0, 0), (0, 1))

    def test_disjoint_windows_no_edge(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 3)]),
            TInterval([ExecutionInterval(1, 5, 9)]),
        ])])
        graph = overlap_graph(profiles)
        assert not graph.has_edge((0, 0), (0, 1))

    def test_span_overlap_but_ei_disjoint_no_edge(self):
        # Spans overlap ([1,9] vs [4,5]) but actual EI windows don't.
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 2),
                       ExecutionInterval(1, 8, 9)]),
            TInterval([ExecutionInterval(2, 4, 5)]),
        ])])
        graph = overlap_graph(profiles)
        assert not graph.has_edge((0, 0), (0, 1))

    def test_nodes_carry_etas(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 2)])])])
        graph = overlap_graph(profiles)
        assert graph.nodes[(0, 0)]["eta"].size == 1


def _edge_set(adjacency):
    return {frozenset((left, right))
            for left, neighbors in adjacency.items()
            for right in neighbors}


class TestSweepAdjacencyEquivalence:
    """The fast builders must emit exactly the reference edge sets."""

    def test_unit_adjacency_matches_graph(self):
        profiles = _unit_profiles(
            [(0, 3), (1, 5)], [(1, 3)], [(0, 3)], [(2, 5)], [(0, 7)])
        for budget in (BudgetVector(1), BudgetVector(2),
                       BudgetVector(1, overrides={5: 3})):
            graph = unit_conflict_graph(profiles, budget)
            etas, adjacency = unit_conflict_adjacency(profiles, budget)
            assert set(adjacency) == set(graph.nodes)
            assert _edge_set(adjacency) == {
                frozenset(edge) for edge in graph.edges}
            assert all(etas[key] is graph.nodes[key]["eta"]
                       or etas[key] == graph.nodes[key]["eta"]
                       for key in etas)

    def test_unit_adjacency_requires_unit_width(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 3)])])])
        with pytest.raises(ValueError, match="P\\^\\[1\\]"):
            unit_conflict_adjacency(profiles, BudgetVector(1))

    def test_overlap_adjacency_matches_graph(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 2),
                       ExecutionInterval(1, 8, 9)]),
            TInterval([ExecutionInterval(2, 4, 5)]),
            TInterval([ExecutionInterval(0, 2, 4)]),
        ]), Profile([
            TInterval([ExecutionInterval(3, 5, 8)]),
            TInterval([ExecutionInterval(1, 9, 9)]),
        ])])
        graph = overlap_graph(profiles)
        _etas, adjacency = overlap_adjacency(profiles)
        assert set(adjacency) == set(graph.nodes)
        assert _edge_set(adjacency) == {
            frozenset(edge) for edge in graph.edges}

    def test_overlap_adjacency_touching_windows(self):
        # Windows meeting at exactly one chronon must be adjacent.
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 4)]),
            TInterval([ExecutionInterval(1, 4, 7)]),
        ])])
        _etas, adjacency = overlap_adjacency(profiles)
        assert (0, 1) in adjacency[(0, 0)]

    def test_overlap_adjacency_budget_filters_infeasible(self):
        infeasible = TInterval([ExecutionInterval(0, 3, 4),
                                ExecutionInterval(1, 3, 4),
                                ExecutionInterval(2, 3, 4)])
        fine = TInterval([ExecutionInterval(0, 1, 9)])
        profiles = ProfileSet([Profile([infeasible, fine])])
        _etas, unfiltered = overlap_adjacency(profiles)
        assert (0, 0) in unfiltered
        etas, filtered = overlap_adjacency(profiles, BudgetVector(1))
        assert (0, 0) not in filtered
        assert (0, 1) in filtered
