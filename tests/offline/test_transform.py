"""Tests for the P -> P^[1] unit-width expansion (Proposition 2)."""

import pytest

from repro.core import (
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    Schedule,
    SolverCapacityError,
    TInterval,
)
from repro.offline import expand_to_unit_width


def _profiles() -> ProfileSet:
    return ProfileSet([Profile([
        TInterval([ExecutionInterval(0, 1, 2),
                   ExecutionInterval(1, 4, 5)]),
        TInterval([ExecutionInterval(2, 3, 3)]),
    ])])


class TestExpansion:
    def test_alternative_count_is_product_of_widths(self):
        expansion = expand_to_unit_width(_profiles())
        # 2*2 alternatives for the first eta + 1 for the second.
        assert expansion.expanded.total_tintervals == 5

    def test_expansion_is_unit_width(self):
        expansion = expand_to_unit_width(_profiles())
        assert expansion.expanded.is_unit_width

    def test_alternatives_map_back(self):
        expansion = expand_to_unit_width(_profiles())
        owners = set(expansion.alternative_of.values())
        assert owners == {(0, 0), (0, 1)}
        assert len(expansion.alternatives_of((0, 0))) == 4
        assert len(expansion.alternatives_of((0, 1))) == 1

    def test_alternatives_cover_all_chronon_tuples(self):
        expansion = expand_to_unit_width(_profiles())
        tuples = set()
        for key in expansion.alternatives_of((0, 0)):
            eta = expansion.expanded.tinterval(*key)
            tuples.add(tuple(sorted((ei.resource_id, ei.start)
                                    for ei in eta)))
        assert tuples == {
            ((0, 1), (1, 4)), ((0, 1), (1, 5)),
            ((0, 2), (1, 4)), ((0, 2), (1, 5)),
        }

    def test_rank_preserved(self):
        expansion = expand_to_unit_width(_profiles())
        assert expansion.expanded.rank == 2

    def test_cap_on_total(self):
        with pytest.raises(SolverCapacityError):
            expand_to_unit_width(_profiles(), max_alternatives=3)

    def test_cap_on_single_tinterval(self):
        wide = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 1, 100),
                       ExecutionInterval(1, 1, 100)])])])
        with pytest.raises(SolverCapacityError):
            expand_to_unit_width(wide, max_alternatives=1000)


class TestCapturedOriginals:
    def test_capturing_one_alternative_captures_original(self):
        expansion = expand_to_unit_width(_profiles())
        schedule = Schedule([(0, 2), (1, 4)])
        assert (0, 0) in expansion.captured_originals(schedule)

    def test_partial_tuple_does_not_capture(self):
        expansion = expand_to_unit_width(_profiles())
        schedule = Schedule([(0, 2)])
        assert (0, 0) not in expansion.captured_originals(schedule)

    def test_original_evaluation_consistent_with_windows(self):
        # A schedule capturing the original windows always corresponds
        # to some alternative tuple, and vice versa.
        expansion = expand_to_unit_width(_profiles())
        schedule = Schedule([(0, 1), (1, 5), (2, 3)])
        captured = expansion.captured_originals(schedule)
        assert captured == {(0, 0), (0, 1)}
