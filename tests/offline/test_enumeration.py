"""Tests for the exact enumeration solver (Lemma 1)."""

import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    SolverCapacityError,
    TInterval,
)
from repro.offline import EnumerationSolver


def _profiles(*profiles: list[list[tuple[int, int, int]]]) -> ProfileSet:
    return ProfileSet([
        Profile([TInterval([ExecutionInterval(r, s, f)
                            for r, s, f in eta]) for eta in etas])
        for etas in profiles
    ])


class TestOptimality:
    def test_trivial_instance(self):
        profiles = _profiles([[(0, 1, 3)]])
        result = EnumerationSolver().solve(profiles, Epoch(5),
                                           BudgetVector(1))
        assert result.report.captured == 1

    def test_forced_choice(self):
        # Two unit t-intervals at the same chronon, different resources,
        # budget 1: optimum is exactly 1.
        profiles = _profiles([[(0, 2, 2)]], [[(1, 2, 2)]])
        result = EnumerationSolver().solve(profiles, Epoch(5),
                                           BudgetVector(1))
        assert result.report.captured == 1

    def test_spread_avoids_conflict(self):
        # Overlapping windows allow serving both with clever placement.
        profiles = _profiles([[(0, 1, 2)]], [[(1, 2, 3)]])
        result = EnumerationSolver().solve(profiles, Epoch(5),
                                           BudgetVector(1))
        assert result.report.captured == 2

    def test_multi_ei_all_or_nothing(self):
        # One 2-EI t-interval conflicting with two singletons; capturing
        # the two singletons beats the single complex t-interval.
        profiles = _profiles(
            [[(0, 1, 1), (1, 3, 3)]],
            [[(2, 1, 1)]],
            [[(3, 3, 3)]],
        )
        result = EnumerationSolver().solve(profiles, Epoch(5),
                                           BudgetVector(1))
        assert result.report.captured == 2

    def test_shared_probe_counts_for_all(self):
        # Same resource, same chronon, three profiles: one probe, 3 wins.
        profiles = _profiles([[(0, 2, 2)]], [[(0, 2, 2)]], [[(0, 2, 2)]])
        result = EnumerationSolver().solve(profiles, Epoch(3),
                                           BudgetVector(1))
        assert result.report.captured == 3
        assert result.probes_used <= 2

    def test_schedule_is_feasible_and_consistent(self):
        profiles = _profiles(
            [[(0, 1, 3), (1, 2, 4)], [(0, 5, 6)]],
            [[(1, 1, 2)], [(2, 3, 5)]],
        )
        epoch = Epoch(8)
        budget = BudgetVector(1)
        result = EnumerationSolver().solve(profiles, epoch, budget)
        assert result.schedule.respects_budget(budget, epoch)
        # The reconstructed schedule must achieve the DFS optimum.
        assert result.report.captured == result.extras["optimal_value"]


class TestCapacityGuards:
    def test_too_many_eis_rejected(self):
        profiles = _profiles(*[[[(i % 3, 1, 2)]] for i in range(129)])
        with pytest.raises(SolverCapacityError, match="128"):
            EnumerationSolver().solve(profiles, Epoch(5), BudgetVector(1))

    def test_past_machine_word_width_accepted(self):
        # 64+ EIs used to be rejected; arbitrary-precision masks carry
        # them fine. All 70 unit EIs share chronon 1 across 2 resources,
        # budget 2 -> everything captured with two probes.
        profiles = _profiles(*[[[(i % 2, 1, 1)]] for i in range(70)])
        result = EnumerationSolver().solve(profiles, Epoch(2),
                                           BudgetVector(2))
        assert result.report.captured == 70

    def test_node_limit_enforced(self):
        profiles = _profiles(
            *[[[(i, 1, 10)]] for i in range(10)]
        )
        with pytest.raises(SolverCapacityError, match="nodes"):
            EnumerationSolver(node_limit=3).solve(
                profiles, Epoch(10), BudgetVector(2))

    def test_guard_messages_carry_instance_dimensions(self):
        profiles = _profiles(*[[[(i % 3, 1, 2)]] for i in range(129)])
        with pytest.raises(SolverCapacityError,
                           match=r"n=129 .*K=5 .*C_max=1.*129 EIs"):
            EnumerationSolver().solve(profiles, Epoch(5), BudgetVector(1))
        small = _profiles(*[[[(i, 1, 10)]] for i in range(10)])
        with pytest.raises(SolverCapacityError,
                           match=r"3 nodes .*n=10 .*K=10 .*C_max=2"):
            EnumerationSolver(node_limit=3).solve(
                small, Epoch(10), BudgetVector(2))

    def test_invalid_node_limit(self):
        with pytest.raises(ValueError):
            EnumerationSolver(node_limit=0)


class TestBudgetVariants:
    def test_higher_budget_never_worse(self):
        profiles = _profiles(
            [[(0, 1, 2)], [(1, 1, 2)]],
            [[(2, 1, 2)], [(3, 2, 3)]],
        )
        low = EnumerationSolver().solve(profiles, Epoch(4),
                                        BudgetVector(1))
        high = EnumerationSolver().solve(profiles, Epoch(4),
                                         BudgetVector(2))
        assert high.report.captured >= low.report.captured

    def test_per_chronon_override(self):
        # Budget only at chronon 2 (burst of 2 probes).
        profiles = _profiles([[(0, 2, 2)]], [[(1, 2, 2)]])
        budget = BudgetVector(0, overrides={2: 2})
        result = EnumerationSolver().solve(profiles, Epoch(3), budget)
        assert result.report.captured == 2
