"""Tests for the Local-Ratio offline approximation."""

import numpy as np
import pytest

from repro.core import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    Profile,
    ProfileSet,
    TInterval,
)
from repro.offline import LocalRatioApproximation, MILPSolver


def _random_unit_instance(seed: int, num_resources: int = 4,
                          num_profiles: int = 4, horizon: int = 12
                          ) -> tuple[ProfileSet, Epoch]:
    rng = np.random.default_rng(seed)
    profiles = []
    for _ in range(num_profiles):
        etas = []
        for _ in range(int(rng.integers(1, 4))):
            count = int(rng.integers(1, 3))
            eis = [
                ExecutionInterval(int(rng.integers(0, num_resources)),
                                  c := int(rng.integers(1, horizon + 1)),
                                  c)
                for _ in range(count)
            ]
            etas.append(TInterval(eis))
        profiles.append(Profile(etas))
    return ProfileSet(profiles), Epoch(horizon)


def _random_general_instance(seed: int) -> tuple[ProfileSet, Epoch]:
    rng = np.random.default_rng(seed)
    horizon = 15
    profiles = []
    for _ in range(4):
        etas = []
        for _ in range(int(rng.integers(1, 4))):
            eis = []
            for _ in range(int(rng.integers(1, 3))):
                start = int(rng.integers(1, horizon))
                finish = min(horizon, start + int(rng.integers(0, 4)))
                eis.append(ExecutionInterval(int(rng.integers(0, 5)),
                                             start, finish))
            etas.append(TInterval(eis))
        profiles.append(Profile(etas))
    return ProfileSet(profiles), Epoch(horizon)


class TestFeasibilityAndBounds:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_exceeds_optimum_unit(self, seed):
        profiles, epoch = _random_unit_instance(seed)
        budget = BudgetVector(1)
        approx = LocalRatioApproximation().solve(profiles, epoch, budget)
        optimum = MILPSolver().solve(profiles, epoch, budget)
        assert approx.report.captured <= optimum.report.captured

    @pytest.mark.parametrize("seed", range(5))
    def test_never_exceeds_optimum_general(self, seed):
        profiles, epoch = _random_general_instance(seed + 100)
        budget = BudgetVector(1)
        approx = LocalRatioApproximation().solve(profiles, epoch, budget)
        optimum = MILPSolver().solve(profiles, epoch, budget)
        assert approx.report.captured <= optimum.report.captured

    @pytest.mark.parametrize("seed", range(5))
    def test_schedule_feasible(self, seed):
        profiles, epoch = _random_general_instance(seed + 200)
        budget = BudgetVector(1)
        approx = LocalRatioApproximation().solve(profiles, epoch, budget)
        assert approx.schedule.respects_budget(budget, epoch)

    @pytest.mark.parametrize("seed", range(5))
    def test_approximation_ratio_on_unit_instances(self, seed):
        # Guarantee: >= OPT / (2k) for C = 1 on P^[1] (here we check the
        # looser OPT/(2k+1) bound to be robust to ties).
        profiles, epoch = _random_unit_instance(seed + 300)
        budget = BudgetVector(1)
        rank = profiles.rank
        approx = LocalRatioApproximation().solve(profiles, epoch, budget)
        optimum = MILPSolver().solve(profiles, epoch, budget)
        bound = optimum.report.captured / (2 * rank + 1)
        assert approx.report.captured >= bound - 1e-9

    def test_accepted_all_captured_by_schedule(self):
        profiles, epoch = _random_general_instance(321)
        budget = BudgetVector(1)
        approx = LocalRatioApproximation().solve(profiles, epoch, budget)
        # Every accepted t-interval must actually be captured by the
        # produced schedule (the matcher guarantees assignment).
        captured_by_schedule = sum(
            1 for eta in profiles.tintervals()
            if approx.schedule.captures_tinterval(eta))
        assert captured_by_schedule >= approx.report.captured
        assert approx.extras["gc_with_free_riders"] >= approx.gc


class TestDegenerateInputs:
    def test_empty_profiles(self):
        result = LocalRatioApproximation().solve(ProfileSet(), Epoch(5),
                                                 BudgetVector(1))
        assert result.report.total == 0

    def test_self_infeasible_excluded(self):
        profiles = ProfileSet([Profile([
            TInterval([ExecutionInterval(0, 3, 3),
                       ExecutionInterval(1, 3, 3)])])])
        result = LocalRatioApproximation().solve(profiles, Epoch(5),
                                                 BudgetVector(1))
        assert result.report.captured == 0

    def test_no_lp_fallback(self):
        profiles, epoch = _random_unit_instance(7)
        budget = BudgetVector(1)
        with_lp = LocalRatioApproximation(use_lp=True).solve(
            profiles, epoch, budget)
        without_lp = LocalRatioApproximation(use_lp=False).solve(
            profiles, epoch, budget)
        assert without_lp.schedule.respects_budget(budget, epoch)
        assert with_lp.schedule.respects_budget(budget, epoch)

    def test_lp_variable_cap_falls_back(self):
        profiles, epoch = _random_unit_instance(8)
        solver = LocalRatioApproximation(max_lp_variables=1)
        result = solver.solve(profiles, epoch, BudgetVector(1))
        assert result.report.captured >= 0

    def test_extras_report_counts(self):
        profiles, epoch = _random_unit_instance(9)
        result = LocalRatioApproximation().solve(profiles, epoch,
                                                 BudgetVector(1))
        assert result.extras["unit_width_input"] == 1.0
        assert result.extras["accepted"] == result.report.captured
