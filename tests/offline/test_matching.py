"""Tests for the incremental probe-assignment matcher."""

import itertools
import random

import pytest

from repro.core import BudgetVector, Epoch, ExecutionInterval, TInterval
from repro.offline import ProbeAssigner


def _eta(*specs: tuple[int, int, int]) -> TInterval:
    return TInterval([ExecutionInterval(r, s, f) for r, s, f in specs])


class TestTryAdd:
    def test_single_ei(self):
        assigner = ProbeAssigner(Epoch(10), BudgetVector(1))
        assert assigner.try_add(_eta((0, 2, 5)))
        assert assigner.assigned_count == 1

    def test_conflicting_units_rejected(self):
        assigner = ProbeAssigner(Epoch(10), BudgetVector(1))
        assert assigner.try_add(_eta((0, 3, 3)))
        assert not assigner.try_add(_eta((1, 3, 3)))

    def test_budget_two_allows_two_at_same_chronon(self):
        assigner = ProbeAssigner(Epoch(10), BudgetVector(2))
        assert assigner.try_add(_eta((0, 3, 3)))
        assert assigner.try_add(_eta((1, 3, 3)))

    def test_augmenting_path_rearranges(self):
        # A wants [1,2], B wants [2,2]; adding B must push A to 1.
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 1, 2)))
        assert assigner.try_add(_eta((1, 2, 2)))
        schedule = assigner.schedule()
        assert schedule.probe_chronons(0) == [1]
        assert schedule.probe_chronons(1) == [2]

    def test_all_or_nothing_rollback(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 1, 1)))
        # eta needs chronon 1 (taken, no alternative) and chronon 3.
        assert not assigner.try_add(_eta((1, 1, 1), (2, 3, 3)))
        # The failed add must not leave chronon 3 occupied.
        assert assigner.try_add(_eta((3, 3, 3)))

    def test_identical_eis_share_slot(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 2, 2)))
        # An identical unit EI on the same resource rides for free.
        assert assigner.try_add(_eta((0, 2, 2)))
        assert assigner.assigned_count == 1

    def test_long_chain_augmentation(self):
        # n t-intervals each wanting [1, i] force a full chain reshuffle.
        assigner = ProbeAssigner(Epoch(50), BudgetVector(1))
        for i in range(1, 41):
            assert assigner.try_add(_eta((i, 1, i)))
        assert assigner.assigned_count == 40


class TestRemove:
    def test_remove_frees_slot(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        eta = _eta((0, 3, 3))
        assert assigner.try_add(eta)
        assigner.remove(eta)
        assert assigner.try_add(_eta((1, 3, 3)))

    def test_refcounted_shared_eis(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        first = _eta((0, 2, 2))
        second = _eta((0, 2, 2))
        assert assigner.try_add(first)
        assert assigner.try_add(second)
        assigner.remove(first)
        # Still held by the second t-interval.
        assert not assigner.try_add(_eta((1, 2, 2)))
        assigner.remove(second)
        assert assigner.try_add(_eta((1, 2, 2)))

    def test_remove_unknown_is_noop(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assigner.remove(_eta((0, 1, 1)))
        assert assigner.assigned_count == 0


class TestRollback:
    """A failed try_add must restore the matching *exactly*."""

    def test_failed_add_restores_rearranged_chains(self):
        # A ([1,2]) sits at chronon 1. The rejected eta's first EI
        # ((1,1,1)) succeeds by pushing A to chronon 2; its second EI
        # ((2,1,2)) then finds everything full and fails. The undo must
        # put A back at chronon 1, not leave it rehomed at 2.
        for fast in (True, False):
            assigner = ProbeAssigner(Epoch(2), BudgetVector(1), fast=fast)
            assert assigner.try_add(_eta((0, 1, 2)))
            before = sorted(assigner.schedule().probes())
            assert before == [(0, 1)]
            assert not assigner.try_add(_eta((1, 1, 1), (2, 1, 2)))
            assert sorted(assigner.schedule().probes()) == before

    def test_interleaved_insert_reject_sequences(self):
        # Deterministic pseudo-random interleavings of accepted and
        # rejected inserts; after every reject the schedule must be
        # byte-identical to the pre-call one, and fast/naive assigners
        # must agree on every accept/reject decision.
        rng = random.Random(7)
        etas = []
        for _ in range(60):
            eis = []
            for _ in range(rng.randint(1, 3)):
                resource = rng.randint(0, 3)
                start = rng.randint(1, 12)
                finish = min(12, start + rng.randint(0, 3))
                eis.append((resource, start, finish))
            etas.append(_eta(*eis))
        fast = ProbeAssigner(Epoch(12), BudgetVector(1), fast=True)
        naive = ProbeAssigner(Epoch(12), BudgetVector(1), fast=False)
        for eta in etas:
            before_fast = sorted(fast.schedule().probes())
            before_naive = sorted(naive.schedule().probes())
            accepted_fast = fast.try_add(eta)
            accepted_naive = naive.try_add(eta)
            assert accepted_fast == accepted_naive
            after_fast = sorted(fast.schedule().probes())
            after_naive = sorted(naive.schedule().probes())
            assert after_fast == after_naive
            if not accepted_fast:
                assert after_fast == before_fast
                assert after_naive == before_naive

    def test_refcounted_shared_key_survives_rejected_sibling(self):
        # Regression: eta2 shares EI (0,2,2) with accepted eta1 and adds
        # a doomed sibling. The rejection must neither steal eta1's slot
        # nor bump the shared key's refcount.
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        shared = _eta((0, 2, 2))
        assert assigner.try_add(shared)
        blocker = _eta((1, 4, 4))
        assert assigner.try_add(blocker)
        assert not assigner.try_add(_eta((0, 2, 2), (2, 4, 4)))
        # eta1's probe is still there...
        assert assigner.schedule().captures_tinterval(shared)
        # ...and one remove releases it (refcount untouched by the
        # rejected sibling).
        assigner.remove(shared)
        assert assigner.try_add(_eta((3, 2, 2)))

    def test_remove_after_interleaving_restores_capacity(self):
        assigner = ProbeAssigner(Epoch(6), BudgetVector(1))
        first = _eta((0, 1, 3))
        second = _eta((1, 1, 3))
        third = _eta((2, 1, 3))
        assert assigner.try_add(first)
        assert assigner.try_add(second)
        assert assigner.try_add(third)
        assert not assigner.try_add(_eta((3, 1, 3)))
        assigner.remove(second)
        assert assigner.try_add(_eta((3, 1, 3)))


class TestFastParity:
    """Fast accelerations must be invisible in accept/reject outcomes."""

    @pytest.mark.parametrize("budget", [1, 2])
    def test_exhaustive_small_sequences(self, budget):
        pool = [
            _eta((0, 1, 1)), _eta((1, 1, 1)), _eta((0, 1, 2)),
            _eta((1, 2, 3), (0, 3, 3)), _eta((2, 2, 2)),
        ]
        for sequence in itertools.permutations(pool, 4):
            fast = ProbeAssigner(Epoch(3), BudgetVector(budget), fast=True)
            naive = ProbeAssigner(Epoch(3), BudgetVector(budget),
                                  fast=False)
            for eta in sequence:
                assert fast.try_add(eta) == naive.try_add(eta)
            assert sorted(fast.schedule().probes()) \
                == sorted(naive.schedule().probes())

    def test_unit_shortcut_matches_kuhn_outcomes(self):
        rng = random.Random(99)
        for trial in range(20):
            etas = [
                _eta(*[(rng.randint(0, 4), c, c)
                       for c in {rng.randint(1, 8)
                                 for _ in range(rng.randint(1, 3))}])
                for _ in range(25)
            ]
            fast = ProbeAssigner(Epoch(8), BudgetVector(1), fast=True)
            naive = ProbeAssigner(Epoch(8), BudgetVector(1), fast=False)
            for eta in etas:
                assert fast.try_add(eta) == naive.try_add(eta)
            assert sorted(fast.schedule().probes()) \
                == sorted(naive.schedule().probes())

    def test_unit_eta_outside_epoch_rejected(self):
        # The unit shortcut must not hallucinate slots beyond the epoch.
        fast = ProbeAssigner(Epoch(5), BudgetVector(1), fast=True)
        naive = ProbeAssigner(Epoch(5), BudgetVector(1), fast=False)
        eta = _eta((0, 7, 7))
        assert not fast.try_add(eta)
        assert not naive.try_add(eta)


class TestSchedule:
    def test_schedule_matches_assignments(self):
        epoch = Epoch(10)
        budget = BudgetVector(1)
        assigner = ProbeAssigner(epoch, budget)
        assert assigner.try_add(_eta((0, 1, 3), (1, 1, 3)))
        schedule = assigner.schedule()
        assert schedule.respects_budget(budget, epoch)
        assert schedule.captures_tinterval(_eta((0, 1, 3), (1, 1, 3)))

    def test_windows_clipped_to_epoch(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 4, 20)))
        chronon = assigner.schedule().probe_chronons(0)[0]
        assert 4 <= chronon <= 5
