"""Tests for the incremental probe-assignment matcher."""

from repro.core import BudgetVector, Epoch, ExecutionInterval, TInterval
from repro.offline import ProbeAssigner


def _eta(*specs: tuple[int, int, int]) -> TInterval:
    return TInterval([ExecutionInterval(r, s, f) for r, s, f in specs])


class TestTryAdd:
    def test_single_ei(self):
        assigner = ProbeAssigner(Epoch(10), BudgetVector(1))
        assert assigner.try_add(_eta((0, 2, 5)))
        assert assigner.assigned_count == 1

    def test_conflicting_units_rejected(self):
        assigner = ProbeAssigner(Epoch(10), BudgetVector(1))
        assert assigner.try_add(_eta((0, 3, 3)))
        assert not assigner.try_add(_eta((1, 3, 3)))

    def test_budget_two_allows_two_at_same_chronon(self):
        assigner = ProbeAssigner(Epoch(10), BudgetVector(2))
        assert assigner.try_add(_eta((0, 3, 3)))
        assert assigner.try_add(_eta((1, 3, 3)))

    def test_augmenting_path_rearranges(self):
        # A wants [1,2], B wants [2,2]; adding B must push A to 1.
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 1, 2)))
        assert assigner.try_add(_eta((1, 2, 2)))
        schedule = assigner.schedule()
        assert schedule.probe_chronons(0) == [1]
        assert schedule.probe_chronons(1) == [2]

    def test_all_or_nothing_rollback(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 1, 1)))
        # eta needs chronon 1 (taken, no alternative) and chronon 3.
        assert not assigner.try_add(_eta((1, 1, 1), (2, 3, 3)))
        # The failed add must not leave chronon 3 occupied.
        assert assigner.try_add(_eta((3, 3, 3)))

    def test_identical_eis_share_slot(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 2, 2)))
        # An identical unit EI on the same resource rides for free.
        assert assigner.try_add(_eta((0, 2, 2)))
        assert assigner.assigned_count == 1

    def test_long_chain_augmentation(self):
        # n t-intervals each wanting [1, i] force a full chain reshuffle.
        assigner = ProbeAssigner(Epoch(50), BudgetVector(1))
        for i in range(1, 41):
            assert assigner.try_add(_eta((i, 1, i)))
        assert assigner.assigned_count == 40


class TestRemove:
    def test_remove_frees_slot(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        eta = _eta((0, 3, 3))
        assert assigner.try_add(eta)
        assigner.remove(eta)
        assert assigner.try_add(_eta((1, 3, 3)))

    def test_refcounted_shared_eis(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        first = _eta((0, 2, 2))
        second = _eta((0, 2, 2))
        assert assigner.try_add(first)
        assert assigner.try_add(second)
        assigner.remove(first)
        # Still held by the second t-interval.
        assert not assigner.try_add(_eta((1, 2, 2)))
        assigner.remove(second)
        assert assigner.try_add(_eta((1, 2, 2)))

    def test_remove_unknown_is_noop(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assigner.remove(_eta((0, 1, 1)))
        assert assigner.assigned_count == 0


class TestSchedule:
    def test_schedule_matches_assignments(self):
        epoch = Epoch(10)
        budget = BudgetVector(1)
        assigner = ProbeAssigner(epoch, budget)
        assert assigner.try_add(_eta((0, 1, 3), (1, 1, 3)))
        schedule = assigner.schedule()
        assert schedule.respects_budget(budget, epoch)
        assert schedule.captures_tinterval(_eta((0, 1, 3), (1, 1, 3)))

    def test_windows_clipped_to_epoch(self):
        assigner = ProbeAssigner(Epoch(5), BudgetVector(1))
        assert assigner.try_add(_eta((0, 4, 20)))
        chronon = assigner.schedule().probe_chronons(0)[0]
        assert 4 <= chronon <= 5
