"""Tests for the repro-dsl command-line tool."""

import pytest

from repro.dsl.cli import main

GOOD = """profile p {
    watch a, b within 10;
}
"""

MESSY = "profile p{watch a,b within 10;}"

BAD = "profile p { watch within; }"


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.profiles"
    path.write_text(GOOD)
    return path


@pytest.fixture
def messy_file(tmp_path):
    path = tmp_path / "messy.profiles"
    path.write_text(MESSY)
    return path


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.profiles"
    path.write_text(BAD)
    return path


class TestCheck:
    def test_good_file_passes(self, good_file, capsys):
        assert main(["check", str(good_file)]) == 0
        out = capsys.readouterr().out
        assert "OK (1 profiles, 1 statements)" in out

    def test_bad_file_fails_with_position(self, bad_file, capsys):
        assert main(["check", str(bad_file)]) == 1
        err = capsys.readouterr().err
        assert "line 1" in err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_mixed_files_report_all(self, good_file, bad_file, capsys):
        assert main(["check", str(good_file), str(bad_file)]) == 1
        captured = capsys.readouterr()
        assert "OK" in captured.out
        assert "line 1" in captured.err


class TestFormat:
    def test_prints_canonical_form(self, messy_file, capsys):
        assert main(["format", str(messy_file)]) == 0
        assert capsys.readouterr().out == GOOD

    def test_write_rewrites_file(self, messy_file, capsys):
        assert main(["format", "--write", str(messy_file)]) == 0
        assert messy_file.read_text() == GOOD
        assert "reformatted" in capsys.readouterr().out

    def test_write_is_idempotent(self, good_file, capsys):
        assert main(["format", "--write", str(good_file)]) == 0
        assert "already canonical" in capsys.readouterr().out
        assert good_file.read_text() == GOOD

    def test_bad_file_fails(self, bad_file):
        assert main(["format", str(bad_file)]) == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["lint", "x"])
