"""Tests for the DSL parser."""

import pytest

from repro.dsl import DslSyntaxError, parse


class TestValidDocuments:
    def test_empty_document(self):
        assert parse("").profiles == ()

    def test_single_watch(self):
        doc = parse("profile p { watch a, b within 10; }")
        spec = doc.profile("p")
        statement = spec.statements[0]
        assert statement.kind == "watch"
        assert [r.text for r in statement.resources] == ["a", "b"]
        assert statement.restriction == "window"
        assert statement.window == 10
        assert statement.grouping == "indexed"
        assert statement.quota is None

    def test_subscribe_overwrite(self):
        doc = parse("profile p { subscribe 3 until overwrite; }")
        statement = doc.profile("p").statements[0]
        assert statement.kind == "subscribe"
        assert statement.restriction == "overwrite"
        assert statement.window is None

    def test_overlap_grouping(self):
        doc = parse("profile p { watch a, b overlap within 5; }")
        assert doc.profile("p").statements[0].grouping == "overlap"

    def test_quota_clause(self):
        doc = parse("profile p { watch a, b, c within 5 quota 2; }")
        assert doc.profile("p").statements[0].quota == 2

    def test_numeric_resources(self):
        doc = parse("profile p { watch 0, 12 within 5; }")
        refs = doc.profile("p").statements[0].resources
        assert all(ref.is_numeric for ref in refs)

    def test_multiple_statements(self):
        doc = parse("""
            profile p {
                watch a, b within 5;
                subscribe c until overwrite;
            }
        """)
        assert len(doc.profile("p").statements) == 2

    def test_multiple_profiles(self):
        doc = parse("profile p { watch a within 1; } "
                    "profile q { watch b within 2; }")
        assert [spec.name for spec in doc.profiles] == ["p", "q"]

    def test_comments_anywhere(self):
        doc = parse("""
            # header
            profile p {  # block
                watch a within 5;  # statement
            }
        """)
        assert len(doc.profiles) == 1

    def test_profile_lookup_missing(self):
        with pytest.raises(KeyError):
            parse("").profile("ghost")


class TestSyntaxErrors:
    def test_missing_semicolon(self):
        with pytest.raises(DslSyntaxError, match="';'"):
            parse("profile p { watch a within 5 }")

    def test_missing_brace(self):
        with pytest.raises(DslSyntaxError, match="'{'"):
            parse("profile p watch a within 5; }")

    def test_unterminated_block(self):
        with pytest.raises(DslSyntaxError, match="unterminated"):
            parse("profile p { watch a within 5;")

    def test_unknown_verb(self):
        with pytest.raises(DslSyntaxError, match="watch"):
            parse("profile p { observe a within 5; }")

    def test_missing_restriction(self):
        with pytest.raises(DslSyntaxError, match="within"):
            parse("profile p { watch a; }")

    def test_grouping_on_subscribe_rejected(self):
        with pytest.raises(DslSyntaxError, match="watch.*only"):
            parse("profile p { subscribe a overlap within 5; }")

    def test_quota_on_subscribe_rejected(self):
        with pytest.raises(DslSyntaxError, match="watch.*only"):
            parse("profile p { subscribe a within 5 quota 1; }")

    def test_zero_quota_rejected(self):
        with pytest.raises(DslSyntaxError, match="quota"):
            parse("profile p { watch a, b within 5 quota 0; }")

    def test_error_carries_position(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            parse("profile p {\n  watch a within x;\n}")
        assert excinfo.value.line == 2

    def test_missing_profile_keyword(self):
        with pytest.raises(DslSyntaxError, match="profile"):
            parse("watch a within 5;")

    def test_eof_message(self):
        with pytest.raises(DslSyntaxError, match="end of file"):
            parse("profile")
