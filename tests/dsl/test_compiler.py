"""Tests for the DSL compiler (resolution + materialization)."""

import pytest

from repro.core import Epoch, Resource, ResourceCatalog
from repro.dsl import DslSemanticError, compile_text
from repro.traces import UpdateEvent, UpdateTrace


@pytest.fixture
def epoch() -> Epoch:
    return Epoch(50)


@pytest.fixture
def trace(epoch) -> UpdateTrace:
    return UpdateTrace(
        [UpdateEvent(3, 0), UpdateEvent(10, 0),
         UpdateEvent(5, 1), UpdateEvent(12, 1),
         UpdateEvent(7, 2), UpdateEvent(20, 2)],
        epoch)


@pytest.fixture
def catalog() -> ResourceCatalog:
    catalog = ResourceCatalog()
    catalog.add(Resource.create(0, "market-a"))
    catalog.add(Resource.create(1, "market-b"))
    catalog.add(Resource.create(2, "feed/cnn"))
    return catalog


class TestResolution:
    def test_names_resolved_through_catalog(self, trace, epoch, catalog):
        compiled = compile_text(
            "profile p { watch market-a, market-b within 10; }",
            trace, epoch, catalog=catalog)
        assert compiled.profiles[0].resource_ids == frozenset({0, 1})

    def test_numeric_ids_without_catalog(self, trace, epoch):
        compiled = compile_text(
            "profile p { watch 0, 1 within 10; }", trace, epoch)
        assert compiled.profiles[0].resource_ids == frozenset({0, 1})

    def test_named_resource_without_catalog_rejected(self, trace, epoch):
        with pytest.raises(DslSemanticError, match="needs a catalog"):
            compile_text("profile p { watch market-a within 10; }",
                         trace, epoch)

    def test_unknown_name_rejected(self, trace, epoch, catalog):
        with pytest.raises(DslSemanticError, match="unknown resource"):
            compile_text("profile p { watch nasdaq within 10; }",
                         trace, epoch, catalog=catalog)

    def test_numeric_id_validated_against_catalog(self, trace, epoch,
                                                  catalog):
        with pytest.raises(DslSemanticError, match="not in catalog"):
            compile_text("profile p { watch 9 within 10; }",
                         trace, epoch, catalog=catalog)

    def test_duplicate_resources_rejected(self, trace, epoch):
        with pytest.raises(DslSemanticError, match="duplicate resources"):
            compile_text("profile p { watch 0, 0 within 10; }",
                         trace, epoch)


class TestMaterialization:
    def test_watch_builds_complex_tintervals(self, trace, epoch):
        compiled = compile_text(
            "profile p { watch 0, 1 indexed within 10; }", trace, epoch)
        profile = compiled.profiles[0]
        assert profile.rank == 2
        assert len(profile) == 2  # two update rounds on each resource

    def test_subscribe_builds_rank1(self, trace, epoch):
        compiled = compile_text(
            "profile p { subscribe 0, 2 until overwrite; }", trace,
            epoch)
        profile = compiled.profiles[0]
        assert profile.rank == 1
        assert len(profile) == 4  # 2 EIs per resource

    def test_multiple_statements_concatenate(self, trace, epoch):
        compiled = compile_text("""
            profile p {
                watch 0, 1 within 10;
                subscribe 2 until overwrite;
            }
        """, trace, epoch)
        assert len(compiled.profiles[0]) == 4  # 2 watch + 2 subscribe

    def test_profile_names_mapped(self, trace, epoch):
        compiled = compile_text(
            "profile alpha { watch 0 within 5; } "
            "profile beta { watch 1 within 5; }", trace, epoch)
        assert compiled.names == {0: "alpha", 1: "beta"}

    def test_overlap_grouping_applied(self, trace, epoch):
        compiled = compile_text(
            "profile p { watch 0, 1 overlap within 10; }", trace, epoch)
        for eta in compiled.profiles[0]:
            eis = list(eta)
            assert eis[0].overlaps(eis[1])


class TestQuotas:
    def test_quota_clause_populates_map(self, trace, epoch):
        compiled = compile_text(
            "profile p { watch 0, 1, 2 within 10 quota 2; }",
            trace, epoch)
        for eta in compiled.profiles[0]:
            assert compiled.quotas.quota_for(eta) == 2

    def test_no_quota_defaults_to_all(self, trace, epoch):
        compiled = compile_text(
            "profile p { watch 0, 1 within 10; }", trace, epoch)
        for eta in compiled.profiles[0]:
            assert compiled.quotas.quota_for(eta) == eta.size

    def test_quota_exceeding_arity_rejected(self, trace, epoch):
        with pytest.raises(DslSemanticError, match="exceeds"):
            compile_text("profile p { watch 0, 1 within 10 quota 3; }",
                         trace, epoch)

    def test_quota_scoped_to_statement(self, trace, epoch):
        compiled = compile_text("""
            profile p {
                watch 0, 1 within 10 quota 1;
                watch 0, 2 within 10;
            }
        """, trace, epoch)
        profile = compiled.profiles[0]
        quotas = [compiled.quotas.quota_for(eta) for eta in profile]
        # First statement's t-intervals have quota 1, the rest their size.
        assert 1 in quotas
        assert any(quota == 2 for quota in quotas)


class TestDocumentLevelSemantics:
    def test_duplicate_profile_names_rejected(self, trace, epoch):
        with pytest.raises(DslSemanticError, match="duplicate profile"):
            compile_text(
                "profile p { watch 0 within 5; } "
                "profile p { watch 1 within 5; }", trace, epoch)

    def test_end_to_end_with_runtime(self, trace, epoch):
        """DSL -> profiles -> simulator: the full front door."""
        from repro.core import BudgetVector
        from repro.online import MRSFPolicy
        from repro.simulation import run_online

        compiled = compile_text(
            "profile p { watch 0, 1 overlap within 10; }", trace, epoch)
        result = run_online(compiled.profiles, epoch, BudgetVector(1),
                            MRSFPolicy())
        assert result.report.total == len(compiled.profiles[0])
