"""Tests for the DSL tokenizer."""

import pytest

from repro.dsl import DslSyntaxError, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


class TestTokenKinds:
    def test_empty_input(self):
        assert kinds("") == ["EOF"]

    def test_identifiers(self):
        tokens = tokenize("watch feed/cnn market-0 a_b")
        assert [t.value for t in tokens[:-1]] == [
            "watch", "feed/cnn", "market-0", "a_b"]
        assert all(t.kind == "IDENT" for t in tokens[:-1])

    def test_integers(self):
        tokens = tokenize("12 345")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("INT", "12"), ("INT", "345")]

    def test_punctuation(self):
        assert kinds("{ } , ;") == ["LBRACE", "RBRACE", "COMMA", "SEMI",
                                    "EOF"]

    def test_comments_stripped(self):
        assert kinds("# a comment\nwatch # trailing\n") == ["IDENT",
                                                            "EOF"]

    def test_unexpected_character(self):
        with pytest.raises(DslSyntaxError, match="unexpected character"):
            tokenize("watch @")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("ok\n   %")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 4

    def test_multidigit_column(self):
        tokens = tokenize("abc 42")
        assert tokens[1].column == 5
