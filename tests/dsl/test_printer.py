"""Printer tests + parse/format round-trip property (hypothesis)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import (
    Document,
    ProfileSpec,
    ResourceRef,
    Statement,
    format_document,
    format_statement,
    parse,
)

# ---------------------------------------------------------------------
# Strategies for random (valid) documents
# ---------------------------------------------------------------------

_ident = st.from_regex(r"[a-z][a-z0-9_/.-]{0,8}", fullmatch=True).filter(
    # Avoid collisions with keywords in resource position; the grammar
    # would still parse most of them, but 'indexed'/'overlap'/'within'/
    # 'until'/'quota' in resource position are ambiguous by design.
    lambda s: s not in {"watch", "subscribe", "indexed", "overlap",
                        "within", "until", "overwrite", "quota",
                        "profile", "every"}
)


def _ref(text: str) -> ResourceRef:
    return ResourceRef(text=text, line=0, column=0)


@st.composite
def statements(draw) -> Statement:
    kind = draw(st.sampled_from(["watch", "subscribe"]))
    names = draw(st.lists(
        st.one_of(_ident, st.integers(0, 99).map(str)),
        min_size=1, max_size=4, unique=True))
    restriction = draw(st.sampled_from(["window", "overwrite"]))
    window = draw(st.integers(0, 50)) if restriction == "window" else None
    grouping = "indexed"
    quota = None
    period = None
    if kind == "watch":
        grouping = draw(st.sampled_from(["indexed", "overlap"]))
        if draw(st.booleans()):
            quota = draw(st.integers(1, len(names)))
        if restriction == "window" and draw(st.booleans()):
            period = draw(st.integers(1, 40))
    return Statement(kind=kind,
                     resources=tuple(_ref(name) for name in names),
                     restriction=restriction, window=window,
                     grouping=grouping, quota=quota, period=period)


@st.composite
def documents(draw) -> Document:
    count = draw(st.integers(0, 3))
    names = draw(st.lists(_ident, min_size=count, max_size=count,
                          unique=True))
    profiles = []
    for name in names:
        stmts = draw(st.lists(statements(), min_size=1, max_size=3))
        profiles.append(ProfileSpec(name=name, statements=tuple(stmts)))
    return Document(profiles=tuple(profiles))


def _normalize(document: Document) -> Document:
    """Strip source positions for semantic comparison."""
    profiles = []
    for spec in document.profiles:
        stmts = tuple(
            replace(statement, line=0, resources=tuple(
                _ref(ref.text) for ref in statement.resources))
            for statement in spec.statements
        )
        profiles.append(ProfileSpec(name=spec.name, statements=stmts,
                                    line=0))
    return Document(profiles=tuple(profiles))


class TestFormatting:
    def test_statement_window(self):
        statement = Statement(kind="watch",
                              resources=(_ref("a"), _ref("b")),
                              restriction="window", window=10)
        assert format_statement(statement) == "watch a, b within 10;"

    def test_statement_overwrite_with_quota(self):
        statement = Statement(kind="watch",
                              resources=(_ref("a"), _ref("b")),
                              restriction="overwrite", window=None,
                              grouping="overlap", quota=1)
        assert format_statement(statement) == \
            "watch a, b overlap until overwrite quota 1;"

    def test_subscribe(self):
        statement = Statement(kind="subscribe", resources=(_ref("f"),),
                              restriction="overwrite", window=None)
        assert format_statement(statement) == \
            "subscribe f until overwrite;"

    def test_empty_document(self):
        assert format_document(Document(profiles=())) == ""

    def test_document_layout(self):
        text = format_document(parse(
            "profile p { watch a within 5; }"))
        assert text == "profile p {\n    watch a within 5;\n}\n"


class TestRoundTrip:
    @given(document=documents())
    @settings(max_examples=120)
    def test_parse_format_round_trip(self, document):
        formatted = format_document(document)
        reparsed = parse(formatted)
        assert _normalize(reparsed) == _normalize(document)

    @given(document=documents())
    @settings(max_examples=60)
    def test_formatting_is_idempotent(self, document):
        once = format_document(document)
        twice = format_document(parse(once))
        assert once == twice
