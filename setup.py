"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP-517 editable
installs cannot build; keeping a setup.py (and no [build-system] table in
pyproject.toml) lets ``pip install -e .`` use the legacy setuptools
develop path, which works without wheel.
"""

from setuptools import setup

setup()
