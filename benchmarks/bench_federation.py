"""Sharded proxy federation vs. the monolith fast engine.

Measures one policy run over a large catalog — the monolith fast
engine against :func:`repro.simulation.shard.federated_run` at several
shard counts (K ∈ {1, 2, 4, 8, 16}) — and writes the numbers to
``BENCH_federation.json``::

    PYTHONPATH=src python benchmarks/bench_federation.py \
        --output BENCH_federation.json

The ``catalog`` scale holds 500k profiles (feasible via the vectorized
instance generator + cache); every federated run shares the catalog's
columnar lowering, so per-K numbers isolate shard advance + coordinator
merge. Every round asserts the federated schedule is probe-for-probe
identical to the monolith's — for *every* K, which is why the reported
``gc_degradation`` column is exactly 0.0 per shard count.

``--workers N`` advances shards on a forked process pool; with the
default ``auto``, the pool is only engaged when the machine has spare
cores (on a single-CPU host the in-process path wins — the speedup is
algorithmic, from the shards' vectorized columnar slices — and the
chosen mode is recorded in the report). ``--smoke`` restricts the run
to the tiny scale with fewer rounds for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from dataclasses import asdict

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import make_instance
from repro.online.registry import parse_policy_spec
from repro.simulation.columnar import ColumnarInstance
from repro.simulation.proxy import run_online
from repro.simulation.shard import federated_run

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["bench_federation", "main"]

#: ``catalog`` is the acceptance scale: 500k profiles, a half-million
#: catalog served under one budget. ``tiny`` is the CI smoke scale.
SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        epoch_length=60, num_resources=16, num_profiles=60,
        intensity=8.0, budget=3, window=6, repetitions=1,
        grouping="overlap", seed=1234),
    "catalog": ExperimentConfig(
        epoch_length=100, num_resources=500, num_profiles=500_000,
        intensity=20.0, budget=16, window=5, repetitions=1,
        grouping="overlap", seed=20080407),
}

SHARD_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16)

_POLICY = "M-EDF(P)"


def _pick_workers(workers: str | int) -> int:
    if workers != "auto":
        return int(workers)
    cores = os.cpu_count() or 1
    # A forked pool only pays off with real spare cores; on small hosts
    # the IPC tax eats the win and the in-process path is faster.
    return min(8, cores - 2) if cores >= 4 else 0


def bench_federation(scale: str, rounds: int = 3,
                     shard_counts=SHARD_COUNTS,
                     workers: int = 0) -> dict:
    """Median monolith vs. federated wall time at one scale."""
    config = SCALES[scale]
    _trace, profiles = make_instance(config, 0)
    col = ColumnarInstance.build(profiles, config.epoch)

    def run_monolith():
        policy, preemptive = parse_policy_spec(_POLICY)
        started = time.perf_counter()
        result = run_online(profiles, config.epoch, config.budget_vector,
                            policy, preemptive=preemptive, engine="fast")
        return time.perf_counter() - started, result

    def run_federated(shards: int):
        policy, preemptive = parse_policy_spec(_POLICY)
        started = time.perf_counter()
        fed = federated_run(profiles, config.epoch, config.budget_vector,
                            policy, preemptive=preemptive, shards=shards,
                            workers=workers, columnar=col)
        return time.perf_counter() - started, fed

    # Warm caches (instance cache is already warm; this warms numpy and
    # the page cache) outside the timed region.
    _, reference = run_monolith()
    reference_probes = list(reference.schedule.probes())

    mono_times: list[float] = []
    fed_times: dict[int, list[float]] = {k: [] for k in shard_counts}
    fed_gc: dict[int, float] = {}
    fed_loads: dict[int, dict] = {}
    for _ in range(rounds):
        seconds, result = run_monolith()
        mono_times.append(seconds)
        if list(result.schedule.probes()) != reference_probes:
            raise AssertionError("monolith run diverged between rounds")
        for shards in shard_counts:
            seconds, fed = run_federated(shards)
            fed_times[shards].append(seconds)
            if list(fed.result.schedule.probes()) != reference_probes:
                raise AssertionError(
                    f"federated K={shards} diverged from the monolith")
            fed_gc[shards] = fed.result.gc
            fed_loads[shards] = {
                "probes_routed": [load.probes_routed
                                  for load in fed.loads],
                "resources": [load.resources for load in fed.loads],
                "stolen_budget": fed.stolen_budget,
                "steal_transfers": fed.steal_transfers,
            }

    mono_s = statistics.median(mono_times)
    probes = reference.probes_used
    shards_report = {}
    for shards in shard_counts:
        fed_s = statistics.median(fed_times[shards])
        shards_report[f"K{shards}"] = {
            "shards": shards,
            "seconds": fed_s,
            "gc": fed_gc[shards],
            "gc_degradation": reference.gc - fed_gc[shards],
            "probes_per_s": probes / fed_s,
            "speedup": mono_s / fed_s,
            **fed_loads[shards],
        }
    return {
        "config": asdict(config),
        "policy": _POLICY,
        "workers": workers,
        "mode": "process-pool" if workers else "in-process",
        "monolith_s": mono_s,
        "monolith_gc": reference.gc,
        "probes_used": probes,
        "monolith_probes_per_s": probes / mono_s,
        "shards": shards_report,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the sharded proxy federation against the "
                    "monolith fast engine, writing BENCH_federation.json")
    parser.add_argument("--scales", default="tiny,catalog",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(SCALES)})")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per measurement (median wins)")
    parser.add_argument("--workers", default="auto",
                        help="shard worker processes per federated run "
                             "(default: auto — a pool only when the host "
                             "has spare cores; 0 forces in-process)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: tiny scale only, 5 rounds "
                             "(tiny runs are ~20ms, so extra rounds are "
                             "cheap and steady the gated ratios)")
    parser.add_argument("--output", default="BENCH_federation.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.smoke:
        scales = ["tiny"]
        rounds = 5
    else:
        scales = [scale.strip() for scale in args.scales.split(",")
                  if scale.strip()]
        rounds = args.rounds
    workers = _pick_workers(args.workers)
    report = {
        **provenance_header("bench_federation.py"),
        "policy": _POLICY,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "scales": {},
    }
    for scale in scales:
        print(f"[bench_federation] measuring scale {scale!r} ...",
              file=sys.stderr)
        summary = bench_federation(scale, rounds=rounds, workers=workers)
        report["scales"][scale] = summary
        for name, row in summary["shards"].items():
            print(f"[bench_federation]   {name}: {row['speedup']:.2f}x "
                  f"monolith ({row['seconds']*1e3:.1f}ms, "
                  f"gc degradation {row['gc_degradation']:.6f}, "
                  f"stolen {row['stolen_budget']})",
                  file=sys.stderr)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench_federation] wrote {args.output}", file=sys.stderr)
    return 0


def bench_federation_smoke(benchmark):
    """pytest-benchmark hook: one K=4 federated run at the tiny scale,
    with a sanity assertion that it matches the monolith."""
    config = SCALES["tiny"]
    _trace, profiles = make_instance(config, 0)
    col = ColumnarInstance.build(profiles, config.epoch)

    def run_federated():
        policy, preemptive = parse_policy_spec(_POLICY)
        return federated_run(profiles, config.epoch,
                             config.budget_vector, policy,
                             preemptive=preemptive, shards=4,
                             columnar=col)

    fed = benchmark.pedantic(run_federated, rounds=3, iterations=1)
    policy, preemptive = parse_policy_spec(_POLICY)
    mono = run_online(profiles, config.epoch, config.budget_vector,
                      policy, preemptive=preemptive, engine="fast")
    assert list(fed.result.schedule.probes()) == \
        list(mono.schedule.probes())


if __name__ == "__main__":
    sys.exit(main())
