"""Offline pipeline performance: fast vs. reference Local-Ratio engines.

Measures median wall-times of :class:`LocalRatioApproximation.solve`
under both engines (sweep-line adjacency + lazy-heap decomposition +
accelerated matching vs. the pairwise/rescan specification), the matcher
and enumeration micro-costs, and the serial vs. process-pool offline
comparison experiment, writing everything to ``BENCH_offline.json`` so
future changes are compared against a tracked baseline::

    PYTHONPATH=src python benchmarks/bench_offline.py \
        --output BENCH_offline.json

The headline ``target`` scale — epoch 200, 50 resources, 60 profiles —
is the ``BENCH_engine.json`` target scale restricted to the ``P^[1]``
regime the paper evaluates the offline approximation in (``W = 0``,
``C = 1``, §5.3/§5.7); ``target-general`` keeps the online bench's
windowed/overlap shape to exercise the general (augmentation-heavy)
path. Both engines produce identical schedules (asserted on every
measurement), so the numbers compare pure implementation cost.

The module doubles as a pytest-benchmark bench
(``bench_offline_speedup``) asserting the fast engine actually is
faster.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from dataclasses import asdict

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import make_instance
from repro.experiments.offline import offline_comparison
from repro.offline.enumeration import EnumerationSolver
from repro.offline.greedy import GreedyOfflineSolver
from repro.offline.local_ratio import LocalRatioApproximation

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["bench_local_ratio", "bench_micro", "bench_offline_scaling",
           "main"]

#: Instance scales measured by the offline bench. ``target`` is the
#: engine-bench scale in the offline (P^[1], C = 1) regime; ``tiny``
#: exists for CI smoke runs.
SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        epoch_length=40, num_resources=10, num_profiles=12, intensity=5.0,
        window=0, repetitions=1, grouping="indexed", seed=1234),
    "target": ExperimentConfig(
        epoch_length=200, num_resources=50, num_profiles=60, intensity=10.0,
        window=0, repetitions=1, grouping="indexed", seed=1234),
    "target-general": ExperimentConfig(
        epoch_length=200, num_resources=50, num_profiles=60, intensity=10.0,
        window=10, repetitions=1, grouping="overlap", seed=1234),
}

_SWEEP_WORKERS = (2, 4)


def _median_solve(solver, profiles, config: ExperimentConfig,
                  rounds: int) -> tuple[float, object]:
    times = []
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = solver.solve(profiles, config.epoch, config.budget_vector)
        times.append(time.perf_counter() - started)
    return statistics.median(times), result


def bench_local_ratio(scale: str, rounds: int = 5) -> dict:
    """Median reference vs. fast Local-Ratio wall-times at one scale."""
    config = SCALES[scale]
    _trace, profiles = make_instance(config, 0)
    fast_s, fast_result = _median_solve(
        LocalRatioApproximation(engine="fast"), profiles, config, rounds)
    reference_s, reference_result = _median_solve(
        LocalRatioApproximation(engine="reference"), profiles, config,
        rounds)
    if sorted(fast_result.schedule.probes()) \
            != sorted(reference_result.schedule.probes()):
        raise AssertionError(
            f"engines diverged at scale {scale!r}: benchmark numbers "
            "would compare different algorithms")
    greedy_s, _ = _median_solve(GreedyOfflineSolver(fast=True), profiles,
                                config, rounds)
    return {
        "config": asdict(config),
        "candidates": fast_result.extras["candidates"],
        "accepted": fast_result.extras["accepted"],
        "gc": fast_result.gc,
        "reference_s": reference_s,
        "fast_s": fast_s,
        "speedup": reference_s / fast_s,
        "greedy_fast_s": greedy_s,
    }


def bench_micro(rounds: int = 5) -> dict:
    """Micro-costs: matcher modes and the enumeration solver."""
    config = SCALES["target-general"]
    _trace, profiles = make_instance(config, 0)
    fast_s, _ = _median_solve(GreedyOfflineSolver(fast=True), profiles,
                              config, rounds)
    naive_s, _ = _median_solve(GreedyOfflineSolver(fast=False), profiles,
                               config, rounds)

    # Enumeration ground truth on a tiny instance (exponential beyond).
    enum_config = ExperimentConfig(
        epoch_length=12, num_resources=4, num_profiles=6, intensity=3.0,
        window=2, repetitions=1, grouping="overlap", seed=1234)
    _trace, enum_profiles = make_instance(enum_config, 0)
    enum_s, enum_result = _median_solve(EnumerationSolver(), enum_profiles,
                                        enum_config, rounds)
    return {
        "matcher": {
            "config": asdict(config),
            "greedy_fast_s": fast_s,
            "greedy_naive_s": naive_s,
            "speedup": naive_s / fast_s,
        },
        "enumeration": {
            "config": asdict(enum_config),
            "seconds": enum_s,
            "dfs_nodes": enum_result.extras["dfs_nodes"],
            "optimal_value": enum_result.extras["optimal_value"],
        },
    }


def bench_offline_scaling(rounds: int = 3,
                          workers_list=_SWEEP_WORKERS) -> dict:
    """Serial vs. process-pool offline comparison (same outputs)."""
    cpus = os.cpu_count() or 1

    def run_once(workers):
        started = time.perf_counter()
        offline_comparison("smoke", workers=workers)
        return time.perf_counter() - started

    serial_s = statistics.median(run_once(None) for _ in range(rounds))
    parallel = {}
    for workers in workers_list:
        seconds = statistics.median(
            run_once(workers) for _ in range(rounds))
        speedup = serial_s / seconds
        effective = min(workers, cpus)
        parallel[str(workers)] = {
            "seconds": seconds,
            "speedup": speedup,
            "efficiency": speedup / effective,
        }
    return {
        "scale": "smoke",
        "cpu_count": cpus,
        "serial_s": serial_s,
        "parallel": parallel,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the offline optimization pipeline, writing "
                    "BENCH_offline.json")
    parser.add_argument("--scales", default="target,target-general",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(SCALES)})")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per measurement (median wins)")
    parser.add_argument("--sweep-rounds", type=int, default=3,
                        help="timing rounds for the parallel experiment")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the workers-scaling measurement")
    parser.add_argument("--output", default="BENCH_offline.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    scales = [scale.strip() for scale in args.scales.split(",")
              if scale.strip()]
    report = {
        **provenance_header("bench_offline.py"),
        "rounds": args.rounds,
        "scales": {},
    }
    for scale in scales:
        print(f"[bench_offline] measuring scale {scale!r} ...",
              file=sys.stderr)
        report["scales"][scale] = bench_local_ratio(scale,
                                                    rounds=args.rounds)
        summary = report["scales"][scale]
        print(f"[bench_offline]   speedup {summary['speedup']:.2f}x "
              f"(ref {summary['reference_s']*1e3:.1f}ms, "
              f"fast {summary['fast_s']*1e3:.1f}ms)",
              file=sys.stderr)
    print("[bench_offline] measuring matcher/enumeration micro-costs ...",
          file=sys.stderr)
    report["micro"] = bench_micro(rounds=args.rounds)
    if not args.skip_sweep:
        print("[bench_offline] measuring workers scaling ...",
              file=sys.stderr)
        report["sweep"] = bench_offline_scaling(rounds=args.sweep_rounds)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench_offline] wrote {args.output}", file=sys.stderr)
    return 0


def bench_offline_speedup(benchmark):
    """pytest-benchmark hook: fast Local-Ratio at the target scale, and a
    sanity assertion that it beats the reference."""
    config = SCALES["target"]
    _trace, profiles = make_instance(config, 0)
    fast = LocalRatioApproximation(engine="fast")

    def run_fast():
        return fast.solve(profiles, config.epoch, config.budget_vector)

    benchmark.pedantic(run_fast, rounds=3, iterations=1)
    fast_s, _ = _median_solve(fast, profiles, config, 3)
    reference_s, _ = _median_solve(
        LocalRatioApproximation(engine="reference"), profiles, config, 3)
    assert fast_s < reference_s


if __name__ == "__main__":
    sys.exit(main())
