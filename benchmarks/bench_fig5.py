"""Figure 5: runtime scalability of offline vs online solutions.

Expected shape (paper §5.4): the offline approximation's runtime grows
much faster than the online policies' (superlinear vs ~linear in the
number of profiles), making the online policies the scalable choice.

Implementation note (DESIGN.md §5): our Local-Ratio implementation is more
efficient than the paper's (single LP + incremental matching), so at small
instance counts its absolute runtime can sit below the online policies';
the superlinear growth — and the crossover within panel 1's sweep — is the
reproduced claim.
"""

from __future__ import annotations

import pytest

from repro.experiments import OFFLINE_LABEL, figure5
from repro.experiments.reporting import sweep_table

from benchmarks.conftest import print_block


@pytest.fixture(scope="module")
def fig5(bench_scale):
    return figure5(bench_scale)


def bench_fig5_runtime_scalability(benchmark, bench_scale, fig5, capsys):
    benchmark.pedantic(lambda: figure5("smoke"), rounds=1, iterations=1)

    print_block(capsys, sweep_table(fig5.left, metric="runtime"))
    print_block(capsys, sweep_table(fig5.right, metric="runtime"))
    print_block(capsys, sweep_table(fig5.right, metric="gc"))

    if bench_scale == "smoke":
        return
    offline = fig5.left.series(OFFLINE_LABEL, metric="runtime")
    online = fig5.left.series("MRSF(P)", metric="runtime")

    # Offline runtime grows superlinearly: the last/first ratio exceeds
    # the sweep's size ratio; online grows ~linearly (within 2x slack).
    size_ratio = fig5.left.x_values[-1] / fig5.left.x_values[0]
    assert offline[-1] / max(offline[0], 1e-9) > size_ratio
    assert online[-1] / max(online[0], 1e-9) < 2.5 * size_ratio

    # Offline growth outpaces online growth.
    offline_growth = offline[-1] / max(offline[0], 1e-9)
    online_growth = online[-1] / max(online[0], 1e-9)
    assert offline_growth > online_growth

    # Panel 2: online policies stay ~linear at 2.5x intensity.
    for label in fig5.right.labels():
        series = fig5.right.series(label, metric="runtime")
        assert series[-1] / max(series[0], 1e-9) < 2.5 * (
            fig5.right.x_values[-1] / fig5.right.x_values[0])
