"""Client-churn bench: completeness and fairness under dynamic arrival.

Beyond the paper (which registers all profiles up front): clients joining
throughout the epoch lose the t-intervals that elapsed before arrival,
lowering both delivered completeness and cross-client fairness (late
joiners do systematically worse). Leavers convert pending work into
drops without hurting the rest.
"""

from __future__ import annotations

import pytest

from repro.experiments import ChurnConfig, run_churn
from repro.experiments.reporting import render_table

from benchmarks.conftest import print_block


def bench_churn_arrival_spread(benchmark, capsys):
    spreads = [0.0, 0.2, 0.4, 0.6, 0.8]

    def run_sweep():
        rows = []
        for spread in spreads:
            result = run_churn(ChurnConfig(join_spread=spread))
            rows.append([spread, result.overall_completeness,
                         result.fairness, result.completed,
                         result.expired])
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["join spread", "completeness", "fairness (Jain)", "completed",
         "expired"], rows,
        title="Churn — arrival spread vs delivered completeness"))

    completeness = [row[1] for row in rows]
    # Later arrival spread strictly costs completeness overall.
    assert completeness[0] > completeness[-1]
    # Fairness degrades as later joiners do worse.
    assert rows[0][2] >= rows[-1][2] - 0.02


def bench_churn_leavers(benchmark, capsys):
    def run_pair():
        stay = run_churn(ChurnConfig(join_spread=0.4))
        churn = run_churn(ChurnConfig(join_spread=0.4,
                                      leave_probability=0.5))
        return stay, churn

    stay, churn = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["scenario", "completeness", "completed", "expired", "dropped"],
        [["no leavers", stay.overall_completeness, stay.completed,
          stay.expired, stay.dropped],
         ["50% leave at 3/4", churn.overall_completeness,
          churn.completed, churn.expired, churn.dropped]],
        title="Churn — leavers"))
    assert churn.dropped > 0
    assert stay.dropped == 0
