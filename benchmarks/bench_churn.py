"""Live-churn bench: incremental insert/delete vs. full rebuilds.

Times the same churn-heavy scenario twice through the fast engine —
once on the incremental path (O(log n + touched) event splicing into
the live event queues / candidate index) and once with a from-scratch
:meth:`~repro.simulation.engine.FastProxySimulator.rebuild_structures`
pass after every churn event — and asserts the two produce
probe-for-probe identical results every round. The offline section
does the same for the conflict-adjacency / Local-Ratio pipeline:
:class:`~repro.offline.incremental.IncrementalLocalRatio` maintaining
the adjacency and the live Hall-precheck assigner across events vs.
a from-scratch :func:`~repro.offline.conflict.unit_conflict_adjacency`
rebuild per event. Results land in ``BENCH_churn.json``::

    PYTHONPATH=src python benchmarks/bench_churn.py \
        --output BENCH_churn.json

The ``target`` scale is the acceptance scale: a churn-heavy epoch
(hundreds of registrations and cancellations over hundreds of live
profiles) where the gated ``speedup`` keys must stay >= 3x. ``--smoke``
restricts to the tiny scale for CI; the bench-report gate compares
every regenerated scale against the committed baseline.

The two qualitative pytest benches (arrival spread vs. completeness,
leavers vs. drops) ride along at the bottom and are collected only
when pytest targets ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import asdict

from repro.core.budget import BudgetVector
from repro.core.profile import ProfileSet
from repro.experiments.churn import (
    ChurnConfig,
    build_churn_workload,
    run_churn,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import make_instance
from repro.offline.conflict import (
    clear_demand_cache,
    unit_conflict_adjacency,
)
from repro.offline.incremental import IncrementalLocalRatio
from repro.offline.local_ratio import LocalRatioApproximation
from repro.online.registry import parse_policy_spec
from repro.simulation.churn import run_churned

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["ENGINE_SCALES", "OFFLINE_SCALES", "bench_engine_churn",
           "bench_offline_churn", "main"]

#: Engine scales. ``target`` is churn-heavy — every client joins
#: mid-epoch and half churn out again, so the per-event O(n) rebuild
#: referee pays hundreds of full event-queue/index reconstructions
#: over hundreds of live profiles. ``tiny`` is the CI smoke scale.
ENGINE_SCALES: dict[str, ChurnConfig] = {
    "tiny": ChurnConfig(epoch_length=80, num_resources=16,
                        intensity=8.0, num_clients=6,
                        profiles_per_client=4, window=6,
                        join_spread=0.9, leave_probability=0.5,
                        seed=1234),
    "target": ChurnConfig(epoch_length=300, num_resources=100,
                          intensity=10.0, num_clients=48,
                          profiles_per_client=12, window=10,
                          budget=2, join_spread=0.9,
                          leave_probability=0.5, seed=20080407),
}

#: Offline scales (unit-width instances for the P^[1] pipeline).
OFFLINE_SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(epoch_length=60, num_resources=12,
                             num_profiles=40, intensity=8.0, budget=1,
                             window=0, grouping="indexed",
                             repetitions=1, seed=1234),
    "target": ExperimentConfig(epoch_length=200, num_resources=50,
                               num_profiles=240, intensity=12.0,
                               budget=1, window=0, grouping="indexed",
                               repetitions=1, seed=20080407),
}


def _identical(left, right) -> bool:
    return (list(left.schedule.probes()) == list(right.schedule.probes())
            and left.report.per_profile == right.report.per_profile
            and left.report.per_rank == right.report.per_rank
            and left.expired == right.expired
            and left.extras == right.extras)


def bench_engine_churn(scale: str, rounds: int = 3) -> dict:
    """Median incremental vs. per-event-rebuild engine wall time."""
    config = ENGINE_SCALES[scale]
    initial, plan, epoch = build_churn_workload(config)
    budget = BudgetVector(config.budget)

    def run_mode(mode: str) -> tuple[float, object]:
        policy, preemptive = parse_policy_spec(config.policy)
        started = time.perf_counter()
        result = run_churned(initial, epoch, budget, policy, plan=plan,
                             preemptive=preemptive, mode=mode)
        return time.perf_counter() - started, result

    _, reference = run_mode("incremental")  # warm-up, outside timing
    inc_times: list[float] = []
    reb_times: list[float] = []
    for _ in range(rounds):
        seconds, inc = run_mode("incremental")
        inc_times.append(seconds)
        if not _identical(inc, reference):
            raise AssertionError("incremental run diverged across rounds")
        seconds, reb = run_mode("rebuild")
        reb_times.append(seconds)
        if not _identical(inc, reb):
            raise AssertionError(
                "rebuild mode diverged from the incremental engine")
    inc_s = statistics.median(inc_times)
    reb_s = statistics.median(reb_times)
    return {
        "config": asdict(config),
        "events": len(plan),
        "initial_profiles": len(initial),
        "total_tintervals": reference.report.total,
        "gc": reference.report.gc,
        "probes_used": reference.probes_used,
        "dropped": reference.extras.get("dropped", 0.0),
        "incremental_s": inc_s,
        "rebuild_s": reb_s,
        "speedup": reb_s / inc_s,
    }


def bench_offline_churn(scale: str, rounds: int = 3) -> dict:
    """Incremental adjacency + live-assigner diffing vs. per-event
    from-scratch conflict rebuilds (both ending in one solve)."""
    config = OFFLINE_SCALES[scale]
    _trace, profiles = make_instance(config, 0)
    plist = list(profiles)
    # Churn script: every profile registers one by one, then every
    # second one cancels — n + n/2 structure-invalidating events.
    removals = list(range(0, len(plist), 2))

    def run_incremental() -> tuple[float, object]:
        clear_demand_cache()
        started = time.perf_counter()
        inc = IncrementalLocalRatio(config.epoch, config.budget_vector,
                                    use_lp=True)
        for profile in plist:
            inc.add_profile(profile)
        for profile_id in removals:
            inc.remove_profile(profile_id)
        result = inc.resolve()
        return time.perf_counter() - started, result

    def run_rebuild() -> tuple[float, object]:
        clear_demand_cache()
        started = time.perf_counter()
        live: dict[int, object] = {}
        for index, profile in enumerate(plist):
            live[index] = profile
            snapshot = ProfileSet([live[key] for key in sorted(live)])
            unit_conflict_adjacency(snapshot, config.budget_vector)
        for profile_id in removals:
            del live[profile_id]
            snapshot = ProfileSet([live[key] for key in sorted(live)])
            unit_conflict_adjacency(snapshot, config.budget_vector)
        solver = LocalRatioApproximation(use_lp=True, engine="fast")
        result = solver.solve(
            ProfileSet([live[key] for key in sorted(live)]),
            config.epoch, config.budget_vector)
        return time.perf_counter() - started, result

    _, reference = run_incremental()  # warm-up
    inc_times: list[float] = []
    reb_times: list[float] = []
    for _ in range(rounds):
        seconds, inc = run_incremental()
        inc_times.append(seconds)
        seconds, reb = run_rebuild()
        reb_times.append(seconds)
        if list(inc.schedule.probes()) != list(reb.schedule.probes()):
            raise AssertionError(
                "incremental offline schedule diverged from the "
                "from-scratch solve")
        if (inc.report.captured != reb.report.captured
                or inc.report.per_rank != reb.report.per_rank):
            raise AssertionError(
                "incremental offline accounting diverged from the "
                "from-scratch solve")
    inc_s = statistics.median(inc_times)
    reb_s = statistics.median(reb_times)
    return {
        "config": asdict(config),
        "churn_events": len(plist) + len(removals),
        "accepted": reference.extras["accepted"],
        "candidates": reference.extras["candidates"],
        "incremental_s": inc_s,
        "rebuild_s": reb_s,
        "speedup": reb_s / inc_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark incremental live churn against per-event "
                    "from-scratch rebuilds, writing BENCH_churn.json")
    parser.add_argument("--scales", default="tiny,target",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(ENGINE_SCALES)})")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per measurement (median wins)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: tiny scale only, 5 rounds")
    parser.add_argument("--output", default="BENCH_churn.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.smoke:
        scales = ["tiny"]
        rounds = 5
    else:
        scales = [scale.strip() for scale in args.scales.split(",")
                  if scale.strip()]
        rounds = args.rounds
    report = {
        **provenance_header("bench_churn.py"),
        "rounds": rounds,
        "scales": {},
    }
    for scale in scales:
        print(f"[bench_churn] measuring scale {scale!r} ...",
              file=sys.stderr)
        engine = bench_engine_churn(scale, rounds=rounds)
        offline = bench_offline_churn(scale, rounds=rounds)
        report["scales"][scale] = {"engine": engine, "offline": offline}
        print(f"[bench_churn]   engine: {engine['speedup']:.2f}x over "
              f"rebuild ({engine['incremental_s'] * 1e3:.1f}ms vs "
              f"{engine['rebuild_s'] * 1e3:.1f}ms, "
              f"{engine['events']} events)", file=sys.stderr)
        print(f"[bench_churn]   offline: {offline['speedup']:.2f}x over "
              f"rebuild ({offline['incremental_s'] * 1e3:.1f}ms vs "
              f"{offline['rebuild_s'] * 1e3:.1f}ms, "
              f"{offline['churn_events']} events)", file=sys.stderr)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[bench_churn] wrote {args.output}", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Qualitative pytest benches (collected when pytest targets benchmarks/).
# ---------------------------------------------------------------------------


def bench_churn_arrival_spread(benchmark, capsys):
    from benchmarks.conftest import print_block
    from repro.experiments.reporting import render_table

    spreads = [0.0, 0.2, 0.4, 0.6, 0.8]

    def run_sweep():
        rows = []
        for spread in spreads:
            result = run_churn(ChurnConfig(join_spread=spread))
            rows.append([spread, result.overall_completeness,
                         result.fairness, result.completed,
                         result.expired])
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["join spread", "completeness", "fairness (Jain)", "completed",
         "expired"], rows,
        title="Churn — arrival spread vs delivered completeness"))

    completeness = [row[1] for row in rows]
    # Later arrival spread strictly costs completeness overall.
    assert completeness[0] > completeness[-1]
    # Fairness degrades as later joiners do worse.
    assert rows[0][2] >= rows[-1][2] - 0.02


def bench_churn_leavers(benchmark, capsys):
    from benchmarks.conftest import print_block
    from repro.experiments.reporting import render_table

    def run_pair():
        stay = run_churn(ChurnConfig(join_spread=0.4))
        churn = run_churn(ChurnConfig(join_spread=0.4,
                                      leave_probability=0.5))
        return stay, churn

    stay, churn = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["scenario", "completeness", "completed", "expired", "dropped"],
        [["no leavers", stay.overall_completeness, stay.completed,
          stay.expired, stay.dropped],
         ["50% leave at 3/4", churn.overall_completeness,
          churn.completed, churn.expired, churn.dropped]],
        title="Churn — leavers"))
    assert churn.dropped > 0
    assert stay.dropped == 0


if __name__ == "__main__":
    sys.exit(main())
