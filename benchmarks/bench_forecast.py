"""Knowledge-gap ablation: FPN(1) perfect knowledge vs stochastic EIs.

The paper's evaluation assumes FPN(1) — the proxy knows the real update
trace. This bench quantifies how much gained completeness the online
policies lose when execution intervals come from fitted predictions
instead (the stochastic-modeling path of the paper's reference [9]),
across trace regularity regimes:

* clockwork (periodic) sources: predictions are near-exact, no loss;
* Poisson sources: point predictions miss, and the loss shrinks as the
  delivery window widens (wider windows forgive prediction error).
"""

from __future__ import annotations

import pytest

from repro.core import BudgetVector, Epoch
from repro.experiments.reporting import render_table
from repro.forecast import (
    AdaptiveEstimator,
    PeriodicityEstimator,
    PoissonRateEstimator,
    evaluate_knowledge_gap,
)
from repro.online import MRSFPolicy
from repro.traces import PeriodicUpdateModel, PoissonUpdateModel
from repro.workloads import GeneratorConfig

from benchmarks.conftest import print_block

_EPOCH = Epoch(400)
_TRAIN_END = 200
_NUM_RESOURCES = 24


def _traces():
    periodic = PeriodicUpdateModel(
        20, phases={r: (5 * r) % 20 for r in range(_NUM_RESOURCES)}
    ).generate(range(_NUM_RESOURCES), _EPOCH)
    poisson = PoissonUpdateModel(16, seed=77).generate(
        range(_NUM_RESOURCES), _EPOCH)
    return {"periodic": periodic, "poisson": poisson}


def bench_forecast_knowledge_gap(benchmark, capsys):
    traces = _traces()
    estimators = {
        "poisson-est": PoissonRateEstimator(),
        "periodic-est": PeriodicityEstimator(),
        "adaptive": AdaptiveEstimator(),
    }

    def run_grid():
        rows = []
        for trace_label, trace in traces.items():
            for window in (6, 12):
                config = GeneratorConfig(
                    num_profiles=40, max_rank=2, window=window,
                    grouping="indexed", seed=13)
                for est_label, estimator in estimators.items():
                    result = evaluate_knowledge_gap(
                        trace, estimator, _TRAIN_END, config, _EPOCH,
                        BudgetVector(1), MRSFPolicy())
                    rows.append([trace_label, window, est_label,
                                 result.gc_perfect,
                                 result.gc_predicted,
                                 result.degradation])
        return rows

    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["trace", "window", "estimator", "GC perfect", "GC predicted",
         "degradation"], rows,
        title="Ablation — knowledge gap (FPN(1) vs stochastic EIs)"))

    by_key = {(row[0], row[1], row[2]): row for row in rows}
    # Clockwork sources: the periodic/adaptive estimators lose (almost)
    # nothing.
    for estimator in ("periodic-est", "adaptive"):
        assert by_key[("periodic", 6, estimator)][5] < 0.05
    # Poisson sources: predictions do lose completeness...
    assert by_key[("poisson", 6, "poisson-est")][5] > 0.1
    # ...and wider windows forgive prediction error.
    assert (by_key[("poisson", 12, "poisson-est")][5]
            <= by_key[("poisson", 6, "poisson-est")][5] + 0.02)
