"""Figure 3: policy comparison on the (synthetic) eBay auction trace.

Paper setting: AuctionWatch(3), 400 auctions, window W = 20, budget C = 2.
Expected shape (paper §5.2): the t-interval-aware policies MRSF(P) and
M-EDF(P) beat S-EDF, and preemption helps the rank/multi-EI policies, with
up to ~20% gap between (P) and (NP) variants.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure3
from repro.experiments.figures import ALL_POLICY_VARIANTS
from repro.experiments.reporting import render_table

from benchmarks.conftest import print_block


@pytest.fixture(scope="module")
def fig3(bench_scale):
    return figure3(bench_scale)


def bench_fig3_auction_trace(benchmark, bench_scale, fig3, capsys):
    benchmark.pedantic(lambda: figure3("smoke"), rounds=1, iterations=1)

    rows = [[label, fig3.outcomes[label].mean_gc,
             fig3.outcomes[label].stdev_gc]
            for label in ALL_POLICY_VARIANTS]
    print_block(capsys, render_table(
        ["policy", "mean GC", "stdev"], rows,
        title="Figure 3 — eBay-like trace, AuctionWatch(3), W=20, C=2"))

    gc = {label: fig3.mean_gc(label) for label in ALL_POLICY_VARIANTS}
    if bench_scale == "smoke":
        return  # too noisy for shape assertions
    # MRSF(P)/M-EDF(P) beat both S-EDF variants.
    assert gc["MRSF(P)"] > gc["S-EDF(NP)"]
    assert gc["M-EDF(P)"] > gc["S-EDF(NP)"]
    assert gc["M-EDF(P)"] >= gc["S-EDF(P)"] - 0.02
    assert gc["MRSF(P)"] >= gc["S-EDF(P)"] - 0.02
    # Preemption helps the t-interval-aware policies.
    assert gc["MRSF(P)"] >= gc["MRSF(NP)"]
    assert gc["M-EDF(P)"] >= gc["M-EDF(NP)"]
