"""Micro-benchmarks of the library's hot paths.

Unlike the figure benches (one-shot sweeps), these use pytest-benchmark's
normal repeated timing to characterize the building blocks: policy
scoring, probe selection, the simulator loop, capture evaluation, and the
offline matcher.
"""

from __future__ import annotations

import pytest

from repro.core import BudgetVector, Epoch, evaluate_schedule
from repro.experiments import ExperimentConfig, make_instance
from repro.offline import ProbeAssigner
from repro.online import (
    Candidate,
    MEDFPolicy,
    MRSFPolicy,
    SEDFPolicy,
    TIntervalState,
    select_probes,
)
from repro.simulation import run_online

_CONFIG = ExperimentConfig(
    epoch_length=200, num_resources=50, num_profiles=60, intensity=10.0,
    window=10, repetitions=1, grouping="overlap", seed=1234)


@pytest.fixture(scope="module")
def instance():
    return make_instance(_CONFIG, 0)


@pytest.fixture
def candidates(instance):
    # Function-scoped on purpose: benchmarked code mutates the states
    # (e.g. committing them during selection), so sharing one candidate
    # list across benches would contaminate later rounds.
    _trace, profiles = instance
    result: list[Candidate] = []
    for profile in profiles:
        for eta in profile:
            state = TIntervalState(eta, profile.rank)
            for ei in eta:
                if ei.active_at(50):
                    result.append(Candidate(state, ei))
    return result


def bench_policy_scoring_sedf(benchmark, candidates):
    policy = SEDFPolicy()
    benchmark(lambda: [policy.score(c, 50) for c in candidates])


def bench_policy_scoring_mrsf(benchmark, candidates):
    policy = MRSFPolicy()
    benchmark(lambda: [policy.score(c, 50) for c in candidates])


def bench_policy_scoring_medf(benchmark, candidates):
    policy = MEDFPolicy()
    benchmark(lambda: [policy.score(c, 50) for c in candidates])


def bench_select_probes(benchmark, candidates):
    policy = MRSFPolicy()
    benchmark(lambda: select_probes(policy, candidates, 50, 2, True))


def bench_full_online_run(benchmark, instance):
    _trace, profiles = instance
    benchmark.pedantic(
        lambda: run_online(profiles, _CONFIG.epoch,
                           _CONFIG.budget_vector, MRSFPolicy()),
        rounds=3, iterations=1)


def bench_evaluate_schedule(benchmark, instance):
    _trace, profiles = instance
    result = run_online(profiles, _CONFIG.epoch, _CONFIG.budget_vector,
                        MRSFPolicy())
    benchmark(lambda: evaluate_schedule(profiles, result.schedule))


def bench_probe_assigner(benchmark, instance):
    _trace, profiles = instance
    etas = list(profiles.tintervals())

    def assign_all():
        assigner = ProbeAssigner(Epoch(200), BudgetVector(1))
        return sum(1 for eta in etas if assigner.try_add(eta))

    benchmark.pedantic(assign_all, rounds=3, iterations=1)
