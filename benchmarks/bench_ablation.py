"""Ablation benches for the design choices DESIGN.md calls out.

1. **t-interval grouping** (indexed vs overlap): the policy ordering of
   Figure 3 depends on t-intervals pairing *temporally overlapping* EIs;
   this ablation quantifies the effect.
2. **Preemption**: P vs NP across the three policies at the baseline.
3. **Paper policies vs naive baselines**: S-EDF/MRSF/M-EDF against
   Random/FCFS/Coverage.
4. **Quota semantics** (§6 extension): all-required vs 2-of-k quotas on
   the same instances.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, make_instance, run_setting
from repro.experiments.reporting import render_table
from repro.extensions import QuotaMap, run_with_quotas
from repro.online import make_policy
from repro.simulation import run_online

from benchmarks.conftest import print_block

_BASE = ExperimentConfig(
    epoch_length=300, num_resources=120, num_profiles=150,
    intensity=10.0, window=15, repetitions=2, seed=90)


def bench_ablation_grouping(benchmark, capsys):
    """Indexed vs overlap grouping under the same trace statistics."""
    def run_both():
        rows = []
        for grouping in ("indexed", "overlap"):
            outcome = run_setting(
                _BASE.with_(grouping=grouping),
                policies=["S-EDF(P)", "MRSF(P)", "M-EDF(P)"])
            for label in outcome.labels():
                rows.append([grouping, label, outcome.mean_gc(label)])
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["grouping", "policy", "mean GC"], rows,
        title="Ablation — t-interval grouping"))


def bench_ablation_preemption(benchmark, capsys):
    """P vs NP for all three policies at the baseline."""
    def run_all():
        outcome = run_setting(_BASE, policies=[
            "S-EDF(NP)", "S-EDF(P)", "MRSF(NP)", "MRSF(P)",
            "M-EDF(NP)", "M-EDF(P)"])
        return [[label, outcome.mean_gc(label)]
                for label in outcome.labels()]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["policy", "mean GC"], rows, title="Ablation — preemption"))
    gc = dict(rows)
    assert gc["MRSF(P)"] >= gc["MRSF(NP)"]
    assert gc["M-EDF(P)"] >= gc["M-EDF(NP)"]


def bench_ablation_vs_baselines(benchmark, capsys):
    """The paper's policies against naive baselines."""
    def run_all():
        outcome = run_setting(_BASE, policies=[
            "MRSF(P)", "M-EDF(P)", "S-EDF(P)", "RANDOM", "FCFS",
            "COVERAGE", "LFF"])
        return [[label, outcome.mean_gc(label)]
                for label in outcome.labels()]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["policy", "mean GC"], rows,
        title="Ablation — paper policies vs naive baselines"))
    gc = dict(rows)
    assert gc["MRSF(P)"] > gc["RANDOM"]
    assert gc["M-EDF(P)"] > gc["FCFS"]


def bench_ablation_rank_level_variants(benchmark, capsys):
    """What inside MRSF does the work? Residual-awareness.

    StaticRank uses the same information level but ignores capture
    progress; anti-MRSF inverts the preference. Expected:
    MRSF > StaticRank > anti-MRSF.
    """
    def run_all():
        outcome = run_setting(_BASE, policies=[
            "MRSF(P)", "STATICRANK", "ANTI-MRSF"])
        return [[label, outcome.mean_gc(label)]
                for label in outcome.labels()]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["policy", "mean GC"], rows,
        title="Ablation — rank-level variants"))
    gc = dict(rows)
    assert gc["MRSF(P)"] >= gc["STATICRANK"]
    assert gc["STATICRANK"] >= gc["ANTI-MRSF"] - 0.02


def bench_ablation_budget_shape(benchmark, capsys):
    """Same total budget, different temporal shapes.

    The paper uses a constant C; the model allows any per-chronon vector.
    This ablation compares a constant budget of 1/chronon against a
    bursty shape (2 every other chronon) and a front-loaded shape
    (2/chronon for the first half, 0 after) with the same probe total.
    Expected: constant >= bursty >> front-loaded (late t-intervals starve).
    """
    from repro.core import BudgetVector
    from repro.online import make_policy
    from repro.simulation import run_online

    config = _BASE.with_(repetitions=1)
    _trace, profiles = make_instance(config, 0)
    epoch = config.epoch
    policy = make_policy("MRSF")
    horizon = config.epoch_length

    shapes = {
        "constant 1": BudgetVector(1),
        "bursty 2-every-2": BudgetVector(
            0, overrides={c: 2 for c in range(1, horizon + 1, 2)}),
        "front-loaded": BudgetVector(
            0, overrides={c: 2 for c in range(1, horizon // 2 + 1)}),
    }

    def run_all():
        rows = []
        for label, budget in shapes.items():
            result = run_online(profiles, epoch, budget, policy)
            rows.append([label, budget.total_over(epoch), result.gc])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_block(capsys, render_table(
        ["budget shape", "total probes", "GC"], rows,
        title="Ablation — budget shaping (equal totals)"))
    gc = {row[0]: row[2] for row in rows}
    assert gc["constant 1"] >= gc["bursty 2-every-2"] - 0.02
    assert gc["bursty 2-every-2"] > gc["front-loaded"]


def bench_ablation_offline_solvers(benchmark, capsys):
    """Local-Ratio decomposition vs plain greedy acceptance.

    Both share the exact matching feasibility check; the ablation
    isolates the value of the local-ratio acceptance order.
    """
    from repro.offline import GreedyOfflineSolver, LocalRatioApproximation

    config = _BASE.with_(window=0, grouping="indexed", num_profiles=100)
    _trace, profiles = make_instance(config, 0)
    epoch = config.epoch
    budget = config.budget_vector

    def run_both():
        local_ratio = LocalRatioApproximation().solve(profiles, epoch,
                                                      budget)
        greedy = GreedyOfflineSolver().solve(profiles, epoch, budget)
        return local_ratio, greedy

    local_ratio, greedy = benchmark.pedantic(run_both, rounds=1,
                                             iterations=1)
    print_block(capsys, render_table(
        ["solver", "GC (accepted)", "GC (free riders)", "runtime (s)"],
        [["local-ratio", local_ratio.gc,
          local_ratio.extras["gc_with_free_riders"],
          local_ratio.runtime_seconds],
         ["greedy", greedy.gc, greedy.extras["gc_with_free_riders"],
          greedy.runtime_seconds]],
        title="Ablation — offline acceptance order"))


def bench_ablation_quota_semantics(benchmark, capsys):
    """All-required vs 2-of-k capture quotas (paper §6 extension)."""
    _trace, profiles = make_instance(_BASE, 0)
    epoch = _BASE.epoch
    budget = _BASE.budget_vector
    policy = make_policy("MRSF")

    def run_both():
        strict = run_online(profiles, epoch, budget, policy)
        two_of_k = QuotaMap({
            (eta.profile_id, eta.tinterval_id): min(2, eta.size)
            for eta in profiles.tintervals()
        })
        relaxed = run_with_quotas(profiles, epoch, budget, policy,
                                  two_of_k)
        return strict, relaxed

    strict, relaxed = benchmark.pedantic(run_both, rounds=1,
                                         iterations=1)
    print_block(capsys, render_table(
        ["semantics", "GC"],
        [["all-required", strict.gc], ["2-of-k quota", relaxed.gc]],
        title="Ablation — quota semantics"))
    assert relaxed.gc >= strict.gc - 1e-9
