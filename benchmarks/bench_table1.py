"""Table 1 companion: all six policy variants at the baseline setting.

Regenerates the baseline configuration dump (the paper's Table 1) and the
gained completeness of every policy variant at that baseline.
"""

from __future__ import annotations

import pytest

from repro.experiments import baseline, run_setting, table1
from repro.experiments.figures import ALL_POLICY_VARIANTS
from repro.experiments.reporting import render_table

from benchmarks.conftest import print_block


@pytest.fixture(scope="module")
def table1_outcome(bench_scale):
    return table1(bench_scale)


def bench_table1_baseline_run(benchmark, bench_scale, table1_outcome,
                              capsys):
    """Time one full policy run at the baseline; print the table."""
    config = baseline(bench_scale).with_(repetitions=1)
    benchmark.pedantic(
        lambda: run_setting(config, policies=["MRSF(P)"]),
        rounds=1, iterations=1)

    rows = [[label,
             table1_outcome.outcomes[label].mean_gc,
             table1_outcome.outcomes[label].stdev_gc,
             table1_outcome.outcomes[label].mean_runtime]
            for label in ALL_POLICY_VARIANTS]
    print_block(capsys, render_table(
        ["policy", "mean GC", "stdev", "runtime (s)"], rows,
        title="Table 1 companion — baseline gained completeness"))
    print_block(capsys, render_table(
        ["parameter", "value"], table1_outcome.config.describe(),
        title="Table 1 — controlled parameters (baseline)"))

    # Shape: the rank/multi-EI preemptive policies lead at the baseline.
    gc = {label: table1_outcome.mean_gc(label)
          for label in ALL_POLICY_VARIANTS}
    assert gc["MRSF(P)"] > gc["S-EDF(NP)"]
    assert gc["M-EDF(P)"] > gc["S-EDF(NP)"]
