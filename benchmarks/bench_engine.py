"""Engine performance trajectory: reference vs. fast, serial vs. parallel.

Measures median wall-times of the two simulation engines
(:class:`~repro.simulation.proxy.ProxySimulator` vs
:class:`~repro.simulation.engine.FastProxySimulator`) over the paper's
headline policy line-up at two instance scales, plus the serial vs.
process-pool sweep executor, and writes the numbers to
``BENCH_engine.json`` so future changes can be compared against a
tracked baseline::

    PYTHONPATH=src python benchmarks/bench_engine.py \
        --output BENCH_engine.json

The ``target`` scale (epoch 200, 50 resources, 60 profiles) matches
``bench_micro.bench_full_online_run``. Sweep-scaling numbers depend on
the machine: ``cpu_count`` is recorded and the reported ``efficiency``
is the speedup divided by the *effective* worker count
(``min(workers, cpu_count)``), so a single-core CI box reports pool
overhead honestly instead of fake linear scaling.

The module doubles as a pytest-benchmark bench
(``bench_engine_speedup``) asserting the fast engine actually is faster.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from dataclasses import asdict

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    DEFAULT_POLICIES,
    make_instance,
    sweep,
)
from repro.online.registry import parse_policy_spec
from repro.simulation.proxy import run_online

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["bench_engines", "bench_sweep_scaling", "main"]

#: Instance scales measured by the engine bench. ``target`` is the
#: ``bench_full_online_run`` scale; ``tiny`` exists for CI smoke runs.
SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        epoch_length=40, num_resources=10, num_profiles=12, intensity=5.0,
        window=5, repetitions=1, grouping="overlap", seed=1234),
    "small": ExperimentConfig(
        epoch_length=100, num_resources=25, num_profiles=30, intensity=8.0,
        window=8, repetitions=1, grouping="overlap", seed=1234),
    "target": ExperimentConfig(
        epoch_length=200, num_resources=50, num_profiles=60, intensity=10.0,
        window=10, repetitions=1, grouping="overlap", seed=1234),
}

_SWEEP_WORKERS = (2, 4)


def _median_run(profiles, config: ExperimentConfig, spec: str,
                engine: str, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        policy, preemptive = parse_policy_spec(spec)
        started = time.perf_counter()
        run_online(profiles, config.epoch, config.budget_vector, policy,
                   preemptive=preemptive, engine=engine)
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def bench_engines(scale: str, rounds: int = 5,
                  policies=DEFAULT_POLICIES) -> dict:
    """Median reference vs. fast wall-times at one scale, per policy."""
    config = SCALES[scale]
    _trace, profiles = make_instance(config, 0)
    per_policy: dict[str, dict] = {}
    total_ref = 0.0
    total_fast = 0.0
    for spec in policies:
        reference_s = _median_run(profiles, config, spec, "reference",
                                  rounds)
        fast_s = _median_run(profiles, config, spec, "fast", rounds)
        total_ref += reference_s
        total_fast += fast_s
        per_policy[spec] = {
            "reference_s": reference_s,
            "fast_s": fast_s,
            "speedup": reference_s / fast_s,
        }
    return {
        "config": asdict(config),
        "policies": per_policy,
        "total_reference_s": total_ref,
        "total_fast_s": total_fast,
        "speedup": total_ref / total_fast,
    }


def bench_sweep_scaling(rounds: int = 3, scale: str = "small",
                        workers_list=_SWEEP_WORKERS) -> dict:
    """Serial vs. process-pool sweep wall-times (same outputs)."""
    config = SCALES[scale].with_(repetitions=4)
    values = [1, 2]
    cpus = os.cpu_count() or 1

    def run_once(workers):
        started = time.perf_counter()
        sweep("bench", config, "budget", values, workers=workers)
        return time.perf_counter() - started

    serial_s = statistics.median(run_once(None) for _ in range(rounds))
    parallel = {}
    for workers in workers_list:
        seconds = statistics.median(
            run_once(workers) for _ in range(rounds))
        speedup = serial_s / seconds
        effective = min(workers, cpus)
        parallel[str(workers)] = {
            "seconds": seconds,
            "speedup": speedup,
            "efficiency": speedup / effective,
        }
    return {
        "config": asdict(config),
        "swept_values": values,
        "cpu_count": cpus,
        "serial_s": serial_s,
        "parallel": parallel,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the simulation engines and sweep executor, "
                    "writing BENCH_engine.json")
    parser.add_argument("--scales", default="small,target",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(SCALES)})")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per measurement (median wins)")
    parser.add_argument("--sweep-rounds", type=int, default=3,
                        help="timing rounds for the sweep executor")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the sweep-scaling measurement")
    parser.add_argument("--output", default="BENCH_engine.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    scales = [scale.strip() for scale in args.scales.split(",")
              if scale.strip()]
    report = {
        **provenance_header("bench_engine.py"),
        "policies": list(DEFAULT_POLICIES),
        "rounds": args.rounds,
        "scales": {},
    }
    for scale in scales:
        print(f"[bench_engine] measuring scale {scale!r} ...",
              file=sys.stderr)
        report["scales"][scale] = bench_engines(scale, rounds=args.rounds)
        summary = report["scales"][scale]
        print(f"[bench_engine]   speedup {summary['speedup']:.2f}x "
              f"(ref {summary['total_reference_s']*1e3:.1f}ms, "
              f"fast {summary['total_fast_s']*1e3:.1f}ms)",
              file=sys.stderr)
    if not args.skip_sweep:
        print("[bench_engine] measuring sweep scaling ...", file=sys.stderr)
        report["sweep"] = bench_sweep_scaling(rounds=args.sweep_rounds,
                                              scale=scales[0])
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench_engine] wrote {args.output}", file=sys.stderr)
    return 0


def bench_engine_speedup(benchmark):
    """pytest-benchmark hook: fast engine at the target scale, and a
    sanity assertion that it beats the reference."""
    config = SCALES["target"]
    _trace, profiles = make_instance(config, 0)

    def run_fast():
        policy, preemptive = parse_policy_spec("MRSF(P)")
        return run_online(profiles, config.epoch, config.budget_vector,
                          policy, preemptive=preemptive, engine="fast")

    benchmark.pedantic(run_fast, rounds=3, iterations=1)
    reference_s = _median_run(profiles, config, "MRSF(P)", "reference", 3)
    fast_s = _median_run(profiles, config, "MRSF(P)", "fast", 3)
    assert fast_s < reference_s


if __name__ == "__main__":
    sys.exit(main())
