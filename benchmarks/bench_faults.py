"""Graceful-degradation bench: GC vs. origin-server failure rate.

Beyond the paper (whose probes always succeed): every policy family's
gained completeness must degrade *gracefully* — monotonically-ish in the
failure rate, no crashes, no cliff — and the circuit breaker must pay
for itself under a permanent single-resource outage by redirecting the
budget that would be burned on the dead resource.
"""

from __future__ import annotations

from repro.experiments import breaker_ablation, fault_sweep
from repro.experiments.reporting import sweep_table

from benchmarks.conftest import print_block

FAULT_RATES = (0.0, 0.25, 0.5)


def bench_fault_degradation(benchmark, capsys, bench_scale):
    def run_sweep():
        return fault_sweep(bench_scale, rates=FAULT_RATES)

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(capsys,
                "Graceful degradation — GC vs. probe failure rate\n"
                + sweep_table(result, metric="gc"))

    for label in result.labels():
        series = result.series(label, metric="gc")
        # Reliability is strictly worth something, and even at a 50%
        # failure rate the run completes with usable completeness.
        assert series[0] > series[-1], label
        assert series[-1] > 0.0, label


def bench_breaker_ablation(benchmark, capsys, bench_scale):
    def run_ablation():
        return breaker_ablation(bench_scale)

    outcome = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_block(
        capsys,
        "Breaker ablation (resource 0 dead all epoch): "
        f"GC with breaker {outcome['with_breaker']:.4f} vs. "
        f"without {outcome['without_breaker']:.4f}")
    # Quarantining the dead resource redirects its wasted budget.
    assert outcome["with_breaker"] >= outcome["without_breaker"]
