"""Figure 7: impact of user preferences (alpha and beta Zipf skews).

Expected shape (paper §5.6): gained completeness increases with alpha
(inter-user preference: popular resources concentrate demand, so
intra-resource overlap becomes exploitable) and increases with beta
(intra-user preference: simpler profiles are easier to satisfy).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure7
from repro.experiments.reporting import sweep_table

from benchmarks.conftest import print_block


@pytest.fixture(scope="module")
def fig7(bench_scale):
    return figure7(bench_scale)


def bench_fig7_user_preferences(benchmark, bench_scale, fig7, capsys):
    benchmark.pedantic(lambda: figure7("smoke"), rounds=1, iterations=1)

    print_block(capsys, sweep_table(fig7.left))
    print_block(capsys, sweep_table(fig7.right))

    if bench_scale == "smoke":
        return
    # Panel 1: GC rises with alpha for every policy.
    for label in fig7.left.labels():
        series = fig7.left.series(label)
        assert series[-1] > series[0]
    # Panel 2: GC rises with beta for every policy.
    for label in fig7.right.labels():
        series = fig7.right.series(label)
        assert series[-1] > series[0]
    # The t-interval-aware policies keep their lead at moderate skew.
    mid = len(fig7.right.x_values) // 2
    assert fig7.right.series("MRSF(P)")[mid] >= \
        fig7.right.series("S-EDF(NP)")[mid]
