"""Figure 8: effect of budgetary limitations.

Expected shape (paper §5.7): gained completeness rises markedly with the
per-chronon budget C; the aggregated view of MRSF(P)/M-EDF(P) utilizes the
budget at least as well as S-EDF at the strict C = 1 end; S-EDF(NP) shows
sub-linear improvement compared to S-EDF(P).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure8
from repro.experiments.reporting import sweep_table

from benchmarks.conftest import print_block


@pytest.fixture(scope="module")
def fig8(bench_scale):
    return figure8(bench_scale)


def bench_fig8_budget_sweep(benchmark, bench_scale, fig8, capsys):
    benchmark.pedantic(lambda: figure8("smoke"), rounds=1, iterations=1)

    print_block(capsys, sweep_table(fig8))

    if bench_scale == "smoke":
        return
    for label in fig8.labels():
        series = fig8.series(label)
        # Monotone increasing in budget.
        for left, right in zip(series, series[1:]):
            assert right >= left - 0.02
        # Remarkable increase overall.
        assert series[-1] > series[0] * 1.3

    # At the strict C=1 end, the t-interval-aware policies lead.
    assert fig8.series("MRSF(P)")[0] >= fig8.series("S-EDF(NP)")[0]
    # S-EDF(NP) utilizes additional budget no better than S-EDF(P).
    sedf_np_gain = fig8.series("S-EDF(NP)")[-1] - fig8.series("S-EDF(NP)")[0]
    sedf_p_gain = fig8.series("S-EDF(P)")[-1] - fig8.series("S-EDF(P)")[0]
    assert sedf_p_gain >= sedf_np_gain - 0.05
