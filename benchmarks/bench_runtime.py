"""Async proxy service performance: throughput and tick latency.

Measures the :class:`~repro.runtime.aio.proxy.AsyncMonitoringProxy`
driving the chaos harness's scripted scenarios — the same construction
the soak invariants are proven on — and writes ``BENCH_runtime.json``
so future changes to the async stack are compared against a tracked
baseline::

    PYTHONPATH=src python benchmarks/bench_runtime.py \
        --output BENCH_runtime.json

Two scenario families are measured at each scale:

* ``healthy`` — fault-free; this is the async stack's overhead floor
  (coroutine fan-out, ledger, journal-less bookkeeping) and the
  capture-identity regime;
* ``fault-storm`` — drops, timeouts, and retries; this is where
  deadlines, backoff, and the breaker earn their keep, and where tick
  latency shows the cost of in-chronon recovery work.

Headline numbers per scenario: ``notifications_per_s`` (delivered
notifications over wall time) and ``tick_p99_ms`` (worst-case chronon
processing latency, the service's responsiveness bound).

The module doubles as a pytest-benchmark bench
(``bench_runtime_healthy_epoch``) asserting the healthy scenario stays
invariant-clean while being measured.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import time
from dataclasses import asdict, replace

from repro.runtime.aio.chaos import ChaosConfig, build_scenario, run_soak

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["bench_scenario", "main"]

#: Scenario scales. ``tiny`` exists for CI smoke runs; ``target`` is the
#: tracked baseline scale.
SCALES: dict[str, ChaosConfig] = {
    "tiny": ChaosConfig(epoch_length=40, num_resources=8,
                        num_profiles=12, budget=2, seed=1234),
    "target": ChaosConfig(epoch_length=200, num_resources=32,
                          num_profiles=60, budget=4, seed=1234),
}

#: The fault-storm overlay applied to a healthy scale.
_STORM = dict(failure_probability=0.25, timeout_probability=0.1,
              max_retries=2)


async def _measured_run(config: ChaosConfig):
    """One scripted run, timing every chronon tick."""
    epoch, plan, proxy = build_scenario(config)
    client = proxy.register_client("bench")
    tick_seconds: list[float] = []
    order_to_id: list[int] = []
    for profile in plan.initial:
        order_to_id.append(proxy.register_profile(client, profile))
    started = time.perf_counter()
    for chronon in range(1, epoch.last + 1):
        for profile in plan.arrivals.get(chronon, ()):
            order_to_id.append(proxy.register_profile(client, profile))
        for order in plan.cancels.get(chronon, ()):
            if order < len(order_to_id):
                profile_id = order_to_id[order]
                if proxy._registrations[profile_id].active:
                    proxy.unregister_profile(profile_id)
        tick_started = time.perf_counter()
        await proxy.astep()
        tick_seconds.append(time.perf_counter() - tick_started)
    wall = time.perf_counter() - started
    proxy._flush()
    return proxy.stats(), len(client.mailbox), wall, tick_seconds


def _percentile(values: list[float], fraction: float) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1, int(fraction * (len(ranked) - 1)))
    return ranked[index]


def bench_scenario(config: ChaosConfig, rounds: int = 3) -> dict:
    """Median-of-rounds measurement of one scenario."""
    runs = [asyncio.run(_measured_run(config)) for _ in range(rounds)]
    stats, delivered, _, _ = runs[0]
    wall = statistics.median(run[2] for run in runs)
    ticks = [second for run in runs for second in run[3]]
    return {
        "config": asdict(config),
        "delivered": delivered,
        "completed": stats.completed,
        "expired": stats.expired,
        "requests_sent": stats.requests_sent,
        "probes_failed": stats.probes_failed,
        "retries": stats.retries,
        "wall_s": wall,
        "notifications_per_s": delivered / wall if wall else 0.0,
        "ticks_per_s": config.epoch_length / wall if wall else 0.0,
        "tick_p50_ms": _percentile(ticks, 0.50) * 1e3,
        "tick_p99_ms": _percentile(ticks, 0.99) * 1e3,
        "tick_max_ms": max(ticks) * 1e3,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the async proxy runtime, writing "
                    "BENCH_runtime.json")
    parser.add_argument("--scales", default="target",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(SCALES)})")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per scenario (median wins)")
    parser.add_argument("--output", default="BENCH_runtime.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    scales = [scale.strip() for scale in args.scales.split(",")
              if scale.strip()]
    report = {
        **provenance_header("bench_runtime.py"),
        "rounds": args.rounds,
        "scales": {},
    }
    for scale in scales:
        healthy_config = SCALES[scale]
        storm_config = replace(healthy_config, **_STORM)
        entry = {}
        for name, config in (("healthy", healthy_config),
                             ("fault-storm", storm_config)):
            print(f"[bench_runtime] measuring {scale}/{name} ...",
                  file=sys.stderr)
            entry[name] = bench_scenario(config, rounds=args.rounds)
            summary = entry[name]
            print(f"[bench_runtime]   "
                  f"{summary['notifications_per_s']:.0f} notifications/s, "
                  f"tick p99 {summary['tick_p99_ms']:.2f}ms "
                  f"({summary['requests_sent']} requests, "
                  f"{summary['probes_failed']} failed)",
                  file=sys.stderr)
        report["scales"][scale] = entry
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench_runtime] wrote {args.output}", file=sys.stderr)
    return 0


def bench_runtime_healthy_epoch(benchmark):
    """pytest-benchmark hook: a healthy tiny-scale epoch end to end,
    with the soak invariants asserted on the measured configuration."""
    config = SCALES["tiny"]

    def run_epoch():
        return asyncio.run(_measured_run(config))

    benchmark.pedantic(run_epoch, rounds=3, iterations=1)
    report = asyncio.run(run_soak(config))
    assert report.ok, report.describe()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
