"""Batch-engine fault plane vs. fast engine on degradation sweeps.

Measures the wall time of the graceful-degradation sweep — every fault
policy variant x every failure rate x every repetition, with the
standard retry allowance and circuit breaker — through
:func:`repro.experiments.faults.fault_sweep` twice: once per-combination
on the fast engine, once as columnar mega blocks with the lowered fault
plane (``engine="batch"``, ALGORITHMS.md §14), and writes the numbers to
``BENCH_faults.json``::

    PYTHONPATH=src python benchmarks/bench_faults_batch.py \
        --output BENCH_faults.json

The ``target`` scale (epoch 200, 50 resources, 60 profiles, 3
repetitions) matches ``bench_batch``; there the whole sweep — 8 policy
variants x 6 failure rates x 3 repetitions = 144 faulty lanes — runs as
one columnar block per lane chunk. Both engines produce identical
gained-completeness series (asserted on every round; the fault plane is
RNG-stream exact, not statistically similar). The instance cache is
warmed before timing so the numbers isolate simulation, not generation.

``--smoke`` restricts the run to the tiny scale with fewer rounds for
CI.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import asdict

from repro.experiments.config import ExperimentConfig
from repro.experiments.faults import (
    DEFAULT_FAILURE_RATES,
    FAULT_POLICY_VARIANTS,
    fault_sweep,
)

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["bench_fault_sweep", "main"]

#: Scales mirror bench_batch's; the acceptance scale is ``target``.
SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        epoch_length=40, num_resources=10, num_profiles=12, intensity=5.0,
        window=5, repetitions=2, grouping="overlap", seed=1234),
    "target": ExperimentConfig(
        epoch_length=200, num_resources=50, num_profiles=60, intensity=10.0,
        window=10, repetitions=3, grouping="overlap", seed=1234),
}


def bench_fault_sweep(scale: str, rounds: int = 5,
                      rates=DEFAULT_FAILURE_RATES) -> dict:
    """Median fast vs. batch wall time of one degradation sweep."""
    config = SCALES[scale]

    def run_once(engine: str):
        started = time.perf_counter()
        result = fault_sweep(rates=rates, engine=engine, config=config)
        return time.perf_counter() - started, result

    # Warm the instance cache (and numpy) outside the timed region.
    _, reference = run_once("fast")
    fast_times = []
    batch_times = []
    for _ in range(rounds):
        seconds, outcome = run_once("fast")
        fast_times.append(seconds)
        seconds, outcome = run_once("batch")
        batch_times.append(seconds)
        if outcome.fell_back:
            raise AssertionError(
                f"{outcome.fell_back} fault lanes fell back to the "
                "fast engine")
        for label in reference.labels():
            if outcome.series(label) != reference.series(label):
                raise AssertionError(
                    f"batch fault sweep diverged from fast on {label}")
    fast_s = statistics.median(fast_times)
    batch_s = statistics.median(batch_times)
    lanes = len(FAULT_POLICY_VARIANTS) * len(rates) * config.repetitions
    return {
        "config": asdict(config),
        "failure_rates": list(rates),
        "lanes": lanes,
        "fast_s": fast_s,
        "batch_s": batch_s,
        "speedup": fast_s / batch_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the batch engine's fault plane against "
                    "the fast engine on graceful-degradation sweeps, "
                    "writing BENCH_faults.json")
    parser.add_argument("--scales", default="tiny,target",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(SCALES)})")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per measurement (median wins)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: tiny scale only, 2 rounds")
    parser.add_argument("--output", default="BENCH_faults.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.smoke:
        scales = ["tiny"]
        rounds = 2
    else:
        scales = [scale.strip() for scale in args.scales.split(",")
                  if scale.strip()]
        rounds = args.rounds
    report = {
        **provenance_header("bench_faults_batch.py"),
        "policies": list(FAULT_POLICY_VARIANTS),
        "rounds": rounds,
        "scales": {},
    }
    for scale in scales:
        print(f"[bench_faults_batch] measuring scale {scale!r} ...",
              file=sys.stderr)
        report["scales"][scale] = bench_fault_sweep(scale, rounds=rounds)
        summary = report["scales"][scale]
        print(f"[bench_faults_batch]   speedup {summary['speedup']:.2f}x "
              f"over {summary['lanes']} faulty lanes "
              f"(fast {summary['fast_s']*1e3:.1f}ms, "
              f"batch {summary['batch_s']*1e3:.1f}ms)",
              file=sys.stderr)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench_faults_batch] wrote {args.output}", file=sys.stderr)
    return 0


def bench_faulty_batch_speedup(benchmark):
    """pytest-benchmark hook: one batch-engine degradation sweep at the
    tiny scale, and a sanity assertion that it matches the fast engine
    with zero fallbacks."""
    config = SCALES["tiny"]
    rates = (0.0, 0.25, 0.5)

    def run_batch():
        return fault_sweep(rates=rates, engine="batch", config=config)

    batch_result = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    fast_result = fault_sweep(rates=rates, engine="fast", config=config)
    assert batch_result.fell_back == 0
    for label in fast_result.labels():
        assert batch_result.series(label) == fast_result.series(label)


if __name__ == "__main__":
    sys.exit(main())
