"""Shared helpers for the benchmark suite.

Every ``bench_figN.py`` regenerates one table/figure of the paper at the
``default`` scale (reduced sizes, same regime — see
``repro.experiments.config``), prints the same series the paper plots, and
asserts the paper's qualitative *shape* (who wins, where trends point).
Absolute numbers differ from the paper by design: the substrate is our
simulator, not the authors' 2008 testbed. Set ``REPRO_BENCH_SCALE=paper``
to run the full Table-1 sizes.

Figures are computed once per session (they are deterministic) and the
``benchmark`` fixture times a representative single run, so
``--benchmark-only`` produces meaningful timings without re-running
multi-minute sweeps dozens of times.
"""

from __future__ import annotations

import os

import pytest

#: Scale used by all figure benches; override via environment.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


def print_block(capsys, text: str) -> None:
    """Print a result table to the real terminal, bypassing capture."""
    with capsys.disabled():
        print()
        print(text)
