"""Columnar batch engine vs. fast engine on full-figure sweeps.

Measures the wall time of a figure-shaped budget sweep — every policy of
the paper's headline line-up x every budget value x every repetition,
all sharing generated instances — through the harness twice: once with
the per-combination fast engine, once with the columnar mega-batch
engine (``engine="batch"``), and writes the numbers to
``BENCH_batch.json``::

    PYTHONPATH=src python benchmarks/bench_batch.py \
        --output BENCH_batch.json

The ``target`` scale (epoch 200, 50 resources, 60 profiles) matches
``bench_engine``; there the whole sweep collapses into one columnar
block of repetitions x policies x budgets lanes. Both paths produce
identical gained-completeness series (asserted on every round). The
instance cache is warmed before timing so the numbers isolate
simulation, not generation.

``--smoke`` restricts the run to the tiny scale with fewer rounds for
CI.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import asdict

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import DEFAULT_POLICIES, sweep

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["bench_figure_sweep", "main"]

#: Scales mirror bench_engine's; repetitions make the mega blocks
#: multi-instance (the acceptance scale is ``target``).
SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        epoch_length=40, num_resources=10, num_profiles=12, intensity=5.0,
        window=5, repetitions=2, grouping="overlap", seed=1234),
    "target": ExperimentConfig(
        epoch_length=200, num_resources=50, num_profiles=60, intensity=10.0,
        window=10, repetitions=3, grouping="overlap", seed=1234),
}

_BUDGETS = [1, 2, 3, 4, 5]


def bench_figure_sweep(scale: str, rounds: int = 5,
                       policies=DEFAULT_POLICIES) -> dict:
    """Median fast vs. batch wall time of one full budget sweep."""
    config = SCALES[scale]

    def run_once(engine: str):
        started = time.perf_counter()
        result = sweep("bench", config, "budget", _BUDGETS,
                       policies=list(policies), engine=engine)
        return time.perf_counter() - started, result

    # Warm the instance cache (and numpy) outside the timed region.
    _, reference = run_once("fast")
    fast_times = []
    batch_times = []
    for _ in range(rounds):
        seconds, outcome = run_once("fast")
        fast_times.append(seconds)
        seconds, outcome = run_once("batch")
        batch_times.append(seconds)
        for label in reference.labels():
            if outcome.series(label) != reference.series(label):
                raise AssertionError(
                    f"batch sweep diverged from fast on {label}")
    fast_s = statistics.median(fast_times)
    batch_s = statistics.median(batch_times)
    lanes = len(policies) * len(_BUDGETS) * config.repetitions
    return {
        "config": asdict(config),
        "budgets": _BUDGETS,
        "lanes": lanes,
        "fast_s": fast_s,
        "batch_s": batch_s,
        "speedup": fast_s / batch_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the columnar batch engine against the fast "
                    "engine on full-figure sweeps, writing "
                    "BENCH_batch.json")
    parser.add_argument("--scales", default="tiny,target",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(SCALES)})")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per measurement (median wins)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: tiny scale only, 2 rounds")
    parser.add_argument("--output", default="BENCH_batch.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.smoke:
        scales = ["tiny"]
        rounds = 2
    else:
        scales = [scale.strip() for scale in args.scales.split(",")
                  if scale.strip()]
        rounds = args.rounds
    report = {
        **provenance_header("bench_batch.py"),
        "policies": list(DEFAULT_POLICIES),
        "rounds": rounds,
        "scales": {},
    }
    for scale in scales:
        print(f"[bench_batch] measuring scale {scale!r} ...",
              file=sys.stderr)
        report["scales"][scale] = bench_figure_sweep(scale, rounds=rounds)
        summary = report["scales"][scale]
        print(f"[bench_batch]   speedup {summary['speedup']:.2f}x "
              f"over {summary['lanes']} lanes "
              f"(fast {summary['fast_s']*1e3:.1f}ms, "
              f"batch {summary['batch_s']*1e3:.1f}ms)",
              file=sys.stderr)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench_batch] wrote {args.output}", file=sys.stderr)
    return 0


def bench_batch_speedup(benchmark):
    """pytest-benchmark hook: one batch-engine sweep at the tiny scale,
    and a sanity assertion that it matches the fast engine."""
    config = SCALES["tiny"]

    def run_batch():
        return sweep("bench", config, "budget", [1, 2],
                     policies=list(DEFAULT_POLICIES), engine="batch")

    batch_result = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    fast_result = sweep("bench", config, "budget", [1, 2],
                        policies=list(DEFAULT_POLICIES), engine="fast")
    for label in fast_result.labels():
        assert batch_result.series(label) == fast_result.series(label)


if __name__ == "__main__":
    sys.exit(main())
