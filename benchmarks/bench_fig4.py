"""Figure 4: online policies vs the offline approximation over rank(P).

Paper setting: W = 0 and C = 1 (``P^[1]`` instances). Expected shape
(paper §5.3): gained completeness decreases with rank; at rank 1 the
online policies are optimal; MRSF(P) beats the offline approximation
(paper: by 11-23%); S-EDF(NP) falls below the offline approximation for
rank > 2.
"""

from __future__ import annotations

import pytest

from repro.experiments import OFFLINE_LABEL, figure4
from repro.experiments.reporting import sweep_table

from benchmarks.conftest import print_block


@pytest.fixture(scope="module")
def fig4(bench_scale):
    return figure4(bench_scale)


def bench_fig4_rank_sweep(benchmark, bench_scale, fig4, capsys):
    benchmark.pedantic(lambda: figure4("smoke"), rounds=1, iterations=1)

    print_block(capsys, sweep_table(fig4))

    if bench_scale == "smoke":
        return
    mrsf = fig4.series("MRSF(P)")
    sedf = fig4.series("S-EDF(NP)")
    offline = fig4.series(OFFLINE_LABEL)

    # GC decreases with rank.
    assert mrsf[0] > mrsf[-1]
    # Rank 1: the online policies coincide (per-chronon optimal).
    assert abs(mrsf[0] - sedf[0]) < 1e-9
    # MRSF(P) dominates the offline approximation at every rank.
    for rank_index in range(len(mrsf)):
        assert mrsf[rank_index] >= offline[rank_index]
    # S-EDF(NP) is dominated by the offline approximation for rank > 2.
    for rank_index, rank in enumerate(fig4.x_values):
        if rank > 2:
            assert sedf[rank_index] <= offline[rank_index] + 0.01
