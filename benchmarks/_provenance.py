"""Shared provenance header for every benchmark report.

All ``BENCH_*.json`` files start from the same header block so reports
are comparable across machines and revisions: interpreter and numpy
versions, CPU budget, and the git revision the numbers were measured at.
Deliberately hostname-free — reports are committed, and machine names
are noise (and occasionally private).
"""

from __future__ import annotations

import os
import platform
import subprocess

import numpy as np

__all__ = ["provenance_header"]


def _git_rev() -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def provenance_header(script: str) -> dict:
    """The common header block for a benchmark report.

    ``script`` is the file name of the benchmark (e.g.
    ``"bench_engine.py"``); it lands in ``generated_by`` with the
    ``benchmarks/`` prefix.
    """
    return {
        "generated_by": f"benchmarks/{script}",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_rev": _git_rev(),
    }
