"""Instance-generation performance: reference vs. fast, cold vs. warm cache.

Measures median wall-times of :func:`repro.experiments.instances.\
generate_instance` on the reference and vectorized paths (which produce
identical instances seed-for-seed — see
``tests/properties/test_prop_instances.py``), plus the end-to-end effect
of the content-addressed instance cache on ``run_setting``/``sweep``
(cold disk store vs. warm reload), and writes the numbers to
``BENCH_instances.json``::

    PYTHONPATH=src python benchmarks/bench_instances.py \
        --output BENCH_instances.json

The ``target`` scale (epoch 200, 50 resources, 60 profiles) matches the
tracked engine/offline benches; the PR-5 acceptance bar is a >= 4x
generation speedup there for the default poisson source.

``--cache-check`` runs the CI smoke assertion instead: a cold and a warm
pass over a temporary cache directory must produce identical results
with non-zero hit counters.

The module doubles as a pytest-benchmark bench
(``bench_instance_generation``) asserting the fast path actually is
faster.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from dataclasses import asdict

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_setting, sweep
from repro.experiments.instances import (
    configure_instances,
    fast_default,
    generate_instance,
)

try:
    from benchmarks._provenance import provenance_header
except ImportError:  # run as a top-level script (python benchmarks/...)
    from _provenance import provenance_header

__all__ = ["bench_generation", "bench_cache", "main"]

#: Instance scales measured. ``target`` carries the acceptance bar;
#: ``tiny`` exists for CI smoke runs.
SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        epoch_length=40, num_resources=10, num_profiles=12, intensity=5.0,
        window=5, repetitions=1, grouping="overlap", seed=1234),
    "small": ExperimentConfig(
        epoch_length=100, num_resources=25, num_profiles=30, intensity=8.0,
        window=8, repetitions=1, grouping="overlap", seed=1234),
    "target": ExperimentConfig(
        epoch_length=200, num_resources=50, num_profiles=60, intensity=10.0,
        window=10, repetitions=1, grouping="overlap", seed=1234),
}


def _time_once(config: ExperimentConfig, source: str, fast: bool) -> float:
    """Wall-time of one full instance generation."""
    started = time.perf_counter()
    generate_instance(config, 0, source, fast=fast)
    return time.perf_counter() - started


def _time_generate(config: ExperimentConfig, source: str, fast: bool,
                   rounds: int) -> tuple[float, float]:
    """(best, median) wall-times over ``rounds`` generations.

    The *best* is the headline number (timeit-style: the minimum is the
    run least disturbed by scheduler noise, which matters on loaded CI
    boxes); the median is recorded alongside for transparency.
    """
    times = [_time_once(config, source, fast) for _ in range(rounds)]
    return min(times), statistics.median(times)


def bench_generation(scale: str, rounds: int = 20,
                     sources=("poisson", "auction")) -> dict:
    """Reference vs. fast generation wall-times at one scale.

    Reference and fast rounds are *interleaved* (one of each per round)
    so both paths sample the same background-load phases; the speedup is
    the ratio of the per-path minima. On a shared machine this is
    markedly more stable than timing each path in its own block.
    """
    config = SCALES[scale]
    per_source: dict[str, dict] = {}
    for source in sources:
        # Warm-up realizes lazy caches (CDFs, stream tables) outside
        # the timed region for both paths alike.
        _time_once(config, source, True)
        _time_once(config, source, False)
        reference_times = []
        fast_times = []
        for _ in range(rounds):
            reference_times.append(_time_once(config, source, False))
            fast_times.append(_time_once(config, source, True))
        reference_s = min(reference_times)
        fast_s = min(fast_times)
        reference_median_s = statistics.median(reference_times)
        fast_median_s = statistics.median(fast_times)
        per_source[source] = {
            "reference_s": reference_s,
            "fast_s": fast_s,
            "speedup": reference_s / fast_s,
            "reference_median_s": reference_median_s,
            "fast_median_s": fast_median_s,
            "median_speedup": reference_median_s / fast_median_s,
        }
    return {
        "config": asdict(config),
        "sources": per_source,
    }


def _outcome_table(run) -> dict[str, list[float]]:
    return {label: list(outcome.gc_values)
            for label, outcome in run.outcomes.items()}


def bench_cache(scale: str, rounds: int = 3) -> dict:
    """Cold vs. warm end-to-end wall-times through the instance cache.

    Runs the same budget sweep twice against one disk store: the first
    pass generates and stores every instance, the second reloads them
    (a fresh cache object stands in for a new process, so the hits are
    disk hits, not in-memory ones). Results must match exactly; the
    timing delta is the cache's end-to-end win.
    """
    config = SCALES[scale].with_(repetitions=2)
    values = [1, 2]
    previous_fast = fast_default()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            cold_cache = configure_instances(cache_dir=tmp, fast=True)
            started = time.perf_counter()
            cold = sweep("bench", config, "budget", values)
            cold_s = time.perf_counter() - started
            cold_stats = cold_cache.stats()
            warm_times = []
            warm = None
            for _ in range(rounds):
                warm_cache = configure_instances(cache_dir=tmp, fast=True)
                started = time.perf_counter()
                warm = sweep("bench", config, "budget", values)
                warm_times.append(time.perf_counter() - started)
            warm_s = statistics.median(warm_times)
            warm_stats = warm_cache.stats()
        identical = all(
            _outcome_table(run_cold) == _outcome_table(run_warm)
            for run_cold, run_warm in zip(cold.runs, warm.runs))
    finally:
        configure_instances(cache_dir=None, fast=previous_fast)
    return {
        "config": asdict(config),
        "swept_values": values,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
        "results_identical": identical,
    }


def cache_check(scale: str = "tiny") -> int:
    """CI smoke: cold + warm pass with non-zero hit counters.

    Returns a process exit code (0 = pass). Asserts that the cold pass
    stores every instance, the warm pass serves them from disk without
    regenerating anything, and both passes agree on every GC value.
    """
    config = SCALES[scale].with_(repetitions=2)
    with tempfile.TemporaryDirectory() as tmp:
        try:
            cold_cache = configure_instances(cache_dir=tmp, fast=True)
            cold = run_setting(config)
            cold_stats = cold_cache.stats()
            warm_cache = configure_instances(cache_dir=tmp, fast=True)
            warm = run_setting(config)
            warm_stats = warm_cache.stats()
        finally:
            configure_instances(cache_dir=None, fast=True)
    problems = []
    if cold_stats["misses"] == 0 or cold_stats["stores"] == 0:
        problems.append(f"cold pass did not populate the store: "
                        f"{cold_stats}")
    if warm_stats["disk_hits"] == 0 or warm_stats["misses"] > 0:
        problems.append(f"warm pass did not hit the store: {warm_stats}")
    if cold_stats["disk_errors"] or warm_stats["disk_errors"]:
        problems.append("disk errors recorded")
    if _outcome_table(cold) != _outcome_table(warm):
        problems.append("cold and warm results differ")
    for problem in problems:
        print(f"[bench_instances] CACHE CHECK FAILED: {problem}",
              file=sys.stderr)
    if not problems:
        print(f"[bench_instances] cache check passed "
              f"(cold {cold_stats}, warm {warm_stats})", file=sys.stderr)
    return 1 if problems else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark instance generation and the instance "
                    "cache, writing BENCH_instances.json")
    parser.add_argument("--scales", default="small,target",
                        help="comma-separated scales to measure "
                             f"(available: {','.join(SCALES)})")
    parser.add_argument("--rounds", type=int, default=20,
                        help="interleaved reference/fast timing rounds "
                             "per source (best-of wins)")
    parser.add_argument("--cache-rounds", type=int, default=3,
                        help="warm-pass timing rounds for the cache bench")
    parser.add_argument("--skip-cache", action="store_true",
                        help="skip the cold/warm cache measurement")
    parser.add_argument("--cache-check", action="store_true",
                        help="run the CI cache round-trip assertion "
                             "instead of the timing benches")
    parser.add_argument("--output", default="BENCH_instances.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.cache_check:
        return cache_check()

    scales = [scale.strip() for scale in args.scales.split(",")
              if scale.strip()]
    report = {
        **provenance_header("bench_instances.py"),
        "rounds": args.rounds,
        "scales": {},
    }
    for scale in scales:
        print(f"[bench_instances] measuring scale {scale!r} ...",
              file=sys.stderr)
        report["scales"][scale] = bench_generation(scale,
                                                   rounds=args.rounds)
        for source, numbers in report["scales"][scale]["sources"].items():
            print(f"[bench_instances]   {source}: "
                  f"{numbers['speedup']:.2f}x "
                  f"(ref {numbers['reference_s']*1e3:.1f}ms, "
                  f"fast {numbers['fast_s']*1e3:.1f}ms)",
                  file=sys.stderr)
    if not args.skip_cache:
        print("[bench_instances] measuring cache cold/warm ...",
              file=sys.stderr)
        report["cache"] = bench_cache(scales[0],
                                      rounds=args.cache_rounds)
        print(f"[bench_instances]   warm sweep {report['cache']['speedup']:.2f}x "
              f"(cold {report['cache']['cold_s']*1e3:.0f}ms, "
              f"warm {report['cache']['warm_s']*1e3:.0f}ms)",
              file=sys.stderr)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench_instances] wrote {args.output}", file=sys.stderr)
    return 0


def bench_instance_generation(benchmark):
    """pytest-benchmark hook: fast generation at the target scale, and
    a sanity assertion that it beats the reference path."""
    config = SCALES["target"]
    benchmark.pedantic(
        lambda: generate_instance(config, 0, "poisson", fast=True),
        rounds=3, iterations=1)
    reference_s, _ = _time_generate(config, "poisson", False, 3)
    fast_s, _ = _time_generate(config, "poisson", True, 3)
    assert fast_s < reference_s


if __name__ == "__main__":
    sys.exit(main())
