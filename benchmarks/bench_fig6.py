"""Figure 6: workload analysis (update intensity and profile count).

Expected shape (paper §5.5): gained completeness decreases as the update
intensity lambda grows (panel 1) and as the number of profiles grows
(panel 2); MRSF(P) and M-EDF(P) sit clearly above both S-EDF variants,
with MRSF(P) >= M-EDF(P) by a small margin.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure6
from repro.experiments.reporting import sweep_table

from benchmarks.conftest import print_block


@pytest.fixture(scope="module")
def fig6(bench_scale):
    return figure6(bench_scale)


def bench_fig6_workload_analysis(benchmark, bench_scale, fig6, capsys):
    benchmark.pedantic(lambda: figure6("smoke"), rounds=1, iterations=1)

    print_block(capsys, sweep_table(fig6.left))
    print_block(capsys, sweep_table(fig6.right))

    if bench_scale == "smoke":
        return
    for panel in (fig6.left, fig6.right):
        for label in panel.labels():
            series = panel.series(label)
            # Monotone decreasing trend (small noise tolerated).
            assert series[0] > series[-1]
        # The t-interval-aware policies dominate S-EDF wherever the
        # workload is budget-bound (near saturation, GC > 0.9, every
        # policy captures almost everything and orderings are noise).
        for index in range(len(panel.x_values)):
            mrsf = panel.series("MRSF(P)")[index]
            medf = panel.series("M-EDF(P)")[index]
            sedf_np = panel.series("S-EDF(NP)")[index]
            if sedf_np >= 0.9:
                continue
            assert mrsf >= sedf_np
            assert medf >= sedf_np
