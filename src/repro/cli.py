"""Command-line entry point: ``repro-experiments``.

Runs any of the paper's tables/figures and prints the series as ASCII
tables (optionally CSV). Examples::

    repro-experiments table1 --scale default
    repro-experiments fig4 --scale paper
    repro-experiments all --scale smoke --csv
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable

from repro.experiments import (
    ChurnSweep,
    FederationSweep,
    FigurePair,
    RunOutcome,
    SweepResult,
    churn_sweep,
    fault_sweep,
    federation_sweep,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    offline_comparison,
    table1,
)
from repro.experiments.reporting import render_table, sweep_csv, sweep_table

__all__ = ["main"]

_EXPERIMENTS: dict[str, Callable[[str], object]] = {
    "table1": table1,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "churn": churn_sweep,
    "faults": fault_sweep,
    "federation": federation_sweep,
    "offline": offline_comparison,
}


def _print_run_outcome(name: str, outcome: RunOutcome, as_csv: bool) -> None:
    rows = [
        [label, policy_outcome.mean_gc, policy_outcome.stdev_gc,
         policy_outcome.mean_runtime]
        for label, policy_outcome in outcome.outcomes.items()
    ]
    if as_csv:
        print(f"# {name}")
        print("policy,mean_gc,stdev_gc,mean_runtime_s")
        for label, gc, stdev, runtime in rows:
            print(f"{label},{gc:.6f},{stdev:.6f},{runtime:.6f}")
        return
    print(render_table(
        ["policy", "mean GC", "stdev", "runtime (s)"], rows, title=name))
    print()
    print(render_table(
        ["parameter", "value"], outcome.config.describe(),
        title=f"{name} — configuration"))


def _print_sweep(result: SweepResult, as_csv: bool,
                 metrics: tuple[str, ...] = ("gc",)) -> None:
    for metric in metrics:
        if as_csv:
            print(f"# {result.name} ({metric})")
            print(sweep_csv(result, metric=metric), end="")
        else:
            print(sweep_table(result, metric=metric))
            print()


def _print_federation(result: FederationSweep, as_csv: bool) -> None:
    rows = [
        ["monolith", result.monolith.mean_gc, 0.0,
         result.monolith.mean_runtime, 1.0, 0, 0],
    ]
    for outcome in result.outcomes:
        rows.append([
            f"K={outcome.shards}", outcome.mean_gc,
            result.degradation(outcome.shards), outcome.mean_runtime,
            result.speedup(outcome.shards), outcome.stolen_budget,
            outcome.steal_transfers,
        ])
    if as_csv:
        print(f"# federation ({result.policy})")
        print("setting,mean_gc,gc_degradation,mean_runtime_s,speedup,"
              "stolen_budget,steal_transfers")
        for label, gc, deg, runtime, speedup, stolen, moves in rows:
            print(f"{label},{gc:.6f},{deg:.6f},{runtime:.6f},"
                  f"{speedup:.3f},{stolen},{moves}")
        return
    print(render_table(
        ["setting", "mean GC", "GC degradation", "runtime (s)",
         "speedup", "stolen budget", "transfers"], rows,
        title=f"federation — {result.policy}"))
    print()
    load_rows = [
        [f"K={outcome.shards} shard {load.shard}", load.resources,
         load.probes_routed, load.nominal_budget, load.stolen_in,
         load.stolen_out]
        for outcome in result.outcomes if outcome.shards > 1
        for load in outcome.loads
    ]
    if load_rows:
        print(render_table(
            ["shard", "resources", "probes routed", "nominal budget",
             "stolen in", "stolen out"], load_rows,
            title="federation — per-shard load"))
        print()
    print(render_table(
        ["parameter", "value"], result.config.describe(),
        title="federation — configuration"))


def _print_churn(result: ChurnSweep, as_csv: bool) -> None:
    rows = [
        [f"spread={row.join_spread:.1f}"
         + (f" leave={row.leave_probability:.1f}"
            if row.leave_probability else ""),
         row.completeness, row.mean_client_completeness, row.fairness,
         row.completed, row.expired, row.dropped, row.probes_used,
         row.runtime_seconds]
        for row in result.rows
    ]
    if as_csv:
        print(f"# churn ({result.policy}, engine={result.engine})")
        print("scenario,completeness,mean_client_completeness,fairness,"
              "completed,expired,dropped,probes_used,runtime_s")
        for (label, gc, mean_gc, fairness, completed, expired, dropped,
             probes, runtime) in rows:
            print(f"{label},{gc:.6f},{mean_gc:.6f},{fairness:.6f},"
                  f"{completed},{expired},{dropped},{probes},"
                  f"{runtime:.6f}")
        return
    print(render_table(
        ["scenario", "completeness", "client mean", "fairness",
         "completed", "expired", "dropped", "probes", "runtime (s)"],
        rows, title=f"churn — {result.policy} "
                    f"(engine={result.engine})"))


def _print_result(name: str, result: object, as_csv: bool) -> None:
    if isinstance(result, ChurnSweep):
        _print_churn(result, as_csv)
    elif isinstance(result, FederationSweep):
        _print_federation(result, as_csv)
    elif isinstance(result, RunOutcome):
        _print_run_outcome(name, result, as_csv)
    elif isinstance(result, SweepResult):
        metrics = ("gc", "runtime") if name in ("fig5", "offline") \
            else ("gc",)
        _print_sweep(result, as_csv, metrics=metrics)
    elif isinstance(result, FigurePair):
        metrics = ("runtime",) if name == "fig5" else ("gc",)
        _print_sweep(result.left, as_csv, metrics=metrics)
        _print_sweep(result.right, as_csv, metrics=metrics)
    else:  # pragma: no cover - defensive
        print(result)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Roitman, Gal & "
                    "Raschid, ICDE 2008.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "stats", "serve", "soak",
                                        "bench-report"],
        help="which table/figure to run ('all' runs everything; "
             "'stats' prints baseline instance statistics; 'faults' "
             "sweeps origin-server failure rates for the "
             "graceful-degradation curves; 'churn' sweeps client "
             "arrival spread and churn-out on the live-churn engine; "
             "'federation' sweeps proxy "
             "shard counts against the monolith engine; 'offline' "
             "compares the offline solvers in the P^[1] regime; "
             "'serve' starts the "
             "async HTTP/SSE proxy service; 'soak' runs the "
             "deterministic chaos harness; 'bench-report' prints the "
             "committed benchmark baselines and gates on regressions)",
    )
    parser.add_argument(
        "--scale", choices=["paper", "default", "smoke"],
        default="default",
        help="experiment scale: 'paper' = full Table-1 sizes, 'default' = "
             "reduced benchmark sizes, 'smoke' = tiny",
    )
    parser.add_argument(
        "--csv", action="store_true",
        help="emit CSV series instead of ASCII tables",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run (setting, repetition) cells in a process pool of N "
             "workers (default: serial); results are identical to the "
             "serial path",
    )
    parser.add_argument(
        "--engine", choices=["fast", "batch", "reference", "rebuild"],
        default=None,
        help="simulation engine: 'fast' runs one combination at a "
             "time, 'batch' groups cells sharing generated instances "
             "into columnar mega blocks (identical results), "
             "'reference' is the executable specification, 'rebuild' "
             "(churn only) reruns the incremental churn plan with "
             "from-scratch structure rebuilds after every event; by "
             "default each experiment keeps its own engine default "
             "('fast' for the figures, 'batch' for the fault sweeps)",
    )
    parser.add_argument(
        "--output", metavar="DIR", default=None,
        help="also write CSV series and text tables into DIR",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist generated problem instances under DIR "
             "(content-addressed .npz + manifest); repeated runs with "
             "the same settings reload instances instead of "
             "regenerating them",
    )
    parser.add_argument(
        "--no-fast-gen", action="store_true",
        help="use the reference (unvectorized) instance-generation "
             "path; instances are identical to the fast path's, only "
             "slower to build (for ablations and debugging)",
    )
    service = parser.add_argument_group("async service ('serve'/'soak')")
    service.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for 'serve' (default: 127.0.0.1)")
    service.add_argument(
        "--port", type=int, default=8642,
        help="bind port for 'serve'; 0 picks a free port "
             "(default: 8642)")
    service.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write-ahead journal file for 'serve'; if it already has "
             "records the service recovers from it before serving")
    service.add_argument(
        "--tick-interval", type=float, default=0.1, metavar="SECONDS",
        help="real-time seconds per chronon for 'serve' (default: 0.1)")
    service.add_argument(
        "--seed", type=int, default=0,
        help="scenario seed for 'soak' (default: 0)")
    return parser


def _print_stats(scale: str) -> None:
    """Print structural statistics of one baseline instance."""
    from repro.analysis import compute_stats
    from repro.experiments import baseline, make_instance

    config = baseline(scale)
    _trace, profiles = make_instance(config, 0)
    stats = compute_stats(profiles, config.epoch, config.budget_vector)
    print(render_table(["statistic", "value"], stats.describe(),
                       title=f"Baseline instance statistics ({scale})"))


def _serve(args) -> int:
    """Stand up the async HTTP/SSE proxy service on a demo workload."""
    import asyncio
    from pathlib import Path

    from repro.core.budget import BudgetVector
    from repro.core.timeline import Epoch
    from repro.faults.breaker import BackoffPolicy, CircuitBreaker
    from repro.online import MRSFPolicy
    from repro.runtime.aio import (
        AdmissionController,
        AsyncMonitoringProxy,
        Journal,
        ProxyService,
    )
    from repro.runtime.server import OriginServer
    from repro.traces.models import PoissonUpdateModel

    length, resources, budget = {
        "smoke": (60, 8, 2), "default": (600, 32, 4),
        "paper": (3000, 64, 8)}[args.scale]
    epoch = Epoch(length)
    trace = PoissonUpdateModel(8.0, seed=args.seed).generate(
        range(resources), epoch)
    server = OriginServer(trace)
    knobs = dict(backoff=BackoffPolicy(), breaker=CircuitBreaker(),
                 deadline=1.0, hedge_delay=0.05)
    path = Path(args.journal) if args.journal else None
    if path is not None and path.exists() and path.stat().st_size > 0:
        print(f"recovering from journal {path}")
        proxy = AsyncMonitoringProxy.recover(
            path, server, epoch, BudgetVector(budget), MRSFPolicy(),
            **knobs)
    else:
        proxy = AsyncMonitoringProxy(
            server, epoch, BudgetVector(budget), MRSFPolicy(),
            journal=Journal(path) if path is not None else None, **knobs)
    admission = AdmissionController(max_tintervals=resources * 8,
                                    max_profiles_per_client=64)
    service = ProxyService(proxy, admission,
                           host=args.host, port=args.port)

    async def serve() -> None:
        host, port = await service.start()
        print(f"serving on http://{host}:{port} — epoch of {epoch.last} "
              f"chronons at {args.tick_interval}s per chronon "
              f"(clock at {proxy.clock})")
        try:
            await service.serve_epoch(
                tick_interval=args.tick_interval)
            print(f"epoch complete: {proxy.stats()}")
        finally:
            await service.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted; journal (if any) is replayable")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "serve":
        return _serve(args)
    if args.experiment == "soak":
        from repro.runtime.aio.chaos import main as chaos_main
        chaos_args = ["--seed", str(args.seed)]
        if args.scale == "smoke":
            chaos_args.append("--smoke")
        return chaos_main(chaos_args)
    if args.experiment == "bench-report":
        from repro.bench_report import main as bench_report_main
        return bench_report_main([])
    from repro.experiments.instances import configure_instances
    configure_instances(cache_dir=args.cache_dir,
                        fast=not args.no_fast_gen)
    if args.experiment == "stats":
        _print_stats(args.scale)
        return 0
    names = sorted(_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        runner = _EXPERIMENTS[name]
        kwargs = {}
        parameters = inspect.signature(runner).parameters
        if args.workers and "workers" in parameters:
            kwargs["workers"] = args.workers
        if args.engine and "engine" in parameters:
            kwargs["engine"] = args.engine
        result = runner(args.scale, **kwargs)
        _print_result(name, result, args.csv)
        if args.output:
            from repro.experiments.export import export_result
            written = export_result(name, result, args.output)
            print(f"[wrote {len(written)} files under {args.output}]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
