"""Command-line entry point: ``repro-experiments``.

Runs any of the paper's tables/figures and prints the series as ASCII
tables (optionally CSV). Examples::

    repro-experiments table1 --scale default
    repro-experiments fig4 --scale paper
    repro-experiments all --scale smoke --csv
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable

from repro.experiments import (
    FigurePair,
    RunOutcome,
    SweepResult,
    fault_sweep,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    offline_comparison,
    table1,
)
from repro.experiments.reporting import render_table, sweep_csv, sweep_table

__all__ = ["main"]

_EXPERIMENTS: dict[str, Callable[[str], object]] = {
    "table1": table1,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "faults": fault_sweep,
    "offline": offline_comparison,
}


def _print_run_outcome(name: str, outcome: RunOutcome, as_csv: bool) -> None:
    rows = [
        [label, policy_outcome.mean_gc, policy_outcome.stdev_gc,
         policy_outcome.mean_runtime]
        for label, policy_outcome in outcome.outcomes.items()
    ]
    if as_csv:
        print(f"# {name}")
        print("policy,mean_gc,stdev_gc,mean_runtime_s")
        for label, gc, stdev, runtime in rows:
            print(f"{label},{gc:.6f},{stdev:.6f},{runtime:.6f}")
        return
    print(render_table(
        ["policy", "mean GC", "stdev", "runtime (s)"], rows, title=name))
    print()
    print(render_table(
        ["parameter", "value"], outcome.config.describe(),
        title=f"{name} — configuration"))


def _print_sweep(result: SweepResult, as_csv: bool,
                 metrics: tuple[str, ...] = ("gc",)) -> None:
    for metric in metrics:
        if as_csv:
            print(f"# {result.name} ({metric})")
            print(sweep_csv(result, metric=metric), end="")
        else:
            print(sweep_table(result, metric=metric))
            print()


def _print_result(name: str, result: object, as_csv: bool) -> None:
    if isinstance(result, RunOutcome):
        _print_run_outcome(name, result, as_csv)
    elif isinstance(result, SweepResult):
        metrics = ("gc", "runtime") if name in ("fig5", "offline") \
            else ("gc",)
        _print_sweep(result, as_csv, metrics=metrics)
    elif isinstance(result, FigurePair):
        metrics = ("runtime",) if name == "fig5" else ("gc",)
        _print_sweep(result.left, as_csv, metrics=metrics)
        _print_sweep(result.right, as_csv, metrics=metrics)
    else:  # pragma: no cover - defensive
        print(result)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Roitman, Gal & "
                    "Raschid, ICDE 2008.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "stats"],
        help="which table/figure to run ('all' runs everything; "
             "'stats' prints baseline instance statistics; 'faults' "
             "sweeps origin-server failure rates for the "
             "graceful-degradation curves; 'offline' compares the "
             "offline solvers in the P^[1] regime)",
    )
    parser.add_argument(
        "--scale", choices=["paper", "default", "smoke"],
        default="default",
        help="experiment scale: 'paper' = full Table-1 sizes, 'default' = "
             "reduced benchmark sizes, 'smoke' = tiny",
    )
    parser.add_argument(
        "--csv", action="store_true",
        help="emit CSV series instead of ASCII tables",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run (setting, repetition) cells in a process pool of N "
             "workers (default: serial); results are identical to the "
             "serial path",
    )
    parser.add_argument(
        "--output", metavar="DIR", default=None,
        help="also write CSV series and text tables into DIR",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist generated problem instances under DIR "
             "(content-addressed .npz + manifest); repeated runs with "
             "the same settings reload instances instead of "
             "regenerating them",
    )
    parser.add_argument(
        "--no-fast-gen", action="store_true",
        help="use the reference (unvectorized) instance-generation "
             "path; instances are identical to the fast path's, only "
             "slower to build (for ablations and debugging)",
    )
    return parser


def _print_stats(scale: str) -> None:
    """Print structural statistics of one baseline instance."""
    from repro.analysis import compute_stats
    from repro.experiments import baseline, make_instance

    config = baseline(scale)
    _trace, profiles = make_instance(config, 0)
    stats = compute_stats(profiles, config.epoch, config.budget_vector)
    print(render_table(["statistic", "value"], stats.describe(),
                       title=f"Baseline instance statistics ({scale})"))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.experiments.instances import configure_instances
    configure_instances(cache_dir=args.cache_dir,
                        fast=not args.no_fast_gen)
    if args.experiment == "stats":
        _print_stats(args.scale)
        return 0
    names = sorted(_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        runner = _EXPERIMENTS[name]
        if args.workers and "workers" in \
                inspect.signature(runner).parameters:
            result = runner(args.scale, workers=args.workers)
        else:
            result = runner(args.scale)
        _print_result(name, result, args.csv)
        if args.output:
            from repro.experiments.export import export_result
            written = export_result(name, result, args.output)
            print(f"[wrote {len(written)} files under {args.output}]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
