"""Partial (quota / k-of-n) t-intervals (paper §6, second future-work item).

"We further intend to extend the notion of t-intervals to a more general
construction which allow also alternatives (e.g., capture of a subset of
execution intervals)."

A *quota* assigns each t-interval the minimum number of its EIs that must
be captured for the t-interval to count. ``quota == len(eta)`` recovers the
paper's all-or-nothing semantics; ``quota == 1`` is pure alternatives.

The extension reuses the standard proxy loop through the simulator's
``state_factory`` hook: :class:`QuotaTIntervalState` redefines completion
("enough EIs captured") and expiry ("the quota is no longer reachable").
"""

from __future__ import annotations

from typing import Mapping

from repro.core.budget import BudgetVector
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Chronon, Epoch
from repro.online.base import Candidate, Policy, TIntervalState
from repro.online.mrsf import MRSFPolicy
from repro.simulation.proxy import ProxySimulator
from repro.simulation.result import SimulationResult

__all__ = [
    "QuotaMap",
    "QuotaTIntervalState",
    "QuotaMRSFPolicy",
    "quota_completeness",
    "run_with_quotas",
]

TKey = tuple[int, int]


class QuotaMap:
    """Per-t-interval capture quotas.

    Parameters
    ----------
    quotas:
        Explicit ``(profile_id, tinterval_id) -> quota`` entries; a
        missing entry defaults to the t-interval's size (all EIs
        required, i.e. the paper's base semantics).

    Raises
    ------
    ValueError
        For quotas < 1 (a t-interval requiring nothing is meaningless).
    """

    def __init__(self, quotas: Mapping[TKey, int] | None = None) -> None:
        self._quotas = dict(quotas or {})
        for key, quota in self._quotas.items():
            if quota < 1:
                raise ValueError(
                    f"quota must be >= 1, got {quota} for {key}"
                )

    @classmethod
    def all_required(cls) -> "QuotaMap":
        """The identity quota map (paper's base semantics)."""
        return cls()

    @classmethod
    def any_of(cls, profiles: ProfileSet) -> "QuotaMap":
        """Quota 1 everywhere: any captured EI satisfies its t-interval."""
        return cls({(eta.profile_id, eta.tinterval_id): 1
                    for eta in profiles.tintervals()})

    def quota_for(self, eta) -> int:
        """Effective quota of one t-interval (clamped to its size)."""
        quota = self._quotas.get((eta.profile_id, eta.tinterval_id),
                                 eta.size)
        return min(quota, eta.size)


class QuotaTIntervalState(TIntervalState):
    """t-interval runtime state with quota-based completion semantics."""

    __slots__ = ("quota",)

    def __init__(self, eta, profile_rank: int, quota: int) -> None:
        super().__init__(eta, profile_rank)
        if quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        self.quota = min(quota, len(eta))

    @property
    def is_complete(self) -> bool:
        """True once the quota is met."""
        return self.captured_count >= self.quota

    def is_expired(self, chronon: Chronon) -> bool:
        """True once the quota is unreachable.

        Unreachable means: captured EIs plus EIs that can still be
        captured (deadline not passed) fall short of the quota.
        """
        reachable = self.captured_count + sum(
            1 for ei in self.eta
            if not self.captured[ei.ei_id] and not ei.expired_at(chronon)
        )
        return reachable < self.quota

    @property
    def residual(self) -> int:
        """EIs still needed to reach the quota (not to capture them all)."""
        return max(0, self.quota - self.captured_count)


class QuotaMRSFPolicy(Policy):
    """MRSF generalized to quotas: fewest EIs *to the quota* first.

    On all-required quotas this coincides with the paper's MRSF ordering
    whenever profile ranks equal t-interval sizes, and refines it toward
    the actual remaining work otherwise.
    """

    name = "Q-MRSF"
    level = "rank"

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        state = candidate.state
        if isinstance(state, QuotaTIntervalState):
            return float(state.residual)
        return float(state.profile_rank - state.captured_count)


def quota_completeness(profiles: ProfileSet, schedule: Schedule,
                       quotas: QuotaMap) -> float:
    """Fraction of t-intervals whose quota the schedule meets."""
    total = 0
    captured = 0
    for eta in profiles.tintervals():
        total += 1
        hits = sum(1 for ei in eta if schedule.captures_ei(ei))
        if hits >= quotas.quota_for(eta):
            captured += 1
    if total == 0:
        return 1.0
    return captured / total


def run_with_quotas(profiles: ProfileSet, epoch: Epoch,
                    budget: BudgetVector, policy: Policy,
                    quotas: QuotaMap,
                    preemptive: bool = True) -> SimulationResult:
    """Online run under quota semantics.

    The returned result's report counts a t-interval as captured when its
    quota was met during the run.
    """
    def factory(eta, profile_rank: int) -> QuotaTIntervalState:
        return QuotaTIntervalState(eta, profile_rank,
                                   quotas.quota_for(eta))

    simulator = ProxySimulator(profiles, epoch, budget, policy,
                               preemptive=preemptive,
                               state_factory=factory)
    return simulator.run()
