"""Utility-weighted completeness (paper §6, first future-work item).

"As future extension of this work we shall consider more general profile
satisfaction constraints given as client profile utilities. Such utilities
can further help to construct better prioritized policies."

This module implements that extension:

* :class:`UtilityWeights` — per-profile and per-t-interval utilities;
* :func:`weighted_completeness` — utility-weighted GC of a schedule;
* :class:`UtilityWeightedPolicy` — wraps any base policy, scaling its
  score by ``1 / utility`` so high-utility t-intervals are preferred while
  the base ordering is kept within equal-utility groups;
* :func:`run_weighted` — online run returning both plain and weighted GC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.budget import BudgetVector
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Chronon, Epoch
from repro.online.base import Candidate, Policy
from repro.simulation.proxy import run_online
from repro.simulation.result import SimulationResult

__all__ = [
    "UtilityWeights",
    "UtilityWeightedPolicy",
    "run_weighted",
    "weighted_completeness",
]

TKey = tuple[int, int]


class UtilityWeights:
    """Utilities for profiles and t-intervals.

    Resolution order for a t-interval's utility: an explicit per-t-interval
    weight, else the owning profile's weight, else 1.0. Utilities must be
    positive (a zero-utility t-interval should simply not be registered).
    """

    def __init__(self, profile_weights: Mapping[int, float] | None = None,
                 tinterval_weights: Mapping[TKey, float] | None = None
                 ) -> None:
        self._profiles = dict(profile_weights or {})
        self._tintervals = dict(tinterval_weights or {})
        for source in (self._profiles.values(), self._tintervals.values()):
            for weight in source:
                if weight <= 0:
                    raise ValueError(
                        f"utilities must be positive, got {weight}"
                    )

    @classmethod
    def uniform(cls) -> "UtilityWeights":
        """All-ones utilities (weighted GC == plain GC)."""
        return cls()

    def for_profile(self, profile_id: int) -> float:
        """The utility of a whole profile (default 1.0)."""
        return self._profiles.get(profile_id, 1.0)

    def for_tinterval(self, profile_id: int, tinterval_id: int) -> float:
        """The utility of one t-interval (see class docstring)."""
        explicit = self._tintervals.get((profile_id, tinterval_id))
        if explicit is not None:
            return explicit
        return self.for_profile(profile_id)


def weighted_completeness(profiles: ProfileSet, schedule: Schedule,
                          weights: UtilityWeights) -> float:
    """Utility-weighted gained completeness.

    ``sum of utilities of captured t-intervals / sum of all utilities``;
    1.0 for an empty profile set (vacuous objective).
    """
    gained = 0.0
    total = 0.0
    for profile in profiles:
        for eta in profile:
            utility = weights.for_tinterval(eta.profile_id,
                                            eta.tinterval_id)
            total += utility
            if schedule.captures_tinterval(eta):
                gained += utility
    if total == 0.0:
        return 1.0
    return gained / total


class UtilityWeightedPolicy(Policy):
    """Scales a base policy's score by the candidate's utility.

    Scores are lower-is-better; dividing by the utility makes a
    high-utility t-interval beat a low-utility one with the same base
    score, while preserving the base ordering among equal utilities.
    Non-positive base scores are shifted into the positive range first so
    the division cannot flip their order.
    """

    level = "multi-ei"

    def __init__(self, base: Policy, weights: UtilityWeights) -> None:
        self._base = base
        self._weights = weights
        self.name = f"U[{base.name}]"

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        base_score = self._base.score(candidate, chronon)
        eta = candidate.state.eta
        utility = self._weights.for_tinterval(eta.profile_id,
                                              eta.tinterval_id)
        # Shift into [1, inf) to keep division monotone for scores <= 0.
        return (base_score + 1.0) / utility if base_score >= 0 \
            else base_score * utility


@dataclass(frozen=True, slots=True)
class WeightedRun:
    """Result of a utility-aware online run."""

    result: SimulationResult
    weighted_gc: float


def run_weighted(profiles: ProfileSet, epoch: Epoch, budget: BudgetVector,
                 base_policy: Policy, weights: UtilityWeights,
                 preemptive: bool = True) -> WeightedRun:
    """Run a utility-weighted variant of ``base_policy`` online.

    Returns both the ordinary simulation result (plain GC et al.) and the
    utility-weighted completeness of the produced schedule.
    """
    policy = UtilityWeightedPolicy(base_policy, weights)
    result = run_online(profiles, epoch, budget, policy,
                        preemptive=preemptive)
    weighted = weighted_completeness(profiles, result.schedule, weights)
    return WeightedRun(result=result, weighted_gc=weighted)
