"""Extensions implementing the paper's §6 future-work items."""

from repro.extensions.partial import (
    QuotaMap,
    QuotaMRSFPolicy,
    QuotaTIntervalState,
    quota_completeness,
    run_with_quotas,
)
from repro.extensions.utilities import (
    UtilityWeightedPolicy,
    UtilityWeights,
    run_weighted,
    weighted_completeness,
)

__all__ = [
    "QuotaMap",
    "QuotaMRSFPolicy",
    "QuotaTIntervalState",
    "UtilityWeightedPolicy",
    "UtilityWeights",
    "quota_completeness",
    "run_weighted",
    "run_with_quotas",
    "weighted_completeness",
]
