"""Policy comparison reports on shared instances.

Runs a set of policies (and optionally the offline solvers) against the
*same* profile set and produces a side-by-side report — the building block
behind the per-figure experiments, exposed for ad-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import BudgetVector
from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch
from repro.offline.local_ratio import LocalRatioApproximation
from repro.offline.milp import MILPSolver
from repro.online.registry import parse_policy_spec
from repro.simulation.proxy import run_online
from repro.simulation.result import SimulationResult

__all__ = ["PolicyComparison", "compare_policies"]


@dataclass(frozen=True, slots=True)
class PolicyComparison:
    """Results of all compared strategies on one instance."""

    results: dict[str, SimulationResult]
    optimum: SimulationResult | None = None

    def gc(self, label: str) -> float:
        """Gained completeness of one strategy."""
        return self.results[label].gc

    def best_label(self) -> str:
        """The strategy with the highest GC (ties: first by name)."""
        return max(sorted(self.results),
                   key=lambda label: self.results[label].gc)

    def competitive_ratio(self, label: str) -> float:
        """GC(label) / GC(optimum); requires the optimum to be present.

        Raises
        ------
        ValueError
            If the comparison was built without the exact optimum.
        """
        if self.optimum is None:
            raise ValueError("comparison was built without the optimum; "
                             "pass include_optimum=True")
        if self.optimum.report.captured == 0:
            return 1.0
        return (self.results[label].report.captured
                / self.optimum.report.captured)

    def rows(self) -> list[list[object]]:
        """Table rows: label, GC, probes, expired, runtime."""
        rows = [
            [label, result.gc, result.probes_used, result.expired,
             result.runtime_seconds]
            for label, result in sorted(self.results.items())
        ]
        if self.optimum is not None:
            rows.append(["(optimum)", self.optimum.gc,
                         self.optimum.probes_used, 0,
                         self.optimum.runtime_seconds])
        return rows


def compare_policies(profiles: ProfileSet, epoch: Epoch,
                     budget: BudgetVector,
                     policy_specs: list[str],
                     include_offline_approx: bool = False,
                     include_optimum: bool = False) -> PolicyComparison:
    """Run every spec on the same instance and collect results.

    Parameters
    ----------
    policy_specs:
        Display specs like ``"MRSF(P)"`` / ``"S-EDF(NP)"``.
    include_offline_approx:
        Also run the Local-Ratio approximation (labeled
        ``"offline-approx"``).
    include_optimum:
        Also compute the exact MILP optimum (can be slow; intended for
        small/medium instances).
    """
    results: dict[str, SimulationResult] = {}
    for spec in policy_specs:
        policy, preemptive = parse_policy_spec(spec)
        results[spec] = run_online(profiles, epoch, budget, policy,
                                   preemptive=preemptive)
    if include_offline_approx:
        results["offline-approx"] = LocalRatioApproximation().solve(
            profiles, epoch, budget)
    optimum = None
    if include_optimum:
        optimum = MILPSolver().solve(profiles, epoch, budget)
    return PolicyComparison(results=results, optimum=optimum)
