"""Instance statistics: quantifying what makes a workload hard.

The paper's narrative ties policy behavior to workload structure — budget
scarcity, intra-resource overlap, profile complexity. This module computes
those quantities for any profile set so experiments can report *why* a
setting behaves as it does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import BudgetVector
from repro.core.intervals import ExecutionInterval
from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch

__all__ = ["InstanceStats", "compute_stats"]


@dataclass(frozen=True, slots=True)
class InstanceStats:
    """Structural statistics of one monitoring instance.

    Attributes
    ----------
    num_profiles, num_tintervals, num_eis:
        Population sizes.
    rank:
        ``rank(P)``.
    mean_tinterval_size:
        Average number of EIs per t-interval.
    mean_ei_width:
        Average EI window width in chronons.
    unit_width_fraction:
        Fraction of EIs with width 1 (1.0 for ``P^[1]``).
    intra_resource_overlap_rate:
        Fraction of EIs that overlap at least one other EI on the same
        resource — the paper's exploitable sharing.
    peak_demand:
        Maximum, over chronons, of the number of *distinct resources*
        carrying an active EI (an upper bound on useful probes).
    demand_to_budget:
        Total EI count divided by the total probing budget over the
        epoch — a scarcity indicator (values >> 1 mean contention,
        before accounting for sharing).
    """

    num_profiles: int
    num_tintervals: int
    num_eis: int
    rank: int
    mean_tinterval_size: float
    mean_ei_width: float
    unit_width_fraction: float
    intra_resource_overlap_rate: float
    peak_demand: int
    demand_to_budget: float

    def describe(self) -> list[tuple[str, str]]:
        """(name, value) rows for table rendering."""
        return [
            ("profiles", str(self.num_profiles)),
            ("t-intervals", str(self.num_tintervals)),
            ("execution intervals", str(self.num_eis)),
            ("rank(P)", str(self.rank)),
            ("mean |eta|", f"{self.mean_tinterval_size:.2f}"),
            ("mean EI width", f"{self.mean_ei_width:.2f}"),
            ("unit-width fraction", f"{self.unit_width_fraction:.2f}"),
            ("intra-resource overlap rate",
             f"{self.intra_resource_overlap_rate:.2f}"),
            ("peak resource demand", str(self.peak_demand)),
            ("demand / budget", f"{self.demand_to_budget:.2f}"),
        ]


def compute_stats(profiles: ProfileSet, epoch: Epoch,
                  budget: BudgetVector) -> InstanceStats:
    """Compute :class:`InstanceStats` for an instance."""
    eis: list[ExecutionInterval] = []
    tinterval_sizes: list[int] = []
    for eta in profiles.tintervals():
        tinterval_sizes.append(eta.size)
        eis.extend(eta.eis)

    num_eis = len(eis)
    num_tintervals = len(tinterval_sizes)
    mean_size = (sum(tinterval_sizes) / num_tintervals
                 if num_tintervals else 0.0)
    mean_width = (sum(ei.width for ei in eis) / num_eis
                  if num_eis else 0.0)
    unit_fraction = (sum(1 for ei in eis if ei.is_unit) / num_eis
                     if num_eis else 0.0)

    overlap_rate = _overlap_rate(eis)
    peak_demand = _peak_demand(eis, epoch)
    total_budget = budget.total_over(epoch)
    demand_to_budget = (num_eis / total_budget if total_budget
                        else float("inf") if num_eis else 0.0)

    return InstanceStats(
        num_profiles=len(profiles),
        num_tintervals=num_tintervals,
        num_eis=num_eis,
        rank=profiles.rank,
        mean_tinterval_size=mean_size,
        mean_ei_width=mean_width,
        unit_width_fraction=unit_fraction,
        intra_resource_overlap_rate=overlap_rate,
        peak_demand=peak_demand,
        demand_to_budget=demand_to_budget,
    )


def _overlap_rate(eis: list[ExecutionInterval]) -> float:
    """Fraction of EIs overlapping another EI on the same resource."""
    if not eis:
        return 0.0
    by_resource: dict[int, list[ExecutionInterval]] = {}
    for ei in eis:
        by_resource.setdefault(ei.resource_id, []).append(ei)
    overlapping = 0
    for group in by_resource.values():
        group.sort(key=lambda e: (e.start, e.finish))
        flags = [False] * len(group)
        for index in range(len(group) - 1):
            # Compare with successors sharing chronons.
            for next_index in range(index + 1, len(group)):
                if group[next_index].start > group[index].finish:
                    break
                flags[index] = True
                flags[next_index] = True
        overlapping += sum(flags)
    return overlapping / len(eis)


def _peak_demand(eis: list[ExecutionInterval], epoch: Epoch) -> int:
    """Max distinct resources with an active EI at any chronon.

    Sweep-line over (resource, window) events, with per-resource active
    counts so the same resource counts once regardless of overlap depth.
    """
    events: list[tuple[int, int, int]] = []  # (chronon, delta, resource)
    for ei in eis:
        start = max(1, ei.start)
        finish = min(epoch.last, ei.finish)
        if start > finish:
            continue
        events.append((start, 1, ei.resource_id))
        events.append((finish + 1, -1, ei.resource_id))
    events.sort()
    active: dict[int, int] = {}
    distinct = 0
    peak = 0
    index = 0
    while index < len(events):
        chronon = events[index][0]
        while index < len(events) and events[index][0] == chronon:
            _chronon, delta, resource = events[index]
            before = active.get(resource, 0)
            after = before + delta
            if before == 0 and after > 0:
                distinct += 1
            elif before > 0 and after == 0:
                distinct -= 1
            if after:
                active[resource] = after
            else:
                active.pop(resource, None)
            index += 1
        peak = max(peak, distinct)
    return peak
