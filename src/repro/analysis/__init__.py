"""Analysis helpers: instance statistics and policy comparisons."""

from repro.analysis.compare import PolicyComparison, compare_policies
from repro.analysis.stats import InstanceStats, compute_stats

__all__ = [
    "InstanceStats",
    "PolicyComparison",
    "compare_policies",
    "compute_stats",
]
