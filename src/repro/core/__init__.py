"""Core model: time, resources, intervals, profiles, schedules, GC.

This package implements Section 3 of the paper — the formal objects that
every solver, policy, and experiment builds on.
"""

from repro.core.budget import BudgetVector
from repro.core.completeness import (
    CompletenessReport,
    evaluate_schedule,
    gained_completeness,
)
from repro.core.errors import (
    FaultError,
    FaultReplayError,
    ModelError,
    ProbeFailure,
    ReproError,
    ScheduleInfeasibleError,
    SolverCapacityError,
    SolverError,
    TraceFormatError,
    WorkloadError,
)
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile, ProfileSet
from repro.core.resource import Resource, ResourceCatalog
from repro.core.schedule import Probe, Schedule
from repro.core.timeline import Chronon, Epoch
from repro.core.validation import (
    Diagnostic,
    ValidationReport,
    validate_instance,
)

__all__ = [
    "BudgetVector",
    "Chronon",
    "CompletenessReport",
    "Diagnostic",
    "Epoch",
    "ExecutionInterval",
    "FaultError",
    "FaultReplayError",
    "ModelError",
    "Probe",
    "Profile",
    "ProfileSet",
    "ProbeFailure",
    "ReproError",
    "Resource",
    "ResourceCatalog",
    "Schedule",
    "ScheduleInfeasibleError",
    "SolverCapacityError",
    "SolverError",
    "TInterval",
    "TraceFormatError",
    "ValidationReport",
    "WorkloadError",
    "evaluate_schedule",
    "gained_completeness",
    "validate_instance",
]
