"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FaultError",
    "FaultReplayError",
    "ModelError",
    "ProbeFailure",
    "ScheduleInfeasibleError",
    "SolverError",
    "SolverCapacityError",
    "TraceFormatError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ModelError(ReproError):
    """Invalid model construction (profiles, intervals, budgets...)."""


class ScheduleInfeasibleError(ReproError):
    """A requested schedule violates the budget or epoch constraints."""


class SolverError(ReproError):
    """An offline solver failed to produce a solution."""


class SolverCapacityError(SolverError):
    """Instance too large for an exact solver's safety guard.

    Raised by the enumeration solver (Lemma 1 bound) and the MILP solver
    when the instance exceeds their configured size limits, instead of
    silently running for hours.
    """


class TraceFormatError(ReproError):
    """Malformed update-trace input (CSV loader and friends)."""


class WorkloadError(ReproError):
    """Invalid workload/profile-generation parameters."""


class FaultError(ReproError):
    """Invalid fault-injection configuration (specs, outages, traces)."""


class FaultReplayError(FaultError):
    """A strict trace replay was asked to decide a probe it never saw.

    Raised by :class:`repro.faults.RecordedFaults` in strict mode when
    the replayed run diverges from the recorded one: the requested
    ``(chronon, resource, attempt)`` triple has no record in the trace.
    Carries the triple and the trace length so the drift point is
    diagnosable from the exception alone.
    """

    def __init__(self, resource_id: int, chronon: int, attempt: int,
                 trace_length: int) -> None:
        self.resource_id = resource_id
        self.chronon = chronon
        self.attempt = attempt
        self.trace_length = trace_length
        super().__init__(
            f"no recorded fault decision for probe (chronon={chronon}, "
            f"resource={resource_id}, attempt={attempt}); the replayed "
            f"run diverged from the {trace_length}-record trace")


class ProbeFailure(FaultError):
    """A pull request got no usable answer (drop, timeout, outage...).

    Raised only by the *strict* probe surface
    (:meth:`repro.faults.UnreliableServer.probe`); the proxy runtime uses
    the outcome-returning :meth:`try_probe` path instead and never sees
    this exception.
    """

    def __init__(self, resource_id: int, chronon: int,
                 fault: str | None = None) -> None:
        self.resource_id = resource_id
        self.chronon = chronon
        self.fault = fault
        detail = f" ({fault})" if fault else ""
        super().__init__(
            f"probe of resource {resource_id} failed at chronon "
            f"{chronon}{detail}")
