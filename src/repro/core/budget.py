"""Probing budgets.

The proxy may issue at most ``C_j`` probes at chronon ``T_j`` (Section 3.3).
The common experimental setting is a constant budget (``C_j = C`` for all
``j``), but the model allows an arbitrary per-chronon vector, which
:class:`BudgetVector` supports.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.timeline import Chronon, Epoch

__all__ = ["BudgetVector"]


class BudgetVector:
    """Per-chronon probe budget ``C = (C_1, ..., C_K)``.

    Parameters
    ----------
    default:
        Budget used for any chronon without an explicit override.
    overrides:
        Optional mapping ``chronon -> budget`` for non-uniform budgets.

    Examples
    --------
    >>> budget = BudgetVector(2)
    >>> budget.at(10)
    2
    >>> bursty = BudgetVector(1, overrides={5: 4})
    >>> bursty.at(5), bursty.at(6)
    (4, 1)
    """

    __slots__ = ("_default", "_overrides")

    def __init__(self, default: int,
                 overrides: Mapping[Chronon, int] | None = None) -> None:
        if default < 0:
            raise ValueError(f"budget must be >= 0, got {default}")
        self._default = default
        self._overrides: dict[Chronon, int] = {}
        for chronon, value in (overrides or {}).items():
            if value < 0:
                raise ValueError(
                    f"budget must be >= 0, got {value} at chronon {chronon}"
                )
            self._overrides[chronon] = value

    @classmethod
    def constant(cls, budget: int) -> "BudgetVector":
        """A uniform budget of ``budget`` probes at every chronon."""
        return cls(budget)

    @classmethod
    def from_sequence(cls, values: Iterable[int]) -> "BudgetVector":
        """Budget vector from an explicit per-chronon sequence.

        The sequence maps to chronons ``1..len(values)``; chronons past the
        end of the sequence fall back to the *last* value.
        """
        values = list(values)
        if not values:
            raise ValueError("budget sequence must be non-empty")
        default = values[-1]
        overrides = {index + 1: value
                     for index, value in enumerate(values[:-1])}
        return cls(default, overrides)

    @property
    def default(self) -> int:
        """The budget used for chronons without overrides."""
        return self._default

    def overrides(self) -> dict[Chronon, int]:
        """The per-chronon overrides (copy; empty when constant)."""
        return dict(self._overrides)

    def at(self, chronon: Chronon) -> int:
        """Budget ``C_j`` available at chronon ``j``."""
        return self._overrides.get(chronon, self._default)

    def max_over(self, epoch: Epoch) -> int:
        """``C_max`` over the epoch — the constant in Lemma 1's bound."""
        best = self._default
        for chronon, value in self._overrides.items():
            if chronon in epoch:
                best = max(best, value)
        return best

    def total_over(self, epoch: Epoch) -> int:
        """Total probes available over the epoch."""
        total = self._default * len(epoch)
        for chronon, value in self._overrides.items():
            if chronon in epoch:
                total += value - self._default
        return total

    def total_between(self, first: Chronon, last: Chronon) -> int:
        """Total probes available over the chronon window ``[first, last]``.

        Used by the offline pigeonhole checks (a demand forced into a
        window can never exceed this total). Empty windows
        (``last < first``) have capacity 0.
        """
        if last < first:
            return 0
        total = self._default * (last - first + 1)
        for chronon, value in self._overrides.items():
            if first <= chronon <= last:
                total += value - self._default
        return total

    def is_constant(self) -> bool:
        """True when the budget has no per-chronon overrides."""
        return not self._overrides

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BudgetVector):
            return NotImplemented
        return (self._default == other._default
                and self._overrides == other._overrides)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_constant():
            return f"BudgetVector(C={self._default})"
        return (f"BudgetVector(C={self._default}, "
                f"overrides={len(self._overrides)})")
