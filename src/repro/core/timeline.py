"""Discrete time model: chronons and epochs.

The paper models time as an *epoch* ``T = (T_1, ..., T_K)`` made of ``K``
*chronons* — indivisible units of time. We represent a chronon by a plain
``int`` (1-based, matching the paper's notation) and an epoch by the
:class:`Epoch` value object, which mostly provides validated iteration and
membership helpers.

Keeping chronons as bare integers (rather than wrapping them in a class)
keeps the hot scheduling loops allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Chronon", "Epoch"]

# A chronon is an indivisible unit of time; we alias it for readable
# signatures throughout the code base.
Chronon = int


@dataclass(frozen=True, slots=True)
class Epoch:
    """An epoch of ``K`` chronons, numbered ``1..K`` inclusive.

    Parameters
    ----------
    length:
        Number of chronons ``K`` in the epoch. Must be positive.

    Examples
    --------
    >>> epoch = Epoch(5)
    >>> list(epoch)
    [1, 2, 3, 4, 5]
    >>> 3 in epoch
    True
    >>> epoch.last
    5
    """

    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"epoch length must be >= 1, got {self.length}")

    @property
    def first(self) -> Chronon:
        """The first chronon of the epoch (always 1)."""
        return 1

    @property
    def last(self) -> Chronon:
        """The last chronon ``T_K`` of the epoch."""
        return self.length

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Chronon]:
        return iter(range(1, self.length + 1))

    def __contains__(self, chronon: object) -> bool:
        if not isinstance(chronon, int) or isinstance(chronon, bool):
            return False
        return 1 <= chronon <= self.length

    def clamp(self, chronon: int) -> Chronon:
        """Clamp an arbitrary integer into the epoch's chronon range."""
        return max(1, min(self.length, chronon))

    def require(self, chronon: int) -> Chronon:
        """Validate that ``chronon`` lies inside the epoch and return it.

        Raises
        ------
        ValueError
            If the chronon falls outside ``[1, K]``.
        """
        if chronon not in self:
            raise ValueError(
                f"chronon {chronon} outside epoch [1, {self.length}]"
            )
        return chronon
