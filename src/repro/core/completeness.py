"""Gained completeness — the paper's objective function.

``GC(P, T, S) = sum_p sum_eta I(eta, S)  /  sum_p |p|``  (Section 3.3)

Besides the scalar GC we expose a :class:`CompletenessReport` with
per-profile and per-rank breakdowns, which the experiment harness uses to
report the same series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.profile import Profile, ProfileSet
from repro.core.schedule import Schedule

__all__ = ["CompletenessReport", "gained_completeness", "evaluate_schedule"]


@dataclass(frozen=True, slots=True)
class CompletenessReport:
    """Detailed capture accounting for a schedule over a profile set.

    Attributes
    ----------
    captured:
        Number of captured t-intervals (the GC numerator).
    total:
        Total number of t-intervals (the GC denominator).
    per_profile:
        ``profile_id -> (captured, total)`` pairs.
    per_rank:
        ``t-interval size -> (captured, total)`` pairs; useful for rank
        sweeps (Figure 4).
    """

    captured: int
    total: int
    per_profile: dict[int, tuple[int, int]] = field(default_factory=dict)
    per_rank: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def gc(self) -> float:
        """Gained completeness in ``[0, 1]``; 1.0 for an empty profile set.

        An empty set imposes no requirement, so we follow the convention
        that a vacuous objective is fully met.
        """
        if self.total == 0:
            return 1.0
        return self.captured / self.total

    def profile_gc(self, profile_id: int) -> float:
        """Gained completeness restricted to one profile."""
        captured, total = self.per_profile.get(profile_id, (0, 0))
        if total == 0:
            return 1.0
        return captured / total


def gained_completeness(profiles: ProfileSet, schedule: Schedule) -> float:
    """Compute the scalar GC of a schedule (Section 3.3 definition)."""
    return evaluate_schedule(profiles, schedule).gc


def evaluate_schedule(profiles: ProfileSet,
                      schedule: Schedule) -> CompletenessReport:
    """Full capture accounting of ``schedule`` against ``profiles``."""
    captured_total = 0
    total = 0
    per_profile: dict[int, tuple[int, int]] = {}
    per_rank: dict[int, tuple[int, int]] = {}
    for profile in profiles:
        profile_captured = 0
        for eta in profile:
            total += 1
            hit = schedule.captures_tinterval(eta)
            if hit:
                captured_total += 1
                profile_captured += 1
            rank_captured, rank_total = per_rank.get(eta.size, (0, 0))
            per_rank[eta.size] = (rank_captured + int(hit), rank_total + 1)
        per_profile[profile.profile_id] = (profile_captured, len(profile))
    return CompletenessReport(captured=captured_total, total=total,
                              per_profile=per_profile, per_rank=per_rank)
