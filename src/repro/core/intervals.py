"""Execution intervals and t-intervals — the paper's core abstractions.

An **execution interval** (EI) ``I = [T_s, T_f]`` on resource ``r`` is the
period during which the proxy must probe ``r`` at least once for the client
to be synchronized with the state of ``r`` (Section 3.1 of the paper).

A **t-interval** ``eta = {I_1, ..., I_k}`` is a set of EIs, possibly on
different resources; it is *captured* by a schedule only when *every* one of
its EIs is probed inside its window. The number of EIs in a t-interval is the
complexity measure from which profile rank is derived.

Both classes are immutable value objects; identity fields (``ei_id`` /
``tinterval_id``) give the online simulator stable keys without relying on
object identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.timeline import Chronon

__all__ = ["ExecutionInterval", "TInterval"]


@dataclass(frozen=True, slots=True)
class ExecutionInterval:
    """A single execution interval ``[start, finish]`` on one resource.

    Parameters
    ----------
    resource_id:
        Id of the resource this EI refers to.
    start:
        First chronon ``T_s`` at which a probe is useful (inclusive).
    finish:
        Last chronon ``T_f`` at which a probe is useful (inclusive).
        ``start <= finish`` is required; ``start == finish`` yields a
        unit-width EI (the ``P^[1]`` building block of Section 4.1.2).
    ei_id:
        Optional stable identity, assigned when the EI is attached to a
        t-interval; ``-1`` means unassigned.
    """

    resource_id: int
    start: Chronon
    finish: Chronon
    ei_id: int = -1

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ValueError(f"EI start must be >= 1, got {self.start}")
        if self.finish < self.start:
            raise ValueError(
                f"EI finish {self.finish} precedes start {self.start}"
            )
        if self.resource_id < 0:
            raise ValueError(
                f"EI resource_id must be >= 0, got {self.resource_id}"
            )

    @property
    def width(self) -> int:
        """Number of chronons in the EI (``finish - start + 1``)."""
        return self.finish - self.start + 1

    @property
    def is_unit(self) -> bool:
        """True when the EI spans exactly one chronon."""
        return self.start == self.finish

    def active_at(self, chronon: Chronon) -> bool:
        """True if ``chronon`` falls inside ``[start, finish]``."""
        return self.start <= chronon <= self.finish

    def expired_at(self, chronon: Chronon) -> bool:
        """True if the EI can no longer be captured at ``chronon``."""
        return chronon > self.finish

    def overlaps(self, other: "ExecutionInterval") -> bool:
        """True if the two EIs share at least one chronon (any resources)."""
        return self.start <= other.finish and other.start <= self.finish

    def chronons(self) -> range:
        """Iterate the chronons covered by this EI."""
        return range(self.start, self.finish + 1)

    def with_id(self, ei_id: int) -> "ExecutionInterval":
        """Return a copy of this EI carrying the given identity.

        Returns ``self`` when the identity already matches: EIs are
        immutable value objects, so the copy would be indistinguishable,
        and attach pipelines re-stamp the same ids many times over.
        """
        if self.ei_id == ei_id:
            return self
        return ExecutionInterval(self.resource_id, self.start, self.finish,
                                 ei_id=ei_id)

    def restamped(self, ei_id: int) -> "ExecutionInterval":
        """Like :meth:`with_id`, skipping re-validation of the bounds.

        ``self`` already passed ``__post_init__`` and only the identity
        changes, so the checks cannot fail; bulk attach paths (the fast
        template build stamps one copy per t-interval slot) use this to
        avoid paying them again.
        """
        if self.ei_id == ei_id:
            return self
        copy = object.__new__(ExecutionInterval)
        object.__setattr__(copy, "resource_id", self.resource_id)
        object.__setattr__(copy, "start", self.start)
        object.__setattr__(copy, "finish", self.finish)
        object.__setattr__(copy, "ei_id", ei_id)
        return copy

    def shifted(self, delta: int) -> "ExecutionInterval":
        """Return a copy shifted by ``delta`` chronons (id preserved)."""
        return ExecutionInterval(self.resource_id, self.start + delta,
                                 self.finish + delta, ei_id=self.ei_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"EI(r{self.resource_id}:[{self.start},{self.finish}])"


class TInterval:
    """A t-interval: a set of execution intervals to be jointly captured.

    The t-interval is the unit of gained completeness: it contributes to GC
    only when *all* of its EIs are captured. EIs inside a t-interval are
    *siblings* of each other (Section 3.1).

    Parameters
    ----------
    eis:
        The execution intervals composing the t-interval; at least one.
        Each EI gets a local ``ei_id`` equal to its position.
    tinterval_id:
        Optional stable identity, assigned by the owning profile/profile set;
        ``-1`` means unassigned.
    profile_id:
        Id of the owning profile (``-1`` until attached).
    """

    __slots__ = ("eis", "tinterval_id", "profile_id")

    def __init__(self, eis: Iterable[ExecutionInterval],
                 tinterval_id: int = -1, profile_id: int = -1) -> None:
        materialized = tuple(
            ei.with_id(index) for index, ei in enumerate(eis)
        )
        if not materialized:
            raise ValueError("a t-interval must contain at least one EI")
        self.eis: tuple[ExecutionInterval, ...] = materialized
        self.tinterval_id = tinterval_id
        self.profile_id = profile_id

    def __len__(self) -> int:
        return len(self.eis)

    def __iter__(self) -> Iterator[ExecutionInterval]:
        return iter(self.eis)

    def __getitem__(self, index: int) -> ExecutionInterval:
        return self.eis[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TInterval):
            return NotImplemented
        return (self.eis == other.eis
                and self.tinterval_id == other.tinterval_id
                and self.profile_id == other.profile_id)

    def __hash__(self) -> int:
        return hash((self.eis, self.tinterval_id, self.profile_id))

    @property
    def size(self) -> int:
        """Number of EIs — the t-interval's contribution to profile rank."""
        return len(self.eis)

    @property
    def earliest_start(self) -> Chronon:
        """Earliest ``T_s`` over the EIs — the online arrival chronon."""
        return min(ei.start for ei in self.eis)

    @property
    def latest_finish(self) -> Chronon:
        """Latest ``T_f`` over the EIs."""
        return max(ei.finish for ei in self.eis)

    @property
    def resource_ids(self) -> frozenset[int]:
        """Set of resources referenced by this t-interval."""
        return frozenset(ei.resource_id for ei in self.eis)

    @property
    def is_unit_width(self) -> bool:
        """True when every EI spans exactly one chronon (``P^[1]`` shape)."""
        return all(ei.is_unit for ei in self.eis)

    def siblings_of(self, ei: ExecutionInterval) -> tuple[ExecutionInterval, ...]:
        """All EIs of this t-interval except ``ei`` (matched by ``ei_id``)."""
        return tuple(other for other in self.eis if other.ei_id != ei.ei_id)

    def has_intra_resource_overlap(self) -> bool:
        """True if two sibling EIs on the *same* resource share a chronon."""
        by_resource: dict[int, list[ExecutionInterval]] = {}
        for ei in self.eis:
            by_resource.setdefault(ei.resource_id, []).append(ei)
        for group in by_resource.values():
            group.sort(key=lambda e: (e.start, e.finish))
            for left, right in zip(group, group[1:]):
                if right.start <= left.finish:
                    return True
        return False

    def attached(self, tinterval_id: int, profile_id: int) -> "TInterval":
        """Return a copy carrying identities assigned by the owner profile.

        Returns ``self`` when both identities already match (the copy
        would compare equal anyway).
        """
        if self.tinterval_id == tinterval_id and self.profile_id == profile_id:
            return self
        return TInterval(self.eis, tinterval_id=tinterval_id,
                         profile_id=profile_id)

    @classmethod
    def from_stamped(cls, eis: tuple["ExecutionInterval", ...],
                     tinterval_id: int, profile_id: int) -> "TInterval":
        """Construct from EIs whose ``ei_id`` already equals their position.

        Skips the per-EI re-stamping pass of ``__init__`` — the caller
        guarantees ``eis[i].ei_id == i`` and non-emptiness (the fast
        template build stamps members as it assembles them).
        """
        interval = cls.__new__(cls)
        interval.eis = eis
        interval.tinterval_id = tinterval_id
        interval.profile_id = profile_id
        return interval

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(str(ei) for ei in self.eis)
        return (f"TInterval(id={self.tinterval_id}, "
                f"profile={self.profile_id}, [{parts}])")
