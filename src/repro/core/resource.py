"""Resources and resource catalogs.

A *resource* is anything the proxy can probe: a Web feed, an auction page, a
stock ticker on a particular exchange. The scheduling model only needs a
stable integer identity per resource; names and metadata exist to make
examples and traces human-readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["Resource", "ResourceCatalog"]


@dataclass(frozen=True, slots=True)
class Resource:
    """A monitorable data source.

    Parameters
    ----------
    resource_id:
        Stable non-negative integer identity; unique within a catalog.
    name:
        Human-readable label (e.g. ``"ebay/intel-t60-auction-17"``).
    metadata:
        Optional free-form attributes (brand, category, market, ...).
        Stored as an immutable mapping view for hashing safety.
    """

    resource_id: int
    name: str = ""
    metadata: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.resource_id < 0:
            raise ValueError(f"resource_id must be >= 0, got {self.resource_id}")

    @classmethod
    def create(cls, resource_id: int, name: str = "",
               metadata: Mapping[str, str] | None = None) -> "Resource":
        """Build a resource from a plain metadata mapping."""
        items = tuple(sorted((metadata or {}).items()))
        return cls(resource_id=resource_id, name=name or f"r{resource_id}",
                   metadata=items)

    @property
    def meta(self) -> dict[str, str]:
        """Metadata as a plain dictionary (copy)."""
        return dict(self.metadata)

    def __int__(self) -> int:
        return self.resource_id


class ResourceCatalog:
    """An ordered, id-indexed collection of resources.

    The catalog guarantees that ``catalog[i].resource_id == i`` for dense
    catalogs created via :meth:`dense`, which lets hot loops use resource ids
    directly as array indexes.
    """

    def __init__(self, resources: Iterator[Resource] | list[Resource] = ()) -> None:
        self._by_id: dict[int, Resource] = {}
        for resource in resources:
            self.add(resource)

    @classmethod
    def dense(cls, count: int, prefix: str = "r",
              metadata_for: Mapping[int, Mapping[str, str]] | None = None
              ) -> "ResourceCatalog":
        """Create ``count`` resources with ids ``0..count-1``.

        Parameters
        ----------
        count:
            Number of resources to create.
        prefix:
            Name prefix; resource ``i`` is named ``f"{prefix}{i}"``.
        metadata_for:
            Optional per-id metadata mapping.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        catalog = cls()
        meta_map = metadata_for or {}
        for i in range(count):
            catalog.add(Resource.create(i, f"{prefix}{i}", meta_map.get(i)))
        return catalog

    def add(self, resource: Resource) -> None:
        """Add a resource; ids must be unique within the catalog."""
        if resource.resource_id in self._by_id:
            raise ValueError(f"duplicate resource_id {resource.resource_id}")
        self._by_id[resource.resource_id] = resource

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Resource]:
        return iter(sorted(self._by_id.values(), key=lambda r: r.resource_id))

    def __contains__(self, resource_id: object) -> bool:
        return resource_id in self._by_id

    def __getitem__(self, resource_id: int) -> Resource:
        try:
            return self._by_id[resource_id]
        except KeyError:
            raise KeyError(f"no resource with id {resource_id}") from None

    def ids(self) -> list[int]:
        """All resource ids in ascending order."""
        return sorted(self._by_id)

    def by_name(self, name: str) -> Resource:
        """Look a resource up by its (unique) name.

        Raises
        ------
        KeyError
            If no resource carries that name.
        """
        for resource in self._by_id.values():
            if resource.name == name:
                return resource
        raise KeyError(f"no resource named {name!r}")
