"""Client profiles and profile sets.

A *profile* ``p = {eta_1, ..., eta_|p|}`` is a collection of t-intervals that
together model one client's data needs (Section 3.1). The *rank* of a
profile is the maximal number of EIs in any of its t-intervals; the rank of
a profile set is the maximum over its profiles. Rank is the complexity
measure that the MRSF policy and the approximation bounds are stated in.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.timeline import Chronon

__all__ = ["Profile", "ProfileSet"]


class Profile:
    """A client profile — a set of t-intervals over shared resources.

    Parameters
    ----------
    tintervals:
        The t-intervals composing the profile. Each receives a local
        ``tinterval_id`` (position in the profile) and this profile's id.
    profile_id:
        Stable identity within a :class:`ProfileSet` (``-1`` = unattached).
    name:
        Human-readable label (e.g. ``"AuctionWatch(3)#12"``).
    """

    __slots__ = ("tintervals", "profile_id", "name")

    def __init__(self, tintervals: Iterable[TInterval],
                 profile_id: int = -1, name: str = "") -> None:
        self.profile_id = profile_id
        self.name = name or (f"p{profile_id}" if profile_id >= 0 else "p?")
        self.tintervals: tuple[TInterval, ...] = tuple(
            eta.attached(tinterval_id=index, profile_id=profile_id)
            for index, eta in enumerate(tintervals)
        )

    @classmethod
    def from_stamped(cls, tintervals: tuple[TInterval, ...],
                     profile_id: int, name: str) -> "Profile":
        """Construct from t-intervals already carrying their identities.

        Skips the attach pass of ``__init__`` — the caller guarantees
        ``tintervals[i].tinterval_id == i`` and
        ``tintervals[i].profile_id == profile_id`` (the fast template
        build stamps them during assembly).
        """
        profile = cls.__new__(cls)
        profile.profile_id = profile_id
        profile.name = name or (f"p{profile_id}" if profile_id >= 0
                                else "p?")
        profile.tintervals = tintervals
        return profile

    def __len__(self) -> int:
        """Number of t-intervals ``|p|`` (the GC denominator term)."""
        return len(self.tintervals)

    def __iter__(self) -> Iterator[TInterval]:
        return iter(self.tintervals)

    def __getitem__(self, index: int) -> TInterval:
        return self.tintervals[index]

    @property
    def rank(self) -> int:
        """``rank(p) = max_eta |eta|`` — 0 for an empty profile."""
        if not self.tintervals:
            return 0
        return max(eta.size for eta in self.tintervals)

    @property
    def resource_ids(self) -> frozenset[int]:
        """All resources referenced by the profile's t-intervals."""
        ids: set[int] = set()
        for eta in self.tintervals:
            ids.update(eta.resource_ids)
        return frozenset(ids)

    @property
    def is_unit_width(self) -> bool:
        """True when every EI in the profile has width one (``P^[1]``)."""
        return all(eta.is_unit_width for eta in self.tintervals)

    def has_intra_resource_overlap(self) -> bool:
        """True if any two EIs on the same resource overlap.

        Checks overlaps both inside a t-interval and *across* t-intervals of
        this profile — the paper's theoretical bounds (Proposition 4) assume
        the overlap-free case.
        """
        by_resource: dict[int, list[ExecutionInterval]] = {}
        for eta in self.tintervals:
            for ei in eta:
                by_resource.setdefault(ei.resource_id, []).append(ei)
        return _any_overlap(by_resource)

    def execution_intervals(self) -> Iterator[tuple[TInterval, ExecutionInterval]]:
        """Iterate ``(t-interval, EI)`` pairs across the whole profile."""
        for eta in self.tintervals:
            for ei in eta:
                yield eta, ei

    def attached(self, profile_id: int) -> "Profile":
        """Return a copy of this profile with ids assigned.

        Returns ``self`` when the id already matches (construction
        attaches the t-intervals consistently, so the copy would be
        equal). Otherwise the t-intervals are re-attached directly —
        :meth:`TInterval.attached` overwrites both identity fields, so
        no intermediate bare copy is needed.
        """
        if self.profile_id == profile_id:
            return self
        return Profile(self.tintervals, profile_id=profile_id,
                       name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Profile(id={self.profile_id}, name={self.name!r}, "
                f"|p|={len(self)}, rank={self.rank})")


class ProfileSet:
    """The proxy's registered profiles ``P = {p_1, ..., p_m}``.

    The profile set is the main input of both the offline solvers and the
    online simulator. It owns identity assignment: profiles get dense ids
    ``0..m-1`` and t-intervals keep ``(profile_id, tinterval_id)`` keys.
    """

    __slots__ = ("profiles",)

    def __init__(self, profiles: Iterable[Profile] = ()) -> None:
        self.profiles: tuple[Profile, ...] = tuple(
            profile.attached(profile_id=index)
            for index, profile in enumerate(profiles)
        )

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self) -> Iterator[Profile]:
        return iter(self.profiles)

    def __getitem__(self, index: int) -> Profile:
        return self.profiles[index]

    @property
    def rank(self) -> int:
        """``rank(P) = max_p rank(p)`` — 0 for an empty set."""
        if not self.profiles:
            return 0
        return max(profile.rank for profile in self.profiles)

    @property
    def total_tintervals(self) -> int:
        """``sum_p |p|`` — the GC denominator."""
        return sum(len(profile) for profile in self.profiles)

    @property
    def resource_ids(self) -> frozenset[int]:
        """All resources referenced anywhere in the profile set."""
        ids: set[int] = set()
        for profile in self.profiles:
            ids.update(profile.resource_ids)
        return frozenset(ids)

    @property
    def is_unit_width(self) -> bool:
        """True when the whole set is ``P^[1]`` (all EIs of width one)."""
        return all(profile.is_unit_width for profile in self.profiles)

    def has_intra_resource_overlap(self) -> bool:
        """True if any two EIs on the same resource overlap, set-wide."""
        by_resource: dict[int, list[ExecutionInterval]] = {}
        for profile in self.profiles:
            for eta in profile:
                for ei in eta:
                    by_resource.setdefault(ei.resource_id, []).append(ei)
        return _any_overlap(by_resource)

    def tintervals(self) -> Iterator[TInterval]:
        """Iterate every t-interval of every profile."""
        for profile in self.profiles:
            yield from profile.tintervals

    def tinterval(self, profile_id: int, tinterval_id: int) -> TInterval:
        """Look a t-interval up by its ``(profile_id, tinterval_id)`` key."""
        return self.profiles[profile_id][tinterval_id]

    def horizon(self) -> Chronon:
        """Latest finish chronon over all EIs (1 for an empty set)."""
        latest = 1
        for eta in self.tintervals():
            latest = max(latest, eta.latest_finish)
        return latest

    def rank_of(self, eta: TInterval) -> int:
        """``rank(p)`` of the profile owning ``eta``.

        The MRSF score (Section 4.2.2) is defined against the *profile*
        rank, not the t-interval size.
        """
        return self.profiles[eta.profile_id].rank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ProfileSet(m={len(self)}, rank={self.rank}, "
                f"tintervals={self.total_tintervals})")


def _any_overlap(by_resource: dict[int, list[ExecutionInterval]]) -> bool:
    """True if any same-resource EI list contains an overlapping pair."""
    for group in by_resource.values():
        group.sort(key=lambda e: (e.start, e.finish))
        for left, right in zip(group, group[1:]):
            if right.start <= left.finish:
                return True
    return False
