"""Data delivery schedules and capture indicators.

A schedule ``S`` assigns ``s_{i,j} = 1`` when resource ``r_i`` is probed at
chronon ``T_j`` (Section 3.2). We store the sparse probe set rather than the
dense ``n x K`` matrix — realistic budgets make schedules very sparse.

The module also implements the paper's capture indicators:

* ``I(I, S) = 1``   iff some probe of ``I``'s resource falls inside ``I``;
* ``I(eta, S) = 1`` iff every EI of the t-interval is captured.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.core.budget import BudgetVector
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.timeline import Chronon, Epoch

__all__ = ["Probe", "Schedule"]

# A probe is the pair (resource_id, chronon); kept as a plain tuple for
# speed in the simulator's inner loop.
Probe = tuple[int, Chronon]


class Schedule:
    """A sparse probing schedule.

    Parameters
    ----------
    probes:
        Initial ``(resource_id, chronon)`` pairs. Duplicates collapse.

    Notes
    -----
    Probe chronons are kept per resource as a set (O(1) duplicate checks)
    with a lazily rebuilt sorted view so that capture checks cost
    ``O(log #probes_on_resource)`` via bisection.
    """

    __slots__ = ("_chronons", "_sorted_cache", "_count")

    def __init__(self, probes: Iterable[Probe] = ()) -> None:
        self._chronons: dict[int, set[Chronon]] = {}
        self._sorted_cache: dict[int, list[Chronon]] = {}
        self._count = 0
        for resource_id, chronon in probes:
            self.add_probe(resource_id, chronon)

    @classmethod
    def from_grouped(cls, chronons: dict[int, set[Chronon]]) -> "Schedule":
        """Adopt pre-grouped per-resource chronon sets without validation.

        Bulk path for engines that already guarantee valid, deduplicated
        probes (the batch engine emits each (resource, chronon) pair at
        most once per run by construction). The mapping is adopted, not
        copied.
        """
        schedule = cls()
        schedule._chronons = chronons
        schedule._count = sum(len(c) for c in chronons.values())
        return schedule

    def add_probe(self, resource_id: int, chronon: Chronon) -> bool:
        """Record a probe; returns False when it was already present."""
        if resource_id < 0:
            raise ValueError(f"resource_id must be >= 0, got {resource_id}")
        if chronon < 1:
            raise ValueError(f"chronon must be >= 1, got {chronon}")
        chronons = self._chronons.setdefault(resource_id, set())
        if chronon in chronons:
            return False
        chronons.add(chronon)
        self._sorted_cache.pop(resource_id, None)
        self._count += 1
        return True

    def _sorted(self, resource_id: int) -> list[Chronon]:
        cached = self._sorted_cache.get(resource_id)
        if cached is None:
            cached = sorted(self._chronons.get(resource_id, ()))
            self._sorted_cache[resource_id] = cached
        return cached

    def __len__(self) -> int:
        """Total number of probes in the schedule."""
        return self._count

    def __contains__(self, probe: object) -> bool:
        if not isinstance(probe, tuple) or len(probe) != 2:
            return False
        resource_id, chronon = probe
        return chronon in self._chronons.get(resource_id, ())

    def probes(self) -> Iterator[Probe]:
        """Iterate all probes ordered by (chronon, resource)."""
        flat = [(chronon, resource_id)
                for resource_id, chronons in self._chronons.items()
                for chronon in chronons]
        flat.sort()
        for chronon, resource_id in flat:
            yield resource_id, chronon

    def probes_at(self, chronon: Chronon) -> list[int]:
        """Resources probed at a given chronon (sorted by id)."""
        return sorted(resource_id
                      for resource_id, chronons in self._chronons.items()
                      if chronon in chronons)

    def probe_chronons(self, resource_id: int) -> list[Chronon]:
        """Sorted chronons at which ``resource_id`` is probed."""
        return list(self._sorted(resource_id))

    # ------------------------------------------------------------------
    # Capture indicators (paper Section 3.2)
    # ------------------------------------------------------------------

    def captures_ei(self, ei: ExecutionInterval) -> bool:
        """``I(I, S)``: does some probe fall inside the EI's window?"""
        chronons = self._sorted(ei.resource_id)
        index = bisect.bisect_left(chronons, ei.start)
        return index < len(chronons) and chronons[index] <= ei.finish

    def captures_tinterval(self, eta: TInterval) -> bool:
        """``I(eta, S)``: are all EIs of the t-interval captured?"""
        return all(self.captures_ei(ei) for ei in eta)

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------

    def respects_budget(self, budget: BudgetVector, epoch: Epoch) -> bool:
        """True when no chronon exceeds its budget and probes fit the epoch."""
        per_chronon: dict[Chronon, int] = {}
        for _resource_id, chronon in self.probes():
            if chronon not in epoch:
                return False
            per_chronon[chronon] = per_chronon.get(chronon, 0) + 1
        return all(count <= budget.at(chronon)
                   for chronon, count in per_chronon.items())

    def copy(self) -> "Schedule":
        """Deep copy of the schedule."""
        return Schedule(self.probes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(probes={self._count})"
