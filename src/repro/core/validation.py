"""Instance validation: catch unsatisfiable inputs before running.

The model accepts many inputs that can never contribute completeness — an
EI entirely outside the epoch, a unit-width t-interval needing more
simultaneous probes than the budget allows, an empty profile diluting
nothing but signaling a workload bug. :func:`validate_instance` collects
such findings as structured diagnostics (never raising), so callers can
warn, fail, or filter as policy dictates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.core.budget import BudgetVector
from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch

__all__ = ["Diagnostic", "ValidationReport", "validate_instance"]

Severity = Literal["error", "warning"]


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One validation finding.

    ``error`` findings mean the flagged t-interval can never be captured;
    ``warning`` findings are suspicious but harmless.
    """

    severity: Severity
    code: str
    message: str
    profile_id: int = -1
    tinterval_id: int = -1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = ""
        if self.profile_id >= 0:
            where = f" [profile {self.profile_id}"
            if self.tinterval_id >= 0:
                where += f", t-interval {self.tinterval_id}"
            where += "]"
        return f"{self.severity}: {self.code}: {self.message}{where}"


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """All findings for one instance."""

    diagnostics: tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not any(d.severity == "error" for d in self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        """Findings that make a t-interval uncapturable."""
        return [d for d in self.diagnostics if d.severity == "error"]

    def warnings(self) -> list[Diagnostic]:
        """Suspicious-but-harmless findings."""
        return [d for d in self.diagnostics if d.severity == "warning"]

    def uncapturable_keys(self) -> set[tuple[int, int]]:
        """Keys of t-intervals flagged as never capturable."""
        return {(d.profile_id, d.tinterval_id)
                for d in self.diagnostics
                if d.severity == "error" and d.tinterval_id >= 0}


def validate_instance(profiles: ProfileSet, epoch: Epoch,
                      budget: BudgetVector) -> ValidationReport:
    """Check a monitoring instance for unsatisfiable or suspicious parts.

    Findings (codes):

    * ``ei-outside-epoch`` (error) — an EI's window lies entirely past
      the epoch end; its t-interval can never complete.
    * ``simultaneous-demand`` (error) — a unit-width t-interval needs
      more distinct resources at one chronon than that chronon's budget.
    * ``zero-budget-window`` (error) — every chronon of some EI's window
      has budget 0.
    * ``empty-profile`` (warning) — a profile with no t-intervals.
    * ``duplicate-tinterval`` (warning) — two identical t-intervals in
      one profile (each still counts toward GC; usually a generator bug).
    """
    diagnostics: list[Diagnostic] = []
    for profile in profiles:
        if len(profile) == 0:
            diagnostics.append(Diagnostic(
                "warning", "empty-profile",
                f"profile {profile.name!r} has no t-intervals",
                profile_id=profile.profile_id))
            continue

        seen: dict[tuple, int] = {}
        for eta in profile:
            signature = tuple(sorted(
                (ei.resource_id, ei.start, ei.finish) for ei in eta))
            if signature in seen:
                diagnostics.append(Diagnostic(
                    "warning", "duplicate-tinterval",
                    f"identical to t-interval {seen[signature]}",
                    profile_id=profile.profile_id,
                    tinterval_id=eta.tinterval_id))
            else:
                seen[signature] = eta.tinterval_id

            for ei in eta:
                if ei.start > epoch.last:
                    diagnostics.append(Diagnostic(
                        "error", "ei-outside-epoch",
                        f"EI on resource {ei.resource_id} starts at "
                        f"{ei.start}, past the epoch end {epoch.last}",
                        profile_id=profile.profile_id,
                        tinterval_id=eta.tinterval_id))
                    break
                first = max(1, ei.start)
                last = min(epoch.last, ei.finish)
                if all(budget.at(chronon) == 0
                       for chronon in range(first, last + 1)):
                    diagnostics.append(Diagnostic(
                        "error", "zero-budget-window",
                        f"EI on resource {ei.resource_id} window "
                        f"[{ei.start},{ei.finish}] has no budget",
                        profile_id=profile.profile_id,
                        tinterval_id=eta.tinterval_id))
                    break
            else:
                if eta.is_unit_width:
                    demands: dict[int, set[int]] = {}
                    for ei in eta:
                        demands.setdefault(ei.start,
                                           set()).add(ei.resource_id)
                    for chronon, resources in demands.items():
                        if len(resources) > budget.at(chronon):
                            diagnostics.append(Diagnostic(
                                "error", "simultaneous-demand",
                                f"needs {len(resources)} probes at "
                                f"chronon {chronon}, budget "
                                f"{budget.at(chronon)}",
                                profile_id=profile.profile_id,
                                tinterval_id=eta.tinterval_id))
                            break
    return ValidationReport(diagnostics=tuple(diagnostics))
