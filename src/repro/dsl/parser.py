"""Recursive-descent parser for the profile specification language.

Grammar (EBNF)::

    document   := profile* EOF
    profile    := "profile" IDENT "{" statement* "}"
    statement  := verb resources [grouping] [trigger] restriction
                  [quota] ";"
    verb       := "watch" | "subscribe"
    resources  := resource ("," resource)*
    resource   := IDENT | INT
    grouping   := "indexed" | "overlap"            (watch only)
    trigger    := "every" INT                      (watch only; temporal
                                                    rounds instead of
                                                    update-driven EIs)
    restriction:= "within" INT | "until" "overwrite"
    quota      := "quota" INT                      (watch only)

Example::

    # arbitrage: both markets fresh within 10 chronons, overlapping
    profile arbitrage {
        watch market-0, market-1 overlap within 10;
    }
    profile inbox {
        subscribe feed/cnn, feed/bbc until overwrite;
    }
    profile digest {
        watch 3, 4, 5 indexed within 20 quota 2;
    }
"""

from __future__ import annotations

from repro.dsl.ast import Document, ProfileSpec, ResourceRef, Statement
from repro.dsl.errors import DslSyntaxError
from repro.dsl.tokens import Token, tokenize

__all__ = ["parse"]

_VERBS = {"watch", "subscribe"}
_GROUPINGS = {"indexed", "overlap"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "EOF":
            self._index += 1
        return token

    @staticmethod
    def _describe(token: Token) -> str:
        return repr(token.value) if token.value else "end of file"

    def _expect(self, kind: str, what: str) -> Token:
        token = self._current
        if token.kind != kind:
            raise DslSyntaxError(
                f"expected {what}, found {self._describe(token)}",
                token.line, token.column)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._current
        if token.kind != "IDENT" or token.value != word:
            raise DslSyntaxError(
                f"expected {word!r}, found {self._describe(token)}",
                token.line, token.column)
        return self._advance()

    def _expect_int(self, what: str) -> int:
        token = self._expect("INT", what)
        return int(token.value)

    # -- grammar productions --------------------------------------------

    def document(self) -> Document:
        profiles: list[ProfileSpec] = []
        while self._current.kind != "EOF":
            profiles.append(self.profile())
        return Document(profiles=tuple(profiles))

    def profile(self) -> ProfileSpec:
        keyword = self._expect_keyword("profile")
        name = self._expect("IDENT", "a profile name").value
        self._expect("LBRACE", "'{'")
        statements: list[Statement] = []
        while not (self._current.kind == "RBRACE"):
            if self._current.kind == "EOF":
                raise DslSyntaxError("unterminated profile block",
                                     keyword.line, keyword.column)
            statements.append(self.statement())
        self._expect("RBRACE", "'}'")
        return ProfileSpec(name=name, statements=tuple(statements),
                           line=keyword.line)

    def statement(self) -> Statement:
        verb_token = self._current
        if verb_token.kind != "IDENT" or verb_token.value not in _VERBS:
            raise DslSyntaxError(
                f"expected 'watch' or 'subscribe', found "
                f"{verb_token.value!r}",
                verb_token.line, verb_token.column)
        self._advance()
        kind = verb_token.value

        resources = [self._resource()]
        while self._current.kind == "COMMA":
            self._advance()
            resources.append(self._resource())

        grouping = "indexed"
        if (self._current.kind == "IDENT"
                and self._current.value in _GROUPINGS):
            if kind == "subscribe":
                raise DslSyntaxError(
                    "grouping applies to 'watch' statements only",
                    self._current.line, self._current.column)
            grouping = self._advance().value

        period: int | None = None
        if self._current.kind == "IDENT" and self._current.value == "every":
            every_token = self._advance()
            if kind == "subscribe":
                raise DslSyntaxError(
                    "'every' applies to 'watch' statements only",
                    every_token.line, every_token.column)
            period = self._expect_int("a trigger period")
            if period < 1:
                raise DslSyntaxError("period must be >= 1",
                                     every_token.line, every_token.column)

        restriction, window = self._restriction()
        if period is not None and restriction != "window":
            raise DslSyntaxError(
                "'every' requires a 'within <W>' restriction (the round "
                "window); 'until overwrite' is update-driven",
                verb_token.line, verb_token.column)

        quota: int | None = None
        if self._current.kind == "IDENT" and self._current.value == "quota":
            quota_token = self._advance()
            if kind == "subscribe":
                raise DslSyntaxError(
                    "quota applies to 'watch' statements only",
                    quota_token.line, quota_token.column)
            quota = self._expect_int("a quota value")
            if quota < 1:
                raise DslSyntaxError("quota must be >= 1",
                                     quota_token.line, quota_token.column)

        self._expect("SEMI", "';'")
        return Statement(kind=kind, resources=tuple(resources),
                         restriction=restriction, window=window,
                         grouping=grouping, quota=quota, period=period,
                         line=verb_token.line)

    def _resource(self) -> ResourceRef:
        token = self._current
        if token.kind not in ("IDENT", "INT"):
            raise DslSyntaxError(
                f"expected a resource name or id, found {token.value!r}",
                token.line, token.column)
        self._advance()
        return ResourceRef(text=token.value, line=token.line,
                           column=token.column)

    def _restriction(self) -> tuple[str, int | None]:
        token = self._current
        if token.kind == "IDENT" and token.value == "within":
            self._advance()
            window = self._expect_int("a window width")
            return "window", window
        if token.kind == "IDENT" and token.value == "until":
            self._advance()
            self._expect_keyword("overwrite")
            return "overwrite", None
        raise DslSyntaxError(
            f"expected 'within <W>' or 'until overwrite', found "
            f"{token.value!r}",
            token.line, token.column)


def parse(text: str) -> Document:
    """Parse a profile specification document.

    Raises
    ------
    DslSyntaxError
        With a 1-based source position, on any malformed input.
    """
    return _Parser(tokenize(text)).document()
