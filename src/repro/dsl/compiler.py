"""Compiling parsed profile specifications into model objects.

The compiler resolves resource references (numeric ids directly, names
through a :class:`~repro.core.resource.ResourceCatalog`), instantiates the
matching templates per statement, and materializes concrete profiles
against an update trace — producing a :class:`ProfileSet` plus the
:class:`~repro.extensions.partial.QuotaMap` induced by ``quota`` clauses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profile import Profile, ProfileSet
from repro.core.resource import ResourceCatalog
from repro.core.timeline import Epoch
from repro.dsl.ast import Document, ProfileSpec, ResourceRef, Statement
from repro.dsl.errors import DslSemanticError
from repro.dsl.parser import parse
from repro.extensions.partial import QuotaMap
from repro.traces.events import UpdateTrace
from repro.workloads.restrictions import (
    OverwriteRestriction,
    WindowRestriction,
)
from repro.workloads.templates import (
    AuctionWatchTemplate,
    PeriodicWatchTemplate,
    SingleResourceTemplate,
)

__all__ = ["CompiledProfiles", "compile_text", "compile_document"]


@dataclass(frozen=True, slots=True)
class CompiledProfiles:
    """The result of compiling a specification against a trace.

    Attributes
    ----------
    profiles:
        The materialized profile set (profile order follows the document).
    quotas:
        Quota map induced by ``quota`` clauses (all-required elsewhere).
    names:
        ``profile_id -> document profile name``.
    """

    profiles: ProfileSet
    quotas: QuotaMap
    names: dict[int, str]


def compile_text(text: str, trace: UpdateTrace, epoch: Epoch,
                 catalog: ResourceCatalog | None = None
                 ) -> CompiledProfiles:
    """Parse and compile a specification document in one call."""
    return compile_document(parse(text), trace, epoch, catalog=catalog)


def compile_document(document: Document, trace: UpdateTrace, epoch: Epoch,
                     catalog: ResourceCatalog | None = None
                     ) -> CompiledProfiles:
    """Compile a parsed document against a trace.

    Raises
    ------
    DslSemanticError
        On duplicate profile names, unresolvable resources, duplicate
        resources within a statement, or quotas exceeding statement arity.
    """
    seen_names: set[str] = set()
    for spec in document.profiles:
        if spec.name in seen_names:
            raise DslSemanticError(
                f"duplicate profile name {spec.name!r} "
                f"(line {spec.line})")
        seen_names.add(spec.name)

    built: list[Profile] = []
    quota_positions: list[dict[int, int]] = []  # per profile: index->quota
    for spec in document.profiles:
        profile, quotas_by_index = _compile_profile(spec, trace, epoch,
                                                    catalog)
        built.append(profile)
        quota_positions.append(quotas_by_index)

    profiles = ProfileSet(built)
    quota_entries: dict[tuple[int, int], int] = {}
    for profile, positions in zip(profiles, quota_positions):
        for tinterval_index, quota in positions.items():
            quota_entries[(profile.profile_id, tinterval_index)] = quota
    names = {profile.profile_id: spec.name
             for profile, spec in zip(profiles, document.profiles)}
    return CompiledProfiles(profiles=profiles,
                            quotas=QuotaMap(quota_entries),
                            names=names)


def _compile_profile(spec: ProfileSpec, trace: UpdateTrace, epoch: Epoch,
                     catalog: ResourceCatalog | None
                     ) -> tuple[Profile, dict[int, int]]:
    tintervals = []
    quotas_by_index: dict[int, int] = {}
    for statement in spec.statements:
        resource_ids = _resolve_resources(statement, catalog)
        template = _template_for(statement)
        piece = template.build_profile(resource_ids, trace, epoch,
                                       name=spec.name)
        start_index = len(tintervals)
        tintervals.extend(eta for eta in piece)
        if statement.quota is not None:
            if statement.quota > len(resource_ids):
                raise DslSemanticError(
                    f"quota {statement.quota} exceeds the "
                    f"{len(resource_ids)} watched resources "
                    f"(line {statement.line})")
            for offset in range(len(piece)):
                quotas_by_index[start_index + offset] = statement.quota
    return Profile(tintervals, name=spec.name), quotas_by_index


def _template_for(statement: Statement):
    if statement.period is not None:
        # Temporal trigger: rounds every `period` chronons, each open
        # for the statement's window width.
        return PeriodicWatchTemplate(statement.period,
                                     width=statement.window or 0)
    if statement.restriction == "window":
        restriction = WindowRestriction(statement.window or 0)
    else:
        restriction = OverwriteRestriction()
    if statement.kind == "watch":
        return AuctionWatchTemplate(restriction,
                                    grouping=statement.grouping)
    return SingleResourceTemplate(restriction)


def _resolve_resources(statement: Statement,
                       catalog: ResourceCatalog | None) -> list[int]:
    resolved: list[int] = []
    for ref in statement.resources:
        resolved.append(_resolve_one(ref, catalog))
    if len(set(resolved)) != len(resolved):
        raise DslSemanticError(
            f"duplicate resources in statement (line {statement.line})")
    return resolved


def _resolve_one(ref: ResourceRef, catalog: ResourceCatalog | None) -> int:
    if ref.is_numeric:
        resource_id = int(ref.text)
        if catalog is not None and resource_id not in catalog:
            raise DslSemanticError(
                f"resource id {resource_id} not in catalog "
                f"(line {ref.line})")
        return resource_id
    if catalog is None:
        raise DslSemanticError(
            f"named resource {ref.text!r} needs a catalog "
            f"(line {ref.line})")
    try:
        return catalog.by_name(ref.text).resource_id
    except KeyError:
        raise DslSemanticError(
            f"unknown resource {ref.text!r} (line {ref.line})"
        ) from None
