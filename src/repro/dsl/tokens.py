"""Tokenizer for the profile specification language.

The language is small and line-oriented in spirit:

* identifiers: ``[A-Za-z_][A-Za-z0-9_/.-]*`` (resource and profile names
  may contain ``/``, ``.`` and ``-`` — feed URLs and auction slugs);
* integers, punctuation ``{ } , ;``;
* comments: ``#`` to end of line;
* keywords are ordinary identifiers recognized by the parser, so a
  resource may legally be named ``watch`` if it is quoted by position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.dsl.errors import DslSyntaxError

__all__ = ["Token", "tokenize"]

_PUNCTUATION = {"{": "LBRACE", "}": "RBRACE", ",": "COMMA", ";": "SEMI"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # "IDENT" | "INT" | "LBRACE" | "RBRACE" | "COMMA" | "SEMI" | "EOF"
    value: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char in "_/.-"


def tokenize(text: str) -> list[Token]:
    """Tokenize a document; always ends with an EOF token.

    Raises
    ------
    DslSyntaxError
        On any unexpected character.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[char], char, line, column))
            index += 1
            column += 1
            continue
        if char.isdigit():
            start = index
            start_column = column
            while index < length and text[index].isdigit():
                index += 1
                column += 1
            tokens.append(Token("INT", text[start:index], line,
                                start_column))
            continue
        if _is_ident_start(char):
            start = index
            start_column = column
            while index < length and _is_ident_char(text[index]):
                index += 1
                column += 1
            tokens.append(Token("IDENT", text[start:index], line,
                                start_column))
            continue
        raise DslSyntaxError(f"unexpected character {char!r}", line,
                             column)
    tokens.append(Token("EOF", "", line, column))
    return tokens
