"""DSL-specific errors, carrying source positions."""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = ["DslError", "DslSyntaxError", "DslSemanticError"]


class DslError(ReproError):
    """Base class for profile-language errors."""


class DslSyntaxError(DslError):
    """Tokenization/parse failure at a known source position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class DslSemanticError(DslError):
    """A well-formed document that cannot be compiled (unknown resource,
    duplicate profile names, invalid quota...)."""
