"""``repro-dsl``: check and format profile specification files.

Subcommands::

    repro-dsl check  spec.profiles     # parse; report errors with positions
    repro-dsl format spec.profiles     # print the canonical form
    repro-dsl format --write spec.profiles   # rewrite in place
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.dsl.errors import DslError
from repro.dsl.parser import parse
from repro.dsl.printer import format_document

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dsl",
        description="Check and format profile specification files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and report problems")
    check.add_argument("files", nargs="+", metavar="FILE")

    fmt = sub.add_parser("format", help="print the canonical form")
    fmt.add_argument("files", nargs="+", metavar="FILE")
    fmt.add_argument("--write", action="store_true",
                     help="rewrite files in place instead of printing")
    return parser


def _check(paths: list[str]) -> int:
    status = 0
    for name in paths:
        path = Path(name)
        try:
            document = parse(path.read_text())
        except OSError as exc:
            print(f"{name}: cannot read: {exc}", file=sys.stderr)
            status = 1
            continue
        except DslError as exc:
            print(f"{name}: {exc}", file=sys.stderr)
            status = 1
            continue
        count = len(document.profiles)
        statements = sum(len(spec.statements)
                         for spec in document.profiles)
        print(f"{name}: OK ({count} profiles, {statements} statements)")
    return status


def _format(paths: list[str], write: bool) -> int:
    status = 0
    for name in paths:
        path = Path(name)
        try:
            text = path.read_text()
            formatted = format_document(parse(text))
        except OSError as exc:
            print(f"{name}: cannot read: {exc}", file=sys.stderr)
            status = 1
            continue
        except DslError as exc:
            print(f"{name}: {exc}", file=sys.stderr)
            status = 1
            continue
        if write:
            if formatted != text:
                path.write_text(formatted)
                print(f"{name}: reformatted")
            else:
                print(f"{name}: already canonical")
        else:
            print(formatted, end="")
    return status


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return _check(args.files)
    return _format(args.files, args.write)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
