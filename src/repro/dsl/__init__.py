"""The profile specification language (parser + compiler).

A small declarative language for registering monitoring profiles — the
role the paper assigns to the execution-interval specification language of
its reference [15]::

    profile arbitrage {
        watch market-0, market-1 overlap within 10;
    }
    profile inbox {
        subscribe feed/cnn, feed/bbc until overwrite;
    }
    profile digest {
        watch 3, 4, 5 indexed within 20 quota 2;
    }

Use :func:`parse` for the AST, :func:`compile_text` to materialize
profiles against a trace, and the result's ``quotas`` with
:func:`repro.extensions.run_with_quotas` when quota clauses are present.
"""

from repro.dsl.ast import Document, ProfileSpec, ResourceRef, Statement
from repro.dsl.compiler import (
    CompiledProfiles,
    compile_document,
    compile_text,
)
from repro.dsl.errors import DslError, DslSemanticError, DslSyntaxError
from repro.dsl.parser import parse
from repro.dsl.printer import (
    format_document,
    format_profile,
    format_statement,
)
from repro.dsl.tokens import Token, tokenize

__all__ = [
    "CompiledProfiles",
    "Document",
    "DslError",
    "DslSemanticError",
    "DslSyntaxError",
    "ProfileSpec",
    "ResourceRef",
    "Statement",
    "Token",
    "compile_document",
    "compile_text",
    "format_document",
    "format_profile",
    "format_statement",
    "parse",
    "tokenize",
]
