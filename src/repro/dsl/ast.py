"""Abstract syntax tree of the profile specification language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

__all__ = ["ResourceRef", "Statement", "ProfileSpec", "Document"]

Grouping = Literal["indexed", "overlap"]
RestrictionKind = Literal["window", "overwrite"]
StatementKind = Literal["watch", "subscribe"]


@dataclass(frozen=True, slots=True)
class ResourceRef:
    """A resource mention: either a numeric id or a catalog name."""

    text: str
    line: int
    column: int

    @property
    def is_numeric(self) -> bool:
        return self.text.isdigit()


@dataclass(frozen=True, slots=True)
class Statement:
    """One monitoring statement inside a profile block.

    ``watch`` builds complex (rank = #resources) t-intervals via the
    AuctionWatch template; ``subscribe`` builds rank-1 t-intervals via the
    SingleResource template. ``quota`` (watch only) relaxes capture to
    k-of-n semantics for the t-intervals this statement produces.
    """

    kind: StatementKind
    resources: tuple[ResourceRef, ...]
    restriction: RestrictionKind
    window: int | None  # None iff restriction == "overwrite"
    grouping: Grouping = "indexed"
    quota: int | None = None
    #: Temporal trigger: rounds fire every ``period`` chronons instead of
    #: on updates (the paper's "every ten minutes" example). ``None`` =
    #: update-driven. Only valid on ``watch`` with a window restriction.
    period: int | None = None
    line: int = 0


@dataclass(frozen=True, slots=True)
class ProfileSpec:
    """One ``profile <name> { ... }`` block."""

    name: str
    statements: tuple[Statement, ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Document:
    """A parsed specification file: an ordered list of profiles."""

    profiles: tuple[ProfileSpec, ...]

    def profile(self, name: str) -> ProfileSpec:
        """Look a profile block up by name.

        Raises
        ------
        KeyError
            If no block carries that name.
        """
        for spec in self.profiles:
            if spec.name == name:
                return spec
        raise KeyError(f"no profile named {name!r}")
