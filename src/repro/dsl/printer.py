"""Pretty-printer for profile specification documents.

``format_document(parse(text))`` is the canonical form of ``text``;
formatting is stable (``parse(format_document(doc)) == doc``), which the
property tests rely on.
"""

from __future__ import annotations

from repro.dsl.ast import Document, ProfileSpec, Statement

__all__ = ["format_document", "format_profile", "format_statement"]


def format_statement(statement: Statement) -> str:
    """One statement as canonical source text (no trailing newline)."""
    parts = [statement.kind,
             ", ".join(ref.text for ref in statement.resources)]
    if statement.kind == "watch" and statement.grouping != "indexed":
        parts.append(statement.grouping)
    if statement.period is not None:
        parts.append(f"every {statement.period}")
    if statement.restriction == "window":
        parts.append(f"within {statement.window}")
    else:
        parts.append("until overwrite")
    if statement.quota is not None:
        parts.append(f"quota {statement.quota}")
    return " ".join(parts) + ";"


def format_profile(spec: ProfileSpec) -> str:
    """One profile block as canonical source text."""
    lines = [f"profile {spec.name} {{"]
    lines.extend(f"    {format_statement(statement)}"
                 for statement in spec.statements)
    lines.append("}")
    return "\n".join(lines)


def format_document(document: Document) -> str:
    """A whole document as canonical source text (trailing newline)."""
    if not document.profiles:
        return ""
    return "\n\n".join(format_profile(spec)
                       for spec in document.profiles) + "\n"
