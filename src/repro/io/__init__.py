"""JSON persistence for model objects and results."""

from repro.io.json_codec import (
    budget_from_jsonable,
    budget_to_jsonable,
    load_profiles,
    load_result,
    profiles_from_jsonable,
    profiles_to_jsonable,
    result_from_jsonable,
    result_to_jsonable,
    save_profiles,
    save_result,
    schedule_from_jsonable,
    schedule_to_jsonable,
)

__all__ = [
    "budget_from_jsonable",
    "budget_to_jsonable",
    "load_profiles",
    "load_result",
    "profiles_from_jsonable",
    "profiles_to_jsonable",
    "result_from_jsonable",
    "result_to_jsonable",
    "save_profiles",
    "save_result",
    "schedule_from_jsonable",
    "schedule_to_jsonable",
]
