"""JSON serialization for model objects.

Profiles, schedules, budgets, and simulation results round-trip through
plain-JSON structures with a versioned envelope, so experiment artifacts
can be stored, diffed, and reloaded across sessions::

    save_profiles(profiles, "profiles.json")
    profiles = load_profiles("profiles.json")

Envelope format: ``{"format": "repro/<kind>", "version": 1, "data": ...}``.
Unknown formats/versions raise :class:`~repro.core.errors.ModelError`
rather than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport
from repro.core.errors import ModelError
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile, ProfileSet
from repro.core.schedule import Schedule
from repro.simulation.result import SimulationResult

__all__ = [
    "profiles_to_jsonable",
    "profiles_from_jsonable",
    "schedule_to_jsonable",
    "schedule_from_jsonable",
    "budget_to_jsonable",
    "budget_from_jsonable",
    "result_to_jsonable",
    "result_from_jsonable",
    "save_profiles",
    "load_profiles",
    "save_result",
    "load_result",
]

_VERSION = 1


def _envelope(kind: str, data) -> dict:
    return {"format": f"repro/{kind}", "version": _VERSION, "data": data}


def _open_envelope(obj, kind: str):
    if not isinstance(obj, dict):
        raise ModelError(f"expected a repro/{kind} envelope, got "
                         f"{type(obj).__name__}")
    if obj.get("format") != f"repro/{kind}":
        raise ModelError(
            f"expected format repro/{kind}, got {obj.get('format')!r}")
    if obj.get("version") != _VERSION:
        raise ModelError(
            f"unsupported {kind} version {obj.get('version')!r}")
    return obj["data"]


# ---------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------

def profiles_to_jsonable(profiles: ProfileSet) -> dict:
    """Profile set -> JSON-ready dict (identities are positional)."""
    data = [
        {
            "name": profile.name,
            "tintervals": [
                [[ei.resource_id, ei.start, ei.finish] for ei in eta]
                for eta in profile
            ],
        }
        for profile in profiles
    ]
    return _envelope("profiles", data)


def profiles_from_jsonable(obj) -> ProfileSet:
    """Inverse of :func:`profiles_to_jsonable`."""
    data = _open_envelope(obj, "profiles")
    profiles = []
    for entry in data:
        tintervals = [
            TInterval([ExecutionInterval(resource, start, finish)
                       for resource, start, finish in eis])
            for eis in entry["tintervals"]
        ]
        profiles.append(Profile(tintervals, name=entry.get("name", "")))
    return ProfileSet(profiles)


# ---------------------------------------------------------------------
# Schedules / budgets
# ---------------------------------------------------------------------

def schedule_to_jsonable(schedule: Schedule) -> dict:
    """Schedule -> JSON-ready dict (sorted probe list)."""
    return _envelope("schedule",
                     [[resource, chronon]
                      for resource, chronon in schedule.probes()])


def schedule_from_jsonable(obj) -> Schedule:
    """Inverse of :func:`schedule_to_jsonable`."""
    data = _open_envelope(obj, "schedule")
    return Schedule((resource, chronon) for resource, chronon in data)


def budget_to_jsonable(budget: BudgetVector) -> dict:
    """Budget vector -> JSON-ready dict."""
    data = {"default": budget.default,
            "overrides": {str(chronon): value
                          for chronon, value in
                          budget.overrides().items()}}
    return _envelope("budget", data)


def budget_from_jsonable(obj) -> BudgetVector:
    """Inverse of :func:`budget_to_jsonable`."""
    data = _open_envelope(obj, "budget")
    overrides = {int(chronon): value
                 for chronon, value in data.get("overrides", {}).items()}
    return BudgetVector(data["default"], overrides or None)


# ---------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------

def result_to_jsonable(result: SimulationResult) -> dict:
    """Simulation result -> JSON-ready dict (full round-trip)."""
    report = result.report
    data = {
        "label": result.label,
        "schedule": schedule_to_jsonable(result.schedule),
        "report": {
            "captured": report.captured,
            "total": report.total,
            "per_profile": {str(pid): list(pair)
                            for pid, pair in report.per_profile.items()},
            "per_rank": {str(rank): list(pair)
                         for rank, pair in report.per_rank.items()},
        },
        "probes_used": result.probes_used,
        "expired": result.expired,
        "runtime_seconds": result.runtime_seconds,
        "extras": dict(result.extras),
    }
    return _envelope("result", data)


def result_from_jsonable(obj) -> SimulationResult:
    """Inverse of :func:`result_to_jsonable`."""
    data = _open_envelope(obj, "result")
    report_data = data["report"]
    report = CompletenessReport(
        captured=report_data["captured"],
        total=report_data["total"],
        per_profile={int(pid): tuple(pair)
                     for pid, pair in
                     report_data.get("per_profile", {}).items()},
        per_rank={int(rank): tuple(pair)
                  for rank, pair in
                  report_data.get("per_rank", {}).items()},
    )
    return SimulationResult(
        label=data["label"],
        schedule=schedule_from_jsonable(data["schedule"]),
        report=report,
        probes_used=data["probes_used"],
        expired=data.get("expired", 0),
        runtime_seconds=data.get("runtime_seconds", 0.0),
        extras=data.get("extras", {}),
    )


# ---------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------

def save_profiles(profiles: ProfileSet, path: str | Path) -> None:
    """Write a profile set as JSON."""
    Path(path).write_text(json.dumps(profiles_to_jsonable(profiles),
                                     indent=2) + "\n")


def load_profiles(path: str | Path) -> ProfileSet:
    """Read a profile set written by :func:`save_profiles`."""
    return profiles_from_jsonable(json.loads(Path(path).read_text()))


def save_result(result: SimulationResult, path: str | Path) -> None:
    """Write a simulation result as JSON."""
    Path(path).write_text(json.dumps(result_to_jsonable(result),
                                     indent=2) + "\n")


def load_result(path: str | Path) -> SimulationResult:
    """Read a simulation result written by :func:`save_result`."""
    return result_from_jsonable(json.loads(Path(path).read_text()))
