"""Predicted update traces: the stochastic counterpart of FPN(1).

:class:`ForecastUpdateModel` fits an estimator on the training prefix of a
ground-truth trace and emits a *predicted* trace for the evaluation
window. Feeding the predicted trace into the ordinary profile generator
produces predicted execution intervals — the proxy schedules against what
it *believes* will happen, and is judged against what *actually* happened
(see :mod:`repro.forecast.evaluation`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ModelError
from repro.core.timeline import Chronon, Epoch
from repro.forecast.estimators import UpdateEstimator, fit_trace
from repro.traces.events import UpdateEvent, UpdateTrace

__all__ = ["ForecastUpdateModel"]


class ForecastUpdateModel:
    """Predicts updates for the window after ``train_end``.

    Parameters
    ----------
    ground_truth:
        The full real trace; only its prefix up to ``train_end`` is used
        for fitting (no test-window leakage).
    estimator:
        Per-resource update estimator.
    train_end:
        Last chronon of the training window (must precede the epoch end).
    """

    def __init__(self, ground_truth: UpdateTrace,
                 estimator: UpdateEstimator, train_end: Chronon) -> None:
        if train_end < 1:
            raise ModelError(f"train_end must be >= 1, got {train_end}")
        if train_end >= ground_truth.epoch.last:
            raise ModelError(
                f"train_end {train_end} leaves no evaluation window "
                f"(epoch ends at {ground_truth.epoch.last})"
            )
        self._ground_truth = ground_truth
        self._estimator = estimator
        self.train_end = train_end
        self._fits = fit_trace(estimator, ground_truth, train_end)

    def fit_for(self, resource_id: int):
        """The per-resource fit (None for resources absent from the
        trace)."""
        return self._fits.get(resource_id)

    def generate(self, resource_ids: Sequence[int],
                 epoch: Epoch) -> UpdateTrace:
        """The predicted trace over ``(train_end, epoch.last]``.

        Predicted events carry a ``predicted`` payload marker. Resources
        without a usable fit contribute no predictions.
        """
        events: list[UpdateEvent] = []
        for resource_id in resource_ids:
            fit = self._fits.get(resource_id)
            if fit is None or fit.gap is None:
                continue
            for chronon in fit.predict(epoch.last):
                if chronon > self.train_end:
                    events.append(UpdateEvent(chronon, resource_id,
                                              payload="predicted"))
        return UpdateTrace(events, epoch)

    def actual_window(self, epoch: Epoch) -> UpdateTrace:
        """The ground-truth events of the evaluation window."""
        events = [event for event in self._ground_truth
                  if event.chronon > self.train_end
                  and event.chronon <= epoch.last]
        return UpdateTrace(events, epoch)
