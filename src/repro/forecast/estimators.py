"""Update-behavior estimators fitted on trace history.

The paper's execution intervals are generated either from perfect
knowledge of the update trace (FPN(1)) or "based on stochastic modeling"
(its reference [9]). This module provides the stochastic side: estimators
that fit a resource's update behavior on a training prefix and predict
future update chronons, from which execution intervals are derived exactly
as for real updates.

Estimators:

* :class:`PoissonRateEstimator` — MLE update rate; predictions are the
  expected-arrival grid (one update every ``1/rate`` chronons).
* :class:`PeriodicityEstimator` — median inter-update gap with the phase
  anchored at the last observed update; suits hourly-style feeds.
* :class:`AdaptiveEstimator` — per resource, picks periodic when the gap
  coefficient of variation is low, Poisson otherwise.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Protocol

from repro.core.errors import ModelError
from repro.core.timeline import Chronon
from repro.traces.events import UpdateTrace

__all__ = [
    "FittedResource",
    "UpdateEstimator",
    "PoissonRateEstimator",
    "PeriodicityEstimator",
    "AdaptiveEstimator",
]


@dataclass(frozen=True, slots=True)
class FittedResource:
    """Per-resource fit: prediction anchor and expected gap.

    Attributes
    ----------
    resource_id:
        The fitted resource.
    last_update:
        Last observed update chronon in the training window (0 if none).
    gap:
        Predicted inter-update gap in chronons (``None`` = no prediction —
        the resource showed no usable history).
    model:
        Which model produced the fit ("poisson", "periodic", "silent").
    """

    resource_id: int
    last_update: Chronon
    gap: float | None
    model: str

    def predict(self, horizon: Chronon) -> list[Chronon]:
        """Predicted update chronons in ``(last_update, horizon]``."""
        if self.gap is None or self.gap <= 0:
            return []
        predictions: list[Chronon] = []
        time = float(self.last_update)
        while True:
            time += self.gap
            chronon = round(time)
            if chronon > horizon:
                break
            if chronon >= 1 and (not predictions
                                 or chronon > predictions[-1]):
                predictions.append(chronon)
        return predictions


class UpdateEstimator(Protocol):
    """Anything that can fit one resource's update history."""

    def fit_resource(self, resource_id: int,
                     update_chronons: list[Chronon],
                     train_end: Chronon) -> FittedResource:
        """Fit one resource given its training-window update chronons."""
        ...


class PoissonRateEstimator:
    """MLE Poisson rate: ``count / train_window`` updates per chronon.

    Predictions are the expected-arrival grid — an update every
    ``1 / rate`` chronons after the last observed one. With fewer than
    ``min_updates`` observations the resource is left unpredicted.
    """

    def __init__(self, min_updates: int = 2) -> None:
        if min_updates < 1:
            raise ModelError(f"min_updates must be >= 1, got {min_updates}")
        self._min_updates = min_updates

    def fit_resource(self, resource_id: int,
                     update_chronons: list[Chronon],
                     train_end: Chronon) -> FittedResource:
        """Fit the MLE Poisson rate on the training prefix."""
        if train_end < 1:
            raise ModelError(f"train_end must be >= 1, got {train_end}")
        history = [c for c in update_chronons if c <= train_end]
        if len(history) < self._min_updates:
            return FittedResource(resource_id, 0, None, "silent")
        rate = len(history) / train_end
        return FittedResource(resource_id, history[-1], 1.0 / rate,
                              "poisson")


class PeriodicityEstimator:
    """Median inter-update gap, anchored at the last observed update.

    Requires at least ``min_updates`` observations (hence at least one
    gap); robust to a few irregular gaps via the median.
    """

    def __init__(self, min_updates: int = 3) -> None:
        if min_updates < 2:
            raise ModelError(f"min_updates must be >= 2, got {min_updates}")
        self._min_updates = min_updates

    def fit_resource(self, resource_id: int,
                     update_chronons: list[Chronon],
                     train_end: Chronon) -> FittedResource:
        """Fit the median inter-update gap on the training prefix."""
        history = [c for c in update_chronons if c <= train_end]
        if len(history) < self._min_updates:
            return FittedResource(resource_id, 0, None, "silent")
        gaps = [right - left for left, right in zip(history, history[1:])]
        period = float(statistics.median(gaps))
        if period <= 0:
            return FittedResource(resource_id, 0, None, "silent")
        return FittedResource(resource_id, history[-1], period,
                              "periodic")


class AdaptiveEstimator:
    """Periodic fit when the gap CV is low, Poisson otherwise.

    The coefficient of variation of inter-update gaps distinguishes
    clockwork feeds (CV near 0) from bursty Poisson-like sources (CV near
    1). ``cv_threshold`` sets the switch point.
    """

    def __init__(self, cv_threshold: float = 0.4,
                 min_updates: int = 3) -> None:
        if cv_threshold <= 0:
            raise ModelError("cv_threshold must be positive")
        self._cv_threshold = cv_threshold
        self._periodic = PeriodicityEstimator(min_updates=min_updates)
        self._poisson = PoissonRateEstimator(min_updates=2)

    def fit_resource(self, resource_id: int,
                     update_chronons: list[Chronon],
                     train_end: Chronon) -> FittedResource:
        """Fit periodic when the gap CV is low, else Poisson."""
        history = [c for c in update_chronons if c <= train_end]
        if len(history) >= 3:
            gaps = [right - left
                    for left, right in zip(history, history[1:])]
            mean_gap = statistics.fmean(gaps)
            if mean_gap > 0:
                deviation = statistics.pstdev(gaps)
                if deviation / mean_gap <= self._cv_threshold:
                    return self._periodic.fit_resource(
                        resource_id, update_chronons, train_end)
        return self._poisson.fit_resource(resource_id, update_chronons,
                                          train_end)


def fit_trace(estimator: UpdateEstimator, trace: UpdateTrace,
              train_end: Chronon) -> dict[int, FittedResource]:
    """Fit every resource of a trace on its training prefix."""
    return {
        resource_id: estimator.fit_resource(
            resource_id, trace.update_chronons(resource_id), train_end)
        for resource_id in trace.resource_ids
    }
