"""Knowledge-gap evaluation: perfect vs predicted execution intervals.

The paper's experiments assume FPN(1) — perfect knowledge of the update
trace. This module measures how much completeness an online policy loses
when EIs come from *predictions* instead:

1. fit an estimator on the training prefix;
2. build profiles from the **predicted** trace and schedule against them;
3. judge the resulting probe schedule against the profiles built from the
   **actual** trace (same resources, same template, same parameters);
4. compare with the FPN(1) upper line (scheduling directly against the
   actual profiles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import BudgetVector
from repro.core.completeness import evaluate_schedule
from repro.core.timeline import Chronon, Epoch
from repro.forecast.estimators import UpdateEstimator
from repro.forecast.prediction import ForecastUpdateModel
from repro.online.base import Policy
from repro.simulation.proxy import run_online
from repro.traces.events import UpdateTrace
from repro.workloads.generator import GeneratorConfig, ProfileGenerator

__all__ = ["KnowledgeGapResult", "evaluate_knowledge_gap"]


@dataclass(frozen=True, slots=True)
class KnowledgeGapResult:
    """Outcome of one perfect-vs-predicted comparison.

    Attributes
    ----------
    gc_perfect:
        GC with FPN(1) (perfect knowledge) — the upper line.
    gc_predicted:
        GC of the schedule built from predictions, judged against the
        actual t-intervals.
    predicted_events, actual_events:
        Evaluation-window event counts (prediction volume sanity).
    """

    gc_perfect: float
    gc_predicted: float
    predicted_events: int
    actual_events: int

    @property
    def degradation(self) -> float:
        """``1 - gc_predicted / gc_perfect`` (0 = no loss); 0 when the
        perfect line is itself 0."""
        if self.gc_perfect == 0:
            return 0.0
        return max(0.0, 1.0 - self.gc_predicted / self.gc_perfect)


def evaluate_knowledge_gap(ground_truth: UpdateTrace,
                           estimator: UpdateEstimator,
                           train_end: Chronon,
                           generator_config: GeneratorConfig,
                           epoch: Epoch,
                           budget: BudgetVector,
                           policy: Policy,
                           preemptive: bool = True
                           ) -> KnowledgeGapResult:
    """Run the perfect-vs-predicted comparison on one trace.

    The same generator configuration (and seed) is applied to the
    predicted and the actual evaluation-window traces with an identical
    popularity ordering, so the two profile sets watch the same resources
    and differ only in where the EIs fall.
    """
    model = ForecastUpdateModel(ground_truth, estimator, train_end)
    predicted_trace = model.generate(ground_truth.resource_ids, epoch)
    actual_trace = model.actual_window(epoch)

    # One popularity ordering for both generations (derived from the
    # training prefix — the only data the proxy legitimately has).
    ordering = sorted(
        ground_truth.resource_ids,
        key=lambda rid: (-sum(1 for c in
                              ground_truth.update_chronons(rid)
                              if c <= train_end), rid),
    )
    generator = ProfileGenerator(generator_config)
    predicted_profiles = generator.generate(predicted_trace, epoch,
                                            resource_ids=ordering)
    actual_profiles = generator.generate(actual_trace, epoch,
                                         resource_ids=ordering)

    # Perfect-knowledge upper line.
    perfect = run_online(actual_profiles, epoch, budget, policy,
                         preemptive=preemptive)

    # Predicted scheduling, judged against reality.
    predicted_run = run_online(predicted_profiles, epoch, budget, policy,
                               preemptive=preemptive)
    judged = evaluate_schedule(actual_profiles, predicted_run.schedule)

    return KnowledgeGapResult(
        gc_perfect=perfect.gc,
        gc_predicted=judged.gc,
        predicted_events=len(predicted_trace),
        actual_events=len(actual_trace),
    )
