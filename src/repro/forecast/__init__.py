"""Stochastic EI generation: estimators, predicted traces, evaluation."""

from repro.forecast.estimators import (
    AdaptiveEstimator,
    FittedResource,
    PeriodicityEstimator,
    PoissonRateEstimator,
    UpdateEstimator,
    fit_trace,
)
from repro.forecast.evaluation import (
    KnowledgeGapResult,
    evaluate_knowledge_gap,
)
from repro.forecast.prediction import ForecastUpdateModel

__all__ = [
    "AdaptiveEstimator",
    "FittedResource",
    "ForecastUpdateModel",
    "KnowledgeGapResult",
    "PeriodicityEstimator",
    "PoissonRateEstimator",
    "UpdateEstimator",
    "evaluate_knowledge_gap",
    "fit_trace",
]
