"""Consistent-hash sharding and budget work-stealing primitives.

The federation layer (see :mod:`repro.runtime.federation` and
:mod:`repro.simulation.shard`) splits a monolithic proxy into ``K``
shards, each owning a slice of the per-resource candidate index. This
module holds the pure control-plane pieces, all deterministic:

* :class:`ConsistentHashRing` — virtual-node consistent hashing of
  resource ids onto shards. Hashes are keyed ``blake2b`` digests of
  stable strings, so an assignment depends only on ``(shards, vnodes)``
  — never on process state, hash randomization, or platform — and
  adding a shard moves only the resources whose arc changes.
* :func:`split_budget` — the *nominal* per-shard split of one chronon's
  probe budget ``C_j``, remainder assigned in fixed shard priority
  order (ascending shard id).
* :func:`steal_plan` — the deterministic work-stealing protocol: a
  shard whose demand falls short of its nominal share donates the
  residual to the most oversubscribed shard, ties broken by lowest
  shard id, donors iterated in priority order. Runs are reproducible
  because every choice is a pure function of ``(nominal, demand)``.
* :class:`BudgetLedger` — per-shard accounting of nominal shares,
  spent probes and stolen budget across a run, with the conservation
  identities the property suite asserts.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BudgetLedger",
    "ConsistentHashRing",
    "ShardLoad",
    "split_budget",
    "steal_plan",
]


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for ``label``."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class ConsistentHashRing:
    """Consistent hashing of resources onto ``shards`` proxy shards.

    Each shard contributes ``vnodes`` virtual nodes; a key is owned by
    the shard of the first virtual node at or clockwise past the key's
    ring coordinate. More virtual nodes mean a more even split — with
    the default 64 the heaviest shard typically carries within ~15% of
    the mean for K <= 16.

    Parameters
    ----------
    shards:
        Number of shards (>= 1).
    vnodes:
        Virtual nodes per shard (>= 1).
    """

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_point(f"shard-{shard}#{vnode}"), shard))
        points.sort()
        self._hashes = [hash_ for hash_, _ in points]
        self._owners = [shard for _, shard in points]

    def owner_of(self, resource_id: int) -> int:
        """The shard owning one resource id."""
        coordinate = _point(f"resource-{resource_id}")
        at = bisect.bisect_left(self._hashes, coordinate)
        if at == len(self._hashes):
            at = 0
        return self._owners[at]

    def assign(self, num_resources: int) -> np.ndarray:
        """Owner shard of every resource id in ``[0, num_resources)``."""
        return np.fromiter(
            (self.owner_of(rid) for rid in range(num_resources)),
            dtype=np.int64, count=num_resources)


def split_budget(total: int, shards: int) -> list[int]:
    """Nominal per-shard split of one chronon's budget ``C_j``.

    Every shard gets ``total // shards``; the remainder goes to the
    lowest shard ids — the fixed priority order that keeps federated
    runs reproducible.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if total < 0:
        raise ValueError(f"budget must be >= 0, got {total}")
    base, remainder = divmod(total, shards)
    return [base + (1 if shard < remainder else 0)
            for shard in range(shards)]


def steal_plan(nominal: list[int],
               demand: list[int]) -> list[tuple[int, int, int]]:
    """Deterministic budget transfers covering every shard's deficit.

    ``nominal`` is the chronon's :func:`split_budget`; ``demand`` is how
    many probes each shard's owned resources actually won. Donors (with
    ``nominal > demand``) are walked in shard priority order; each
    donates to the currently most oversubscribed shard (largest
    remaining deficit, ties to the lowest shard id) until its surplus or
    all deficits are exhausted. Because total demand never exceeds the
    chronon budget, the plan always covers every deficit.

    Returns ``(donor, thief, amount)`` transfers with ``amount >= 1``.
    """
    if len(nominal) != len(demand):
        raise ValueError("nominal and demand must have equal length")
    deficits = [max(0, d - n) for n, d in zip(nominal, demand)]
    transfers: list[tuple[int, int, int]] = []
    if not any(deficits):
        return transfers
    for donor, (share, used) in enumerate(zip(nominal, demand)):
        surplus = share - used
        while surplus > 0:
            worst = max(deficits)
            if worst == 0:
                break
            thief = deficits.index(worst)
            amount = min(surplus, worst)
            transfers.append((donor, thief, amount))
            surplus -= amount
            deficits[thief] -= amount
    return transfers


@dataclass
class ShardLoad:
    """One shard's accumulated load and budget accounting."""

    shard: int
    resources: int = 0
    probes_routed: int = 0
    nominal_budget: int = 0
    stolen_in: int = 0
    stolen_out: int = 0

    @property
    def effective_budget(self) -> int:
        """Nominal share plus net stolen budget."""
        return self.nominal_budget + self.stolen_in - self.stolen_out


class BudgetLedger:
    """Per-shard budget accounting across a federated run.

    Each :meth:`settle` call books one chronon: the nominal split, the
    realized per-shard spend, and the :func:`steal_plan` transfers that
    rebalanced the two. Invariants (asserted by the property suite):

    * ``spent[k] <= nominal[k] + stolen_in[k] - stolen_out[k]`` for
      every shard, at every chronon and in total;
    * ``sum(spent) <= sum(nominal)`` — stealing moves budget, it never
      mints it.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.nominal = [0] * shards
        self.spent = [0] * shards
        self.stolen_in = [0] * shards
        self.stolen_out = [0] * shards
        self.transfers = 0
        self.transferred_units = 0

    def settle(self, budget: int,
               demand: list[int]) -> list[tuple[int, int, int]]:
        """Book one chronon; returns the chronon's steal transfers."""
        nominal = split_budget(budget, self.shards)
        plan = steal_plan(nominal, demand)
        for shard in range(self.shards):
            self.nominal[shard] += nominal[shard]
            self.spent[shard] += demand[shard]
        for donor, thief, amount in plan:
            self.stolen_out[donor] += amount
            self.stolen_in[thief] += amount
            self.transfers += 1
            self.transferred_units += amount
        return plan

    def loads(self, probes_routed: list[int] | None = None,
              resources: list[int] | None = None) -> list[ShardLoad]:
        """The per-shard accounting as :class:`ShardLoad` rows."""
        routed = probes_routed if probes_routed is not None else self.spent
        return [
            ShardLoad(
                shard=shard,
                resources=resources[shard] if resources is not None else 0,
                probes_routed=routed[shard],
                nominal_budget=self.nominal[shard],
                stolen_in=self.stolen_in[shard],
                stolen_out=self.stolen_out[shard],
            )
            for shard in range(self.shards)
        ]
