"""Origin servers: versioned resource state that the proxy probes.

Section 3 of the paper: "Servers and clients share data in our model
through proxies. A server manages resources and can be queried by the
proxy on behalf of the proxy clients." Data is *volatile* — each update
overwrites the previous value (the flash-memory sensor / news-feed
motivation), so a probe observes only the latest state.

:class:`OriginServer` replays an update trace (or accepts programmatic
updates) and serves :class:`Snapshot` objects on probes. The proxy pulls;
the server never pushes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ModelError
from repro.core.timeline import Chronon
from repro.traces.events import UpdateEvent, UpdateTrace

__all__ = [
    "PROBE_FAILED",
    "PROBE_OK",
    "PROBE_THROTTLED",
    "OriginServer",
    "ProbeOutcome",
    "Snapshot",
]

#: Probe outcome statuses. A *failed* probe got no answer (drop, timeout,
#: outage); a *throttled* one was refused by server-side rate limiting.
#: Both consume the proxy's per-chronon budget — the paper's ``C_j`` is a
#: request budget, not a success budget.
ProbeStatus = str
PROBE_OK: ProbeStatus = "ok"
PROBE_FAILED: ProbeStatus = "failed"
PROBE_THROTTLED: ProbeStatus = "throttled"


@dataclass(frozen=True, slots=True)
class Snapshot:
    """The observed state of one resource at probe time.

    Attributes
    ----------
    resource_id:
        The probed resource.
    probed_at:
        Chronon of the probe.
    version:
        Number of updates the resource has received so far (0 = never
        updated; the value is the initial state).
    updated_at:
        Chronon of the latest update (0 if never updated).
    value:
        The latest payload (empty string if never updated).
    """

    resource_id: int
    probed_at: Chronon
    version: int
    updated_at: Chronon
    value: str

    @property
    def is_fresh(self) -> bool:
        """True when the observed value was written at the probe chronon.

        A never-updated resource (``version == 0``) is not fresh: its
        ``updated_at`` placeholder of 0 would otherwise spuriously match a
        probe at chronon 0.
        """
        return self.version > 0 and self.updated_at == self.probed_at


@dataclass(frozen=True, slots=True)
class ProbeOutcome:
    """The result of one pull request against a (possibly flaky) server.

    Attributes
    ----------
    resource_id:
        The probed resource.
    chronon:
        Server clock at probe time.
    status:
        One of :data:`PROBE_OK`, :data:`PROBE_FAILED`,
        :data:`PROBE_THROTTLED`.
    snapshot:
        The observed state (``None`` unless ``status == "ok"``).
    fault:
        Short fault tag for non-ok / degraded outcomes
        (``"drop"``, ``"timeout"``, ``"outage"``, ``"rate-limit"``,
        ``"stale"``) or ``None``.
    stale:
        True when the snapshot was served from a lagging replica (the
        probe "succeeded" but observed an old state).
    attempt:
        0 for the first request of a chronon, 1+ for in-chronon retries.
    """

    resource_id: int
    chronon: Chronon
    status: ProbeStatus
    snapshot: Snapshot | None = None
    fault: str | None = None
    stale: bool = False
    attempt: int = 0

    @property
    def ok(self) -> bool:
        """True when a snapshot was obtained (even a stale one)."""
        return self.status == PROBE_OK


class OriginServer:
    """A pull-only server replaying updates to its resources.

    Parameters
    ----------
    trace:
        Optional update trace to replay; events apply as the server's
        clock advances. More events can be injected with :meth:`publish`.

    The server keeps only the *latest* value per resource — earlier values
    are overwritten, which is exactly why delayed probes lose data.
    """

    def __init__(self, trace: UpdateTrace | None = None) -> None:
        self._pending: list[UpdateEvent] = sorted(trace) if trace else []
        self._cursor = 0
        self._clock: Chronon = 0
        self._version: dict[int, int] = {}
        self._updated_at: dict[int, Chronon] = {}
        self._value: dict[int, str] = {}

    @property
    def clock(self) -> Chronon:
        """The server's current chronon (0 before the first advance)."""
        return self._clock

    def publish(self, event: UpdateEvent) -> None:
        """Inject an update event for future replay.

        Raises
        ------
        ModelError
            If the event is in the server's past (its chronon has already
            been advanced through) — volatile history cannot be rewritten.
        """
        if event.chronon <= self._clock:
            raise ModelError(
                f"cannot publish at chronon {event.chronon}: server clock "
                f"is already at {self._clock}"
            )
        # Insert keeping the pending list sorted past the cursor.
        self._pending.append(event)
        tail = sorted(self._pending[self._cursor:])
        self._pending[self._cursor:] = tail

    def advance_to(self, chronon: Chronon) -> list[UpdateEvent]:
        """Apply all updates up to and including ``chronon``.

        Returns the events applied in this step (useful for logging).

        Raises
        ------
        ModelError
            If asked to move backwards.
        """
        if chronon < self._clock:
            raise ModelError(
                f"server clock cannot move backwards "
                f"({self._clock} -> {chronon})"
            )
        applied: list[UpdateEvent] = []
        while (self._cursor < len(self._pending)
               and self._pending[self._cursor].chronon <= chronon):
            event = self._pending[self._cursor]
            self._cursor += 1
            self._version[event.resource_id] = (
                self._version.get(event.resource_id, 0) + 1)
            self._updated_at[event.resource_id] = event.chronon
            self._value[event.resource_id] = event.payload
            applied.append(event)
        self._clock = chronon
        return applied

    def probe(self, resource_id: int) -> Snapshot:
        """Observe the current state of one resource (a pull request)."""
        return Snapshot(
            resource_id=resource_id,
            probed_at=self._clock,
            version=self._version.get(resource_id, 0),
            updated_at=self._updated_at.get(resource_id, 0),
            value=self._value.get(resource_id, ""),
        )

    def try_probe(self, resource_id: int, attempt: int = 0) -> ProbeOutcome:
        """Probe with an explicit outcome; a reliable server always answers.

        Fault-injecting servers (:class:`repro.faults.UnreliableServer`)
        override this to fail, throttle, or serve stale state; the proxy's
        probe path is written against this interface.
        """
        return ProbeOutcome(
            resource_id=resource_id,
            chronon=self._clock,
            status=PROBE_OK,
            snapshot=self.probe(resource_id),
            attempt=attempt,
        )

    def version_of(self, resource_id: int) -> int:
        """Current version counter of a resource."""
        return self._version.get(resource_id, 0)
