"""Clients and push notifications.

The paper's hybrid architecture: the proxy probes servers via pull and
"delivers data to clients using a push protocol". A notification is pushed
to a client the moment one of its t-intervals completes, carrying the
snapshots captured for each execution interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.timeline import Chronon
from repro.runtime.server import Snapshot

__all__ = ["Notification", "Client"]


@dataclass(frozen=True, slots=True)
class Notification:
    """A completed t-interval pushed to its client.

    Attributes
    ----------
    client_id:
        The receiving client.
    profile_name:
        Name of the satisfied profile.
    profile_id, tinterval_id:
        Identity of the completed t-interval.
    completed_at:
        Chronon at which the final EI was captured.
    snapshots:
        One snapshot per execution interval, in EI declaration order —
        the actual data the client asked for.
    """

    client_id: int
    profile_name: str
    profile_id: int
    tinterval_id: int
    completed_at: Chronon
    snapshots: tuple[Snapshot, ...]

    def values(self) -> list[str]:
        """The captured payloads, in EI order."""
        return [snapshot.value for snapshot in self.snapshots]


class Client:
    """A registered proxy client with a mailbox and optional callback.

    Parameters
    ----------
    client_id:
        Stable identity assigned by the proxy.
    name:
        Human-readable label.
    callback:
        Optional callable invoked *synchronously* on each notification
        (in addition to mailbox delivery). Exceptions from the callback
        propagate — a misbehaving client is a caller bug, not data loss.
    """

    def __init__(self, client_id: int, name: str = "",
                 callback: Callable[[Notification], None] | None = None
                 ) -> None:
        self.client_id = client_id
        self.name = name or f"client{client_id}"
        self._callback = callback
        self._mailbox: list[Notification] = []

    def deliver(self, notification: Notification) -> None:
        """Push one notification (mailbox + callback)."""
        self._mailbox.append(notification)
        if self._callback is not None:
            self._callback(notification)

    @property
    def mailbox(self) -> tuple[Notification, ...]:
        """All received notifications, in delivery order."""
        return tuple(self._mailbox)

    def drain(self) -> list[Notification]:
        """Remove and return all pending notifications."""
        drained, self._mailbox = self._mailbox, []
        return drained

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Client(id={self.client_id}, name={self.name!r}, "
                f"pending={len(self._mailbox)})")
