"""The proxy runtime: origin servers, clients, and push notifications."""

from repro.runtime.clients import Client, Notification
from repro.runtime.federation import ServerFleet
from repro.runtime.proxy import MonitoringProxy, ProxyStats
from repro.runtime.server import OriginServer, Snapshot

__all__ = [
    "Client",
    "MonitoringProxy",
    "Notification",
    "OriginServer",
    "ProxyStats",
    "ServerFleet",
    "Snapshot",
]
