"""The proxy runtime: origin servers, clients, and push notifications."""

from repro.runtime.clients import Client, Notification
from repro.runtime.federation import ServerFleet, ShardCoordinator
from repro.runtime.proxy import MonitoringProxy, ProxyStats
from repro.runtime.server import OriginServer, Snapshot
from repro.runtime.sharding import (
    BudgetLedger,
    ConsistentHashRing,
    ShardLoad,
    split_budget,
    steal_plan,
)

__all__ = [
    "BudgetLedger",
    "Client",
    "ConsistentHashRing",
    "MonitoringProxy",
    "Notification",
    "OriginServer",
    "ProxyStats",
    "ServerFleet",
    "ShardCoordinator",
    "ShardLoad",
    "Snapshot",
    "split_budget",
    "steal_plan",
]
