"""A minimal HTTP/SSE API over the async proxy (stdlib only).

:class:`ProxyService` exposes the :class:`~repro.runtime.aio.proxy.
AsyncMonitoringProxy` as a network service using nothing but
``asyncio.start_server`` and hand-rolled HTTP/1.1 — no web framework,
per the repo's no-new-dependencies rule. Endpoints:

* ``POST /profiles`` — register a profile (JSON body ``{"name",
  "tintervals": [[[resource, start, finish], ...], ...], "utility"}``);
  runs admission control first and reports any profiles it shed;
* ``DELETE /profiles/<id>`` — cancel a registration (owner-only);
* ``GET /events`` — a Server-Sent-Events stream of every proxy event
  (registrations, ticks, notifications with their snapshots);
* ``GET /healthz`` / ``GET /readyz`` — liveness vs. readiness (ready
  once the service accepts registrations, 503 after shutdown begins);
* ``GET /stats`` — proxy accounting, clock, and admission census.

Authentication is bearer-key: every data-plane request carries
``Authorization: Bearer <key>``; each key maps to one proxy client
(auto-registered on first use), which scopes quotas and cancellation
rights. Health and stats endpoints are unauthenticated.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict

from repro.core.errors import ModelError
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile
from repro.runtime.aio.admission import AdmissionController
from repro.runtime.aio.proxy import AsyncMonitoringProxy
from repro.runtime.clients import Client

__all__ = ["ProxyService"]

_MAX_BODY = 1 << 20  # 1 MiB registration bodies are plenty


def _json_response(status: int, payload: dict,
                   reason: str = "") -> bytes:
    body = json.dumps(payload).encode("utf-8")
    reasons = {200: "OK", 201: "Created", 204: "No Content",
               400: "Bad Request", 401: "Unauthorized",
               403: "Forbidden", 404: "Not Found",
               405: "Method Not Allowed", 429: "Too Many Requests",
               503: "Service Unavailable"}
    head = (f"HTTP/1.1 {status} {reason or reasons.get(status, '')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def _profile_from_body(body: dict) -> Profile:
    tintervals = body.get("tintervals")
    if not isinstance(tintervals, list) or not tintervals:
        raise ModelError("body must carry a non-empty 'tintervals' list")
    parsed = []
    for eis in tintervals:
        if not isinstance(eis, list) or not eis:
            raise ModelError("each t-interval must be a non-empty list "
                             "of [resource, start, finish] triples")
        parsed.append(TInterval([
            ExecutionInterval(int(resource), int(start), int(finish))
            for resource, start, finish in eis
        ]))
    return Profile(parsed, name=str(body.get("name", "")))


class ProxyService:
    """The HTTP/SSE front end of one async proxy.

    Parameters
    ----------
    proxy:
        The proxy being served.
    admission:
        Admission controller; ``None`` admits everything.
    host, port:
        Bind address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    """

    def __init__(self, proxy: AsyncMonitoringProxy,
                 admission: AdmissionController | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.proxy = proxy
        self.admission = admission
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._ready = False
        self._clients_by_key: dict[str, Client] = {}
        self._owners: dict[int, str] = {}
        self._utilities: dict[int, float] = {}
        self._epoch_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready = True
        return self.host, self.port

    def serve_epoch(self, tick_interval: float = 0.0) -> asyncio.Task:
        """Tick the proxy through its epoch as a background task."""
        if self._epoch_task is None or self._epoch_task.done():
            self._epoch_task = asyncio.ensure_future(
                self.proxy.arun(tick_interval=tick_interval))
        return self._epoch_task

    async def stop(self) -> None:
        """Stop accepting requests and cancel the epoch ticker."""
        self._ready = False
        if self._epoch_task is not None and not self._epoch_task.done():
            self._epoch_task.cancel()
            try:
                await self._epoch_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Registration plane (shared by HTTP and in-process callers)
    # ------------------------------------------------------------------

    def _client_for(self, key: str) -> Client:
        client = self._clients_by_key.get(key)
        if client is None:
            client = self.proxy.register_client(name=key)
            self._clients_by_key[key] = client
        return client

    def register(self, key: str, profile: Profile,
                 utility: float = 1.0) -> tuple[int, dict]:
        """Admission-checked registration; returns (status, payload)."""
        load = len(profile)
        shed_ids: tuple[int, ...] = ()
        if self.admission is not None:
            decision = self.admission.decide(key, load, utility)
            if not decision.admitted:
                status = 429
                return status, {"error": decision.reason}
            shed_ids = decision.shed
            for victim in shed_ids:
                self.admission.release(victim, shed=True)
                self.proxy.unregister_profile(victim)
                self._owners.pop(victim, None)
                self._utilities.pop(victim, None)
                self.proxy._emit("shed", {"profile_id": victim})
        client = self._client_for(key)
        profile_id = self.proxy.register_profile(client, profile)
        if self.admission is not None:
            self.admission.admit(profile_id, key, load, utility)
        self._owners[profile_id] = key
        self._utilities[profile_id] = utility
        return 201, {"profile_id": profile_id, "shed": list(shed_ids)}

    def cancel(self, key: str, profile_id: int) -> tuple[int, dict]:
        """Owner-checked cancellation; returns (status, payload)."""
        owner = self._owners.get(profile_id)
        if owner is None:
            return 404, {"error": f"unknown profile {profile_id}"}
        if owner != key:
            return 403, {"error": "profile belongs to another client"}
        self.proxy.unregister_profile(profile_id)
        if self.admission is not None:
            self.admission.release(profile_id)
        del self._owners[profile_id]
        self._utilities.pop(profile_id, None)
        return 204, {}

    def stats_payload(self) -> dict:
        payload = {
            "clock": self.proxy.clock,
            "epoch": self.proxy.epoch.last,
            "ready": self._ready,
            "stats": asdict(self.proxy.stats()),
        }
        if self.admission is not None:
            payload["admission"] = self.admission.stats.as_dict()
            payload["active_tintervals"] = self.admission.active_load
        return payload

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            if path == "/events" and method == "GET":
                await self._stream_events(writer)
                return
            response = self._dispatch(method, path, headers, body)
            writer.write(response)
            await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = \
                request_line.decode("ascii").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return method, path, headers, None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _bearer_key(self, headers: dict[str, str]) -> str | None:
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            key = auth[7:].strip()
            return key or None
        return None

    def _dispatch(self, method: str, path: str, headers: dict,
                  body: bytes | None) -> bytes:
        if body is None:
            return _json_response(400, {"error": "body too large"})
        if path == "/healthz":
            if method != "GET":
                return _json_response(405, {"error": "GET only"})
            return _json_response(200, {"status": "ok"})
        if path == "/readyz":
            if method != "GET":
                return _json_response(405, {"error": "GET only"})
            if self._ready and self.proxy.clock < self.proxy.epoch.last:
                return _json_response(200, {"ready": True})
            return _json_response(503, {"ready": False})
        if path == "/stats":
            if method != "GET":
                return _json_response(405, {"error": "GET only"})
            return _json_response(200, self.stats_payload())
        if path == "/profiles" and method == "POST":
            return self._post_profile(headers, body)
        if path.startswith("/profiles/") and method == "DELETE":
            return self._delete_profile(headers, path)
        if path in ("/profiles", "/events") or \
                path.startswith("/profiles/"):
            return _json_response(405, {"error": "method not allowed"})
        return _json_response(404, {"error": f"no route {path}"})

    def _post_profile(self, headers: dict, body: bytes) -> bytes:
        key = self._bearer_key(headers)
        if key is None:
            return _json_response(401, {"error": "bearer key required"})
        if not self._ready:
            return _json_response(503, {"error": "shutting down"})
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
            profile = _profile_from_body(parsed)
            utility = float(parsed.get("utility", 1.0))
        except (ModelError, ValueError, TypeError) as error:
            return _json_response(400, {"error": str(error)})
        try:
            status, payload = self.register(key, profile, utility)
        except ModelError as error:
            return _json_response(400, {"error": str(error)})
        return _json_response(status, payload)

    def _delete_profile(self, headers: dict, path: str) -> bytes:
        key = self._bearer_key(headers)
        if key is None:
            return _json_response(401, {"error": "bearer key required"})
        suffix = path[len("/profiles/"):]
        try:
            profile_id = int(suffix)
        except ValueError:
            return _json_response(400,
                                  {"error": f"bad profile id {suffix!r}"})
        status, payload = self.cancel(key, profile_id)
        if status == 204:
            return (b"HTTP/1.1 204 No Content\r\n"
                    b"Connection: close\r\n\r\n")
        return _json_response(status, payload)

    async def _stream_events(self,
                             writer: asyncio.StreamWriter) -> None:
        queue = self.proxy.subscribe()
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n"
                ": connected\n\n")
        try:
            writer.write(head.encode("ascii"))
            await writer.drain()
            while True:
                event = await queue.get()
                frame = (f"event: {event.kind}\n"
                         f"data: {json.dumps(event.payload)}\n\n")
                writer.write(frame.encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self.proxy.unsubscribe(queue)
