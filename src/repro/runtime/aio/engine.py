"""Async probe execution: deadlines, semaphores, backoff, hedging.

The asyncio counterpart of :func:`repro.faults.engine.execute_probes`.
One chronon's probe decisions fan out as coroutines; each request is
bounded by a per-probe deadline, throttled by a per-server concurrency
semaphore, retried after a deterministic full-jitter backoff delay, and
— for resources exiting circuit-breaker quarantine — optionally *hedged*
with a second speculative request so one slow trial probe cannot stall
the quarantine exit.

Budget safety is the design center: every request (first attempt, retry,
hedge) must reserve a unit from a shared :class:`BudgetLedger` before it
is issued, and the reservation check is synchronous (no await points),
so concurrent probe completions can never overspend the chronon's
``C_j``. Accounting is merged in decision order after all coroutines
finish, keeping the returned round deterministic under arbitrary
completion interleavings.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Sequence

from repro.core.errors import FaultError
from repro.core.timeline import Chronon
from repro.faults.breaker import BackoffPolicy, CircuitBreaker
from repro.faults.engine import ProbeRound
from repro.runtime.server import PROBE_FAILED, ProbeOutcome

__all__ = [
    "AsyncProbeRound",
    "BudgetLedger",
    "ServerSemaphores",
    "execute_probes_async",
]

#: ``(resource_id, attempt)`` -> awaitable probe outcome.
AsyncProber = Callable[[int, int], Awaitable[Any]]

#: Attempt index used for the hedge request of a half-open trial probe.
#: Half-open resources get no in-chronon retries (a failed trial re-trips
#: the breaker immediately), so index 1 can never collide with a retry.
HEDGE_ATTEMPT = 1


class BudgetLedger:
    """Reentrant accounting of one chronon's request budget.

    All mutating operations are synchronous (they contain no await
    points), which under asyncio's run-to-completion scheduling makes
    check-and-reserve atomic: two coroutines can never both observe one
    remaining unit and both spend it.
    """

    __slots__ = ("_limit", "_spent")

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise FaultError(f"budget limit must be >= 0, got {limit}")
        self._limit = limit
        self._spent = 0

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> int:
        return self._limit - self._spent

    def reserve(self, units: int = 1) -> None:
        """Spend ``units`` unconditionally; raises on overspend.

        Used for requests whose budget was already committed by probe
        selection (``select_probes`` returns at most ``C_j`` decisions).
        """
        if units < 0:
            raise FaultError(f"cannot reserve {units} units")
        if self._spent + units > self._limit:
            raise FaultError(
                f"budget overspend: {self._spent} spent + {units} "
                f"reserved > limit {self._limit}")
        self._spent += units

    def try_reserve(self, units: int = 1) -> bool:
        """Spend ``units`` if they fit; False (and no spend) otherwise."""
        if units < 0:
            raise FaultError(f"cannot reserve {units} units")
        if self._spent + units > self._limit:
            return False
        self._spent += units
        return True

    def refund(self, units: int = 1) -> None:
        """Return reserved-but-unissued units (e.g. a cancelled hedge)."""
        if units < 0 or units > self._spent:
            raise FaultError(
                f"cannot refund {units} units ({self._spent} spent)")
        self._spent -= units


class ServerSemaphores:
    """Per-server concurrency limits for in-flight probe requests.

    Parameters
    ----------
    limit:
        Maximum concurrent requests per origin server.
    owner_of:
        Optional ``resource_id -> server_name`` router (pass
        :meth:`~repro.runtime.federation.ServerFleet.owner_of` for a
        fleet); with ``None`` all resources share one semaphore.
    """

    def __init__(self, limit: int,
                 owner_of: Callable[[int], str] | None = None) -> None:
        if limit < 1:
            raise FaultError(f"concurrency limit must be >= 1, got {limit}")
        self.limit = limit
        self._owner_of = owner_of
        self._semaphores: dict[str, asyncio.Semaphore] = {}

    def for_resource(self, resource_id: int) -> asyncio.Semaphore:
        """The semaphore guarding the server owning ``resource_id``."""
        owner = self._owner_of(resource_id) if self._owner_of else ""
        semaphore = self._semaphores.get(owner)
        if semaphore is None:
            semaphore = self._semaphores[owner] = \
                asyncio.Semaphore(self.limit)
        return semaphore


@dataclass(slots=True)
class AsyncProbeRound(ProbeRound):
    """Probe-round accounting extended with async-only counters.

    Attributes
    ----------
    hedges:
        Redundant hedge requests whose duplicate success was discarded
        (budget spent, no extra data).
    deadline_timeouts:
        Requests cancelled by the per-probe deadline (these also count
        as ``failures``).
    """

    hedges: int = 0
    deadline_timeouts: int = 0


@dataclass(slots=True)
class _ResourceResult:
    """Per-decision accounting, merged in decision order afterwards."""

    outcome: Any = None
    attempts: int = 0
    failures: int = 0
    retries: int = 0
    hedges: int = 0
    deadline_timeouts: int = 0


async def execute_probes_async(
        decisions: Sequence[Any], chronon: Chronon, budget: int,
        prober: AsyncProber, *,
        backoff: BackoffPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline: float | None = None,
        semaphores: ServerSemaphores | None = None,
        hedge_delay: float | None = None) -> AsyncProbeRound:
    """Execute one chronon's probe decisions concurrently.

    Mirrors :func:`repro.faults.engine.execute_probes` semantics — first
    attempts are pre-paid by selection, retries spend leftover budget,
    failures and successes feed the breaker, a mid-chronon trip stops a
    resource's retries — with four async extensions:

    * every request is bounded by ``deadline`` seconds
      (:func:`asyncio.wait_for`); an expired request counts as a failed
      probe with fault ``"deadline"``;
    * requests to one server are capped by ``semaphores``;
    * each retry first sleeps a deterministic full-jitter ``backoff``
      delay keyed on ``(resource, chronon, attempt)``;
    * when ``hedge_delay`` is set and the breaker reports a resource
      *half-open*, its quarantine-exit trial is hedged: if the primary
      request has not answered after ``hedge_delay`` seconds, a second
      request races it (spending one leftover budget unit). Both
      answers are awaited and accounted in a fixed primary-then-hedge
      order, so accounting stays deterministic however the race lands.

    On a fault-free schedule (no failures, no quarantine) the returned
    accounting is identical to the synchronous engine's.
    """
    round_ = AsyncProbeRound()
    ledger = BudgetLedger(budget)
    ledger.reserve(len(decisions))
    max_retries = backoff.max_retries if backoff is not None else 0

    async def _request(resource_id: int, attempt: int,
                      result: _ResourceResult) -> Any:
        """Issue one (already budget-reserved) request."""
        result.attempts += 1
        guard = (semaphores.for_resource(resource_id)
                 if semaphores is not None else None)
        if guard is not None:
            await guard.acquire()
        try:
            if deadline is not None:
                try:
                    return await asyncio.wait_for(
                        prober(resource_id, attempt), timeout=deadline)
                except asyncio.TimeoutError:
                    result.deadline_timeouts += 1
                    return ProbeOutcome(
                        resource_id=resource_id, chronon=chronon,
                        status=PROBE_FAILED, fault="deadline",
                        attempt=attempt)
            return await prober(resource_id, attempt)
        finally:
            if guard is not None:
                guard.release()

    def _account(resource_id: int, outcome: Any,
                 result: _ResourceResult) -> bool:
        """Feed breaker and counters with one answer; True when ok."""
        if outcome.ok:
            if breaker is not None:
                breaker.record_success(resource_id)
            return True
        result.failures += 1
        if breaker is not None:
            breaker.record_failure(resource_id, chronon)
        return False

    async def _hedged_trial(resource_id: int,
                            result: _ResourceResult) -> Any:
        """Race a half-open trial probe against a delayed hedge."""
        primary = asyncio.ensure_future(
            _request(resource_id, 0, result))
        await asyncio.wait({primary}, timeout=hedge_delay)
        if primary.done() or not ledger.try_reserve():
            outcome = await primary
            return outcome if _account(resource_id, outcome, result) \
                else None
        hedge = asyncio.ensure_future(
            _request(resource_id, HEDGE_ATTEMPT, result))
        primary_outcome, hedge_outcome = await asyncio.gather(
            primary, hedge)
        # Fixed primary-then-hedge accounting order keeps the breaker
        # and the counters independent of which answer landed first.
        primary_ok = _account(resource_id, primary_outcome, result)
        hedge_ok = hedge_outcome.ok
        if hedge_ok and primary_ok:
            result.hedges += 1  # duplicate answer, budget burned
            return primary_outcome
        if hedge_ok:
            if breaker is not None:
                breaker.record_success(resource_id)
            return hedge_outcome
        result.failures += 1
        if breaker is not None:
            breaker.record_failure(resource_id, chronon)
        return primary_outcome if primary_ok else None

    async def _probe_one(resource_id: int) -> _ResourceResult:
        result = _ResourceResult()
        half_open = (breaker is not None and hedge_delay is not None
                     and breaker.is_half_open(resource_id, chronon))
        if half_open:
            result.outcome = await _hedged_trial(resource_id, result)
            # A failed trial re-tripped the breaker: no retries.
            return result
        outcome = await _request(resource_id, 0, result)
        if _account(resource_id, outcome, result):
            result.outcome = outcome
            return result
        for attempt in range(1, max_retries + 1):
            if breaker is not None and breaker.is_blocked(resource_id,
                                                          chronon):
                break
            if not ledger.try_reserve():
                break
            if backoff is not None:
                delay = backoff.delay_for(f"{resource_id}:{chronon}",
                                          attempt)
                if delay > 0.0:
                    await asyncio.sleep(delay)
            result.retries += 1
            outcome = await _request(resource_id, attempt, result)
            if _account(resource_id, outcome, result):
                result.outcome = outcome
                break
        return result

    results = await asyncio.gather(
        *(_probe_one(decision.resource_id) for decision in decisions))

    for decision, result in zip(decisions, results):
        resource_id = decision.resource_id
        round_.attempts += result.attempts
        round_.failures += result.failures
        round_.retries += result.retries
        round_.hedges += result.hedges
        round_.deadline_timeouts += result.deadline_timeouts
        if result.outcome is not None:
            round_.outcomes[resource_id] = result.outcome
        else:
            round_.failed.append(resource_id)
    if round_.attempts > budget:
        raise FaultError(  # pragma: no cover - ledger makes this dead
            f"async round issued {round_.attempts} requests over "
            f"budget {budget}")
    return round_
