"""Deterministic chaos/soak harness for the async proxy service.

The async stack earns its keep only if its failure handling can be
*demonstrated*, reproducibly. This module scripts an entire adverse run
from a single seed — drop/timeout faults, scripted outages, slow-server
latency spikes that blow per-probe deadlines, and client churn
(registrations and cancellations landing mid-epoch) — drives the
:class:`~repro.runtime.aio.proxy.AsyncMonitoringProxy` through it, and
checks the service-level invariants:

* **exactly-once delivery** — every completed t-interval produced one
  notification, no t-interval produced two;
* **conservation** — ``registered == completed + expired + dropped``
  once the epoch flushes;
* **budget** — the executed schedule never exceeds any chronon's
  ``C_j``;
* **capture identity** — with the fault schedule turned off, the async
  proxy's snapshots, notifications, and stats equal the synchronous
  :class:`~repro.runtime.proxy.MonitoringProxy`'s on the same instance
  and churn script.

Runnable directly (the CI soak-smoke step)::

    python -m repro.runtime.aio.chaos --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import random
from dataclasses import dataclass, field

from repro.core.budget import BudgetVector
from repro.core.profile import Profile
from repro.core.timeline import Epoch
from repro.core.intervals import TInterval
from repro.faults.breaker import BackoffPolicy, CircuitBreaker
from repro.faults.model import FaultSpec, Outage
from repro.faults.server import UnreliableServer
from repro.online import MRSFPolicy
from repro.runtime.aio.journal import Journal
from repro.runtime.aio.proxy import AsyncMonitoringProxy
from repro.runtime.proxy import MonitoringProxy, ProxyStats
from repro.runtime.server import OriginServer
from repro.traces.models import PoissonUpdateModel
from repro.workloads import GeneratorConfig, ProfileGenerator

__all__ = ["ChaosConfig", "SoakReport", "build_scenario", "run_soak",
           "main"]


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """One fully seeded chaos scenario.

    With ``failure_probability == timeout_probability == 0``, no
    outages, and ``slow_fraction == 0`` the scenario is fault-free and
    eligible for the capture-identity check.
    """

    epoch_length: int = 80
    num_resources: int = 16
    num_profiles: int = 24
    budget: int = 2
    update_intensity: float = 12.0
    seed: int = 0
    # Fault schedule
    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    outage_count: int = 0
    outage_length: int = 8
    slow_fraction: float = 0.0
    # Async knobs (seconds)
    deadline: float = 0.02
    slow_latency: float = 0.08
    hedge_delay: float = 0.005
    backoff_base: float = 0.0005
    max_retries: int = 1
    # Churn: fraction of profiles arriving mid-run / cancelled mid-run
    churn_fraction: float = 0.3
    cancel_fraction: float = 0.15

    @property
    def fault_free(self) -> bool:
        return (self.failure_probability == 0.0
                and self.timeout_probability == 0.0
                and self.outage_count == 0
                and self.slow_fraction == 0.0)


@dataclass(slots=True)
class _ChurnPlan:
    """Scripted mid-run actions, identical for sync and async runs."""

    initial: list[Profile] = field(default_factory=list)
    # chronon -> profiles to register right before stepping into it
    arrivals: dict[int, list[Profile]] = field(default_factory=dict)
    # chronon -> registration order indices to cancel
    cancels: dict[int, list[int]] = field(default_factory=dict)


@dataclass(slots=True)
class SoakReport:
    """Outcome of one soak run."""

    stats: ProxyStats
    delivered: int
    distinct: int
    duplicates: int
    budget_respected: bool
    violations: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"delivered={self.delivered} distinct={self.distinct} "
            f"duplicates={self.duplicates}",
            f"completed={self.stats.completed} "
            f"expired={self.stats.expired} "
            f"dropped={self.stats.dropped} "
            f"registered={self.stats.registered}",
            f"requests={self.stats.requests_sent} "
            f"failed={self.stats.probes_failed} "
            f"retries={self.stats.retries} "
            f"hedges={self.stats.hedges} "
            f"quarantined={self.stats.resources_quarantined}",
            f"budget_respected={self.budget_respected}",
        ]
        if self.violations:
            lines.append("VIOLATIONS:")
            lines.extend(f"  - {violation}"
                         for violation in self.violations)
        else:
            lines.append("all invariants hold")
        return "\n".join(lines)


def _bare(profile: Profile) -> Profile:
    """Strip stamped identities so a profile can be re-registered."""
    return Profile([TInterval(eta.eis) for eta in profile],
                   name=profile.name)


def _plan(config: ChaosConfig):
    """Build the (epoch, trace, churn plan) of a scenario from its seed."""
    epoch = Epoch(config.epoch_length)
    trace = PoissonUpdateModel(
        config.update_intensity, seed=config.seed).generate(
        range(config.num_resources), epoch)
    generated = ProfileGenerator(GeneratorConfig(
        num_profiles=config.num_profiles, max_rank=2,
        window=max(4, config.epoch_length // 8),
        seed=config.seed + 1)).generate(trace, epoch)
    profiles = [_bare(profile) for profile in generated]

    rng = random.Random(f"{config.seed}:churn")
    plan = _ChurnPlan()
    for index, profile in enumerate(profiles):
        if index >= 1 and rng.random() < config.churn_fraction:
            arrival = rng.randrange(2, max(3, epoch.last - 4))
            plan.arrivals.setdefault(arrival, []).append(profile)
        else:
            plan.initial.append(profile)
    total = len(profiles)
    for order in range(total):
        if rng.random() < config.cancel_fraction:
            chronon = rng.randrange(3, epoch.last + 1)
            plan.cancels.setdefault(chronon, []).append(order)
    return epoch, trace, plan


def _make_server(config: ChaosConfig, epoch: Epoch, trace):
    """The origin server of a scenario (wrapped when faults are on)."""
    server = OriginServer(trace)
    if config.fault_free:
        return server
    rng = random.Random(f"{config.seed}:outage")
    outages = tuple(
        Outage(resource_id=rng.randrange(config.num_resources),
               start=(start := rng.randrange(1, epoch.last)),
               last=min(epoch.last, start + config.outage_length))
        for _ in range(config.outage_count)
    )
    spec = FaultSpec(
        failure_probability=config.failure_probability,
        timeout_probability=config.timeout_probability,
        outages=outages,
        seed=config.seed,
    )
    return UnreliableServer(server, spec)


def _latency_fn(config: ChaosConfig):
    """Deterministic slow-server spikes: a seeded coin per (resource,
    chronon) turns the probe's latency far past the deadline."""
    if config.slow_fraction <= 0.0:
        return None

    def latency(resource_id: int, chronon: int, attempt: int) -> float:
        draw = random.Random(
            f"{config.seed}:slow:{resource_id}:{chronon}:{attempt}")
        if draw.random() < config.slow_fraction:
            return config.slow_latency
        return 0.0

    return latency


def _drive(proxy, plan: _ChurnPlan, epoch: Epoch, client, stepper):
    """Apply the churn script around ``stepper()`` chronon ticks.

    Registration order (initial profiles, then arrivals by chronon) is
    identical for the sync and async proxies, so profile ids — and the
    cancel script that references them by order — line up exactly.
    """
    order_to_id: list[int] = []
    for profile in plan.initial:
        order_to_id.append(proxy.register_profile(client, profile))
    for chronon in range(1, epoch.last + 1):
        for profile in plan.arrivals.get(chronon, ()):
            order_to_id.append(proxy.register_profile(client, profile))
        for order in plan.cancels.get(chronon, ()):
            if order < len(order_to_id):
                profile_id = order_to_id[order]
                if proxy._registrations[profile_id].active:
                    proxy.unregister_profile(profile_id)
        stepper()


def build_scenario(config: ChaosConfig, journal_path=None):
    """Instantiate one scenario: ``(epoch, plan, proxy)``.

    Shared by :func:`run_soak` and the runtime benchmark, so both
    measure exactly the proxy configuration the invariants are proven
    on.
    """
    epoch, trace, plan = _plan(config)
    server = _make_server(config, epoch, trace)
    journal = Journal(journal_path) if journal_path is not None else None
    proxy = AsyncMonitoringProxy(
        server, epoch, BudgetVector(config.budget), MRSFPolicy(),
        backoff=BackoffPolicy(max_retries=config.max_retries,
                              base_delay=config.backoff_base,
                              max_delay=max(config.backoff_base * 8,
                                            config.backoff_base),
                              seed=config.seed),
        breaker=CircuitBreaker(failure_threshold=3, cooldown=4),
        deadline=config.deadline,
        hedge_delay=config.hedge_delay,
        latency=_latency_fn(config),
        journal=journal,
    )
    return epoch, plan, proxy


async def run_soak(config: ChaosConfig,
                   journal_path=None) -> SoakReport:
    """Run one scripted chaos scenario and check every invariant."""
    epoch, plan, proxy = build_scenario(config, journal_path)
    journal = proxy.journal
    client = proxy.register_client("soak")

    # Same churn script as the synchronous reference run in
    # :func:`_identity_violations`, with churn applied between chronons.
    order_to_id: list[int] = []
    for profile in plan.initial:
        order_to_id.append(proxy.register_profile(client, profile))
    for chronon in range(1, epoch.last + 1):
        for profile in plan.arrivals.get(chronon, ()):
            order_to_id.append(proxy.register_profile(client, profile))
        for order in plan.cancels.get(chronon, ()):
            if order < len(order_to_id):
                profile_id = order_to_id[order]
                if proxy._registrations[profile_id].active:
                    proxy.unregister_profile(profile_id)
        await proxy.astep()
    proxy._flush()
    stats = proxy.stats()
    if journal is not None:
        journal.close()

    delivered = list(client.mailbox)
    keys = [(n.profile_id, n.tinterval_id) for n in delivered]
    distinct = len(set(keys))
    duplicates = len(keys) - distinct
    budget_ok = proxy.schedule.respects_budget(
        BudgetVector(config.budget), epoch)

    violations: list[str] = []
    if duplicates:
        violations.append(f"{duplicates} duplicate notifications")
    if distinct != stats.completed:
        violations.append(
            f"lost notifications: {stats.completed} completions but "
            f"{distinct} distinct deliveries")
    if stats.registered != (stats.completed + stats.expired
                            + stats.dropped):
        violations.append(
            f"conservation broken: {stats.registered} != "
            f"{stats.completed} + {stats.expired} + {stats.dropped}")
    if not budget_ok:
        violations.append("schedule exceeds the per-chronon budget")

    if config.fault_free:
        violations.extend(_identity_violations(config, stats, delivered))

    return SoakReport(stats=stats, delivered=len(delivered),
                      distinct=distinct, duplicates=duplicates,
                      budget_respected=budget_ok,
                      violations=violations)


def _identity_violations(config: ChaosConfig, async_stats: ProxyStats,
                         async_delivered) -> list[str]:
    """Compare a fault-free async run against the synchronous proxy."""
    epoch, trace, plan = _plan(config)
    server = OriginServer(trace)
    proxy = MonitoringProxy(server, epoch, BudgetVector(config.budget),
                            MRSFPolicy())
    client = proxy.register_client("soak")
    _drive(proxy, plan, epoch, client, proxy.step)
    proxy._flush()
    sync_stats = proxy.stats()

    violations: list[str] = []
    if sync_stats != async_stats:
        violations.append(
            f"stats diverge from the synchronous proxy: "
            f"sync={sync_stats} async={async_stats}")
    sync_delivered = list(client.mailbox)
    if len(sync_delivered) != len(async_delivered):
        violations.append(
            f"notification counts diverge: sync "
            f"{len(sync_delivered)} vs async {len(async_delivered)}")
        return violations
    for sync_note, async_note in zip(sync_delivered, async_delivered):
        if (sync_note.profile_id, sync_note.tinterval_id,
                sync_note.completed_at, sync_note.snapshots) != \
                (async_note.profile_id, async_note.tinterval_id,
                 async_note.completed_at, async_note.snapshots):
            violations.append(
                f"notification diverges: sync={sync_note} "
                f"async={async_note}")
            break
    return violations


# ---------------------------------------------------------------------
# Scenario lineup
# ---------------------------------------------------------------------

def smoke_scenarios(seed: int = 0) -> dict[str, ChaosConfig]:
    """The short deterministic lineup CI soaks on every push."""
    return {
        "fault-free-identity": ChaosConfig(seed=seed),
        "drop-timeout-storm": ChaosConfig(
            seed=seed, failure_probability=0.25,
            timeout_probability=0.1, max_retries=2),
        "outages-and-slow-servers": ChaosConfig(
            seed=seed, outage_count=4, slow_fraction=0.15,
            failure_probability=0.05),
    }


def soak_scenarios(seed: int = 0) -> dict[str, ChaosConfig]:
    """The longer lineup for local soaking."""
    lineup = {}
    for name, config in smoke_scenarios(seed).items():
        lineup[name] = ChaosConfig(**{
            **_config_dict(config),
            "epoch_length": 200,
            "num_profiles": 60,
            "num_resources": 32,
        })
    return lineup


def _config_dict(config: ChaosConfig) -> dict:
    return {name: getattr(config, name)
            for name in ChaosConfig.__dataclass_fields__}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.aio.chaos",
        description="Deterministic chaos soak of the async proxy.")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI lineup instead of the full soak")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    lineup = smoke_scenarios(args.seed) if args.smoke \
        else soak_scenarios(args.seed)
    failures = 0
    for name, config in lineup.items():
        report = asyncio.run(run_soak(config))
        print(f"== {name} ==")
        print(report.describe())
        print()
        if not report.ok:
            failures += 1
    if failures:
        print(f"{failures}/{len(lineup)} scenarios violated invariants")
        return 1
    print(f"all {len(lineup)} scenarios clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
