"""The asyncio monitoring proxy: concurrent probing over the shared core.

:class:`AsyncMonitoringProxy` subclasses the synchronous
:class:`~repro.runtime.proxy.MonitoringProxy` and reuses its
``_begin_step`` / ``_finish_step`` chronon skeleton verbatim — candidate
construction, policy selection, capture bookkeeping, and notification
accounting are *the same code*. Only probe execution differs: the
per-chronon probe set fans out as coroutines through
:func:`~repro.runtime.aio.engine.execute_probes_async`, with per-probe
deadlines, per-server concurrency semaphores, full-jitter backoff
retries, and hedged quarantine-exit trials. On a fault-free schedule the
async proxy is therefore capture-identical to the synchronous one by
construction (and the test suite verifies it).

Two service-grade additions ride on top:

* an *event stream* — subscribers get every registration, cancellation,
  tick, and notification as a JSON-able event (the SSE endpoint of
  :mod:`repro.runtime.aio.service` is a thin adapter over this);
* a *write-ahead journal* — registrations, cancellations, in-flight
  captures, and completions hit the
  :class:`~repro.runtime.aio.journal.Journal`
  before their in-memory effect, and :meth:`AsyncMonitoringProxy.recover`
  rebuilds a killed proxy from the log: same clients, same profile ids,
  same completed t-intervals with their captured snapshots, mailboxes
  reconstructed, nothing delivered twice within a process lifetime.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.budget import BudgetVector
from repro.core.errors import ModelError
from repro.core.profile import Profile
from repro.core.timeline import Chronon, Epoch
from repro.faults.breaker import BackoffPolicy, CircuitBreaker
from repro.online.base import Policy
from repro.runtime.aio.engine import (
    ServerSemaphores,
    execute_probes_async,
)
from repro.runtime.aio.journal import Journal, JournalState, replay_journal
from repro.runtime.clients import Client, Notification
from repro.runtime.proxy import MonitoringProxy, ProxyStats
from repro.runtime.server import OriginServer

__all__ = ["AsyncMonitoringProxy", "ProxyEvent", "notification_payload"]

#: ``(resource_id, chronon, attempt) -> seconds`` of simulated network
#: latency before a request reaches the server (the chaos harness's
#: "slow server" knob); None or 0.0 means the request is immediate.
LatencyFn = Callable[[int, Chronon, int], float]


@dataclass(frozen=True, slots=True)
class ProxyEvent:
    """One observable proxy event, shaped for JSON transport."""

    kind: str
    chronon: Chronon
    payload: dict


def notification_payload(notification: Notification) -> dict:
    """A notification as a JSON-able dict (the SSE wire shape)."""
    return {
        "client_id": notification.client_id,
        "profile_name": notification.profile_name,
        "profile_id": notification.profile_id,
        "tinterval_id": notification.tinterval_id,
        "completed_at": notification.completed_at,
        "snapshots": [
            {"resource_id": s.resource_id, "probed_at": s.probed_at,
             "version": s.version, "updated_at": s.updated_at,
             "value": s.value}
            for s in notification.snapshots
        ],
    }


class AsyncMonitoringProxy(MonitoringProxy):
    """An asyncio proxy service around the shared scheduling core.

    Parameters beyond :class:`~repro.runtime.proxy.MonitoringProxy`'s
    ----------------------------------------------------------------
    backoff:
        Retry allowance *and* jittered delay schedule (replaces the
        sync proxy's plain ``retry``); ``None`` disables retries.
    deadline:
        Per-probe deadline in seconds; an expired request counts as a
        failed probe with fault ``"deadline"``. ``None`` disables.
    max_concurrency:
        In-flight request cap per origin server.
    owner_of:
        ``resource_id -> server_name`` router for per-server semaphores
        (pass ``fleet.owner_of`` for a
        :class:`~repro.runtime.federation.ServerFleet`); with ``None``
        all resources share one semaphore.
    hedge_delay:
        When set, quarantine-exit trial probes are hedged with a second
        request after this many seconds (spending leftover budget).
    latency:
        Simulated per-request network latency (chaos harness knob).
    journal:
        Write-ahead journal; ``None`` disables durability.
    """

    def __init__(self, server: OriginServer, epoch: Epoch,
                 budget: BudgetVector, policy: Policy,
                 preemptive: bool = True,
                 backoff: BackoffPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 deadline: float | None = None,
                 max_concurrency: int = 8,
                 owner_of: Callable[[int], str] | None = None,
                 hedge_delay: float | None = None,
                 latency: LatencyFn | None = None,
                 journal: Journal | None = None) -> None:
        super().__init__(
            server, epoch, budget, policy, preemptive=preemptive,
            retry=backoff.as_retry() if backoff is not None else None,
            breaker=breaker)
        self.backoff = backoff
        self.deadline = deadline
        self.hedge_delay = hedge_delay
        self.latency = latency
        self.journal = journal
        self._semaphores = ServerSemaphores(max_concurrency,
                                            owner_of=owner_of)
        self._step_lock = asyncio.Lock()
        self._subscribers: list[asyncio.Queue] = []
        self._completed_log: dict[tuple[int, int], Notification] = {}
        self._replaying = False

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------

    def subscribe(self) -> asyncio.Queue:
        """A queue receiving every future :class:`ProxyEvent`."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def _emit(self, kind: str, payload: dict) -> None:
        if not self._subscribers:
            return
        event = ProxyEvent(kind=kind, chronon=self._clock,
                           payload=payload)
        for queue in self._subscribers:
            queue.put_nowait(event)

    # ------------------------------------------------------------------
    # Journaled registration API
    # ------------------------------------------------------------------

    def register_client(self, name: str = "", callback=None) -> Client:
        client = super().register_client(name, callback=callback)
        if self.journal is not None and not self._replaying:
            self.journal.record_client(client.client_id, client.name)
        return client

    def register_profile(self, client: Client, profile: Profile) -> int:
        if client.client_id not in self._clients:
            raise ModelError(f"unknown client {client.client_id}")
        if len(profile) == 0:
            raise ModelError("cannot register an empty profile")
        if self.journal is not None and not self._replaying:
            # Write-ahead: the registration is durable before it is
            # visible (the id the superclass will assign is the next
            # counter value — asyncio's run-to-completion makes the
            # read-ahead race-free).
            self.journal.record_register(self._next_profile_id,
                                         client.client_id, profile)
        profile_id = super().register_profile(client, profile)
        self._emit("register", {"profile_id": profile_id,
                                "client_id": client.client_id,
                                "name": profile.name,
                                "tintervals": len(profile)})
        return profile_id

    def unregister_profile(self, profile_id: int) -> None:
        if (self.journal is not None and not self._replaying
                and profile_id in self._registrations):
            self.journal.record_unregister(profile_id)
        super().unregister_profile(profile_id)
        self._emit("unregister", {"profile_id": profile_id})

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def _aprobe(self, resource_id: int, attempt: int) -> Any:
        """One pull request as a coroutine (latency-injectable)."""
        if self.latency is not None:
            delay = self.latency(resource_id, self._clock, attempt)
            if delay:
                await asyncio.sleep(delay)
        return self._prober(resource_id, attempt)

    async def astep(self) -> Chronon:
        """Process the next chronon with concurrent probing.

        Reentrancy-safe: concurrent calls serialize on an internal lock,
        so a chronon tick can never be double-counted and budget
        accounting never interleaves between ticks.
        """
        async with self._step_lock:
            chronon, budget_now, candidates, decisions = \
                self._begin_step()
            if decisions:
                round_ = await execute_probes_async(
                    decisions, chronon, budget_now, self._aprobe,
                    backoff=self.backoff, breaker=self.breaker,
                    deadline=self.deadline,
                    semaphores=self._semaphores,
                    hedge_delay=self.hedge_delay)
                self._finish_step(chronon, candidates, decisions, round_)
            if self.journal is not None and not self._replaying:
                self.journal.record_tick(chronon)
            self._emit("tick", {"chronon": chronon,
                                "probes": len(decisions)})
            return chronon

    async def arun(self, until: Chronon | None = None,
                   tick_interval: float = 0.0) -> ProxyStats:
        """Run to ``until`` (default: end of epoch) and return stats.

        ``tick_interval`` seconds of real time separate chronons (0 for
        as-fast-as-possible, e.g. benchmarks and tests).
        """
        target = self.epoch.last if until is None else until
        while self._clock < target:
            await self.astep()
            if tick_interval > 0.0:
                await asyncio.sleep(tick_interval)
        if self._clock >= self.epoch.last:
            self._flush()
        return self.stats()

    def _capture(self, state, ei, snapshot) -> None:
        # Write-ahead: in-flight progress is durable before it is
        # visible, so recovery resumes partially captured t-intervals
        # instead of restarting them.
        if self.journal is not None and not self._replaying:
            self.journal.record_capture(
                state.eta.profile_id, state.eta.tinterval_id,
                ei.ei_id, snapshot)
        super()._capture(state, ei, snapshot)

    def _publish(self, notification: Notification, state) -> None:
        # Write-ahead: the completion is durable before the client can
        # observe it.
        if self.journal is not None and not self._replaying:
            self.journal.record_complete(
                notification.profile_id, notification.tinterval_id,
                notification.completed_at, notification.snapshots)
        key = (notification.profile_id, notification.tinterval_id)
        self._completed_log[key] = notification
        state.registration.client.deliver(notification)
        self._emit("notification", notification_payload(notification))

    @property
    def completed_log(self) -> dict[tuple[int, int], Notification]:
        """Every delivered completion, keyed ``(profile_id,
        tinterval_id)`` — exactly-once by construction (one key, one
        notification)."""
        return dict(self._completed_log)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, journal_path, server: OriginServer, epoch: Epoch,
                budget: BudgetVector, policy: Policy,
                **kwargs) -> "AsyncMonitoringProxy":
        """Rebuild a proxy from its journal after a crash.

        The log is folded into registrations, cancellations, in-flight
        captures, and completions; the recovered proxy has the same
        clients (ids and names), the same profile ids, its clock at the
        last journaled tick, every journaled completion restored —
        snapshots included, re-delivered into the fresh client
        mailboxes, but *not* re-journaled — partially captured
        t-intervals resuming where they left off, and everything else
        pending again. Probe
        telemetry (schedule, failures, retries) is process state, not
        logical state, and is not reconstructed.

        The journal file keeps growing in place: the recovered proxy
        appends to the same log, so repeated crashes recover repeatedly.
        """
        state = replay_journal(journal_path)
        proxy = cls(server, epoch, budget, policy,
                    journal=Journal(journal_path), **kwargs)
        proxy._restore(state)
        return proxy

    def _restore(self, state: JournalState) -> None:
        self._replaying = True
        try:
            # Clock first: re-registrations must schedule arrivals
            # relative to where the epoch actually is.
            self._clock = min(state.last_tick, self.epoch.last)
            self.server.advance_to(self._clock)
            clients_by_id: dict[int, Client] = {}
            for client_id, name in state.clients:
                client = self.register_client(name)
                if client.client_id != client_id:
                    raise ModelError(
                        f"journal replay assigned client id "
                        f"{client.client_id}, expected {client_id}")
                clients_by_id[client_id] = client
            for entry in state.registrations:
                client = clients_by_id.get(entry.client_id)
                if client is None:
                    raise ModelError(
                        f"journal registration {entry.profile_id} "
                        f"references unknown client {entry.client_id}")
                assigned = self.register_profile(client, entry.profile)
                if assigned != entry.profile_id:
                    raise ModelError(
                        f"journal replay assigned profile id "
                        f"{assigned}, expected {entry.profile_id}")
            for profile_id in sorted(state.unregistered):
                self.unregister_profile(profile_id)
            for key, snapshots in state.captures.items():
                if key not in state.completions:
                    self._restore_capture(key, snapshots)
            for completion in state.completions.values():
                self._restore_completion(completion)
        finally:
            self._replaying = False

    def _restore_capture(self, key: tuple[int, int],
                         snapshots: dict) -> None:
        """Replay journaled in-flight captures onto a pending state."""
        state = self._find_state(*key)
        if state is None:
            return  # e.g. cancelled before the crash
        for ei_id, snapshot in snapshots.items():
            if not state.captured[ei_id]:
                state.mark_captured(ei_id)
                state.snapshots[ei_id] = snapshot
        state.committed = True

    def _restore_completion(self, completion) -> None:
        key = (completion.profile_id, completion.tinterval_id)
        state = self._find_state(*key)
        if state is None:
            raise ModelError(
                f"journaled completion {key} has no registered "
                f"t-interval")
        for ei in state.eta:
            state.mark_captured(ei.ei_id)
            state.snapshots[ei.ei_id] = None
        for snapshot in completion.snapshots:
            for ei in state.eta:
                if (ei.resource_id == snapshot.resource_id
                        and state.snapshots[ei.ei_id] is None
                        and ei.start <= snapshot.probed_at <= ei.finish):
                    state.snapshots[ei.ei_id] = snapshot
                    break
        self._drop_from_queues(state)
        self._completed += 1
        notification = Notification(
            client_id=state.registration.client.client_id,
            profile_name=state.registration.profile.name,
            profile_id=completion.profile_id,
            tinterval_id=completion.tinterval_id,
            completed_at=completion.completed_at,
            snapshots=completion.snapshots,
        )
        self._completed_log[key] = notification
        state.registration.client.deliver(notification)

    def _find_state(self, profile_id: int, tinterval_id: int):
        for states in self._arrivals.values():
            for state in states:
                if (state.eta.profile_id == profile_id
                        and state.eta.tinterval_id == tinterval_id):
                    return state
        for state in self._pending:
            if (state.eta.profile_id == profile_id
                    and state.eta.tinterval_id == tinterval_id):
                return state
        return None

    def _drop_from_queues(self, state) -> None:
        for chronon, states in list(self._arrivals.items()):
            if state in states:
                states.remove(state)
                if not states:
                    del self._arrivals[chronon]
        if state in self._pending:
            self._pending.remove(state)
