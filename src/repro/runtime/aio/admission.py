"""Admission control: quotas and deterministic lowest-utility shedding.

A live proxy has a hard probing budget, so accepting every registration
during a flash crowd degrades *everyone* — the online-interval-
scheduling literature's answer is to bound load and keep the satisfied
share predictable. This controller enforces two limits:

* a per-client quota of active profiles (one misbehaving client cannot
  starve the rest);
* a global capacity in active t-intervals (the unit the budget actually
  schedules).

When a registration would exceed capacity, load is shed
*deterministically*: the lowest-utility active profiles are evicted
first (ties evict the youngest, protecting seniority), and if the
newcomer itself ranks at or below everything it would displace, the
newcomer is rejected instead. Identical request sequences therefore
always produce identical admission decisions — no randomness, no
wall-clock dependence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ModelError

__all__ = ["AdmissionController", "AdmissionDecision", "AdmissionStats"]


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """The controller's verdict on one registration attempt.

    ``admitted`` with a non-empty ``shed`` means the caller must
    unregister the listed profile ids to make room *before* registering
    the newcomer.
    """

    admitted: bool
    reason: str = ""
    shed: tuple[int, ...] = ()


@dataclass(slots=True)
class AdmissionStats:
    """Running census of admission outcomes."""

    admitted: int = 0
    rejected_quota: int = 0
    rejected_capacity: int = 0
    shed: int = 0

    def as_dict(self) -> dict:
        return {"admitted": self.admitted,
                "rejected_quota": self.rejected_quota,
                "rejected_capacity": self.rejected_capacity,
                "shed": self.shed}


@dataclass(slots=True)
class _ActiveProfile:
    profile_id: int
    client_key: str
    utility: float
    load: int


class AdmissionController:
    """Deterministic admission control for profile registrations.

    Parameters
    ----------
    max_tintervals:
        Global capacity, in active t-intervals; ``None`` disables the
        capacity check (quotas still apply).
    max_profiles_per_client:
        Active-profile quota per client key; ``None`` disables.
    """

    def __init__(self, max_tintervals: int | None = None,
                 max_profiles_per_client: int | None = None) -> None:
        if max_tintervals is not None and max_tintervals < 1:
            raise ModelError(
                f"max_tintervals must be >= 1, got {max_tintervals}")
        if (max_profiles_per_client is not None
                and max_profiles_per_client < 1):
            raise ModelError(
                f"max_profiles_per_client must be >= 1, got "
                f"{max_profiles_per_client}")
        self.max_tintervals = max_tintervals
        self.max_profiles_per_client = max_profiles_per_client
        self.stats = AdmissionStats()
        self._active: dict[int, _ActiveProfile] = {}

    # ------------------------------------------------------------------
    # Census
    # ------------------------------------------------------------------

    @property
    def active_load(self) -> int:
        """Active t-intervals currently admitted."""
        return sum(entry.load for entry in self._active.values())

    def active_profiles(self, client_key: str | None = None) -> int:
        """Active profiles, optionally for one client key."""
        if client_key is None:
            return len(self._active)
        return sum(1 for entry in self._active.values()
                   if entry.client_key == client_key)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def decide(self, client_key: str, load: int,
               utility: float = 1.0) -> AdmissionDecision:
        """Rule on a registration of ``load`` t-intervals.

        Does not mutate the census — call :meth:`admit` (after the shed
        list is applied and the registration succeeded) to commit.
        """
        if load < 1:
            raise ModelError(f"profile load must be >= 1, got {load}")
        quota = self.max_profiles_per_client
        if quota is not None and self.active_profiles(client_key) >= quota:
            self.stats.rejected_quota += 1
            return AdmissionDecision(
                admitted=False,
                reason=f"client quota of {quota} active profiles "
                       f"reached")
        if self.max_tintervals is None:
            return AdmissionDecision(admitted=True)
        overflow = (self.active_load + load) - self.max_tintervals
        if overflow <= 0:
            return AdmissionDecision(admitted=True)
        # Shed lowest utility first; among equals the youngest goes
        # (largest profile_id), so long-lived registrations are sticky.
        shed: list[int] = []
        freed = 0
        for entry in sorted(self._active.values(),
                            key=lambda e: (e.utility, -e.profile_id)):
            if entry.utility >= utility:
                break  # nothing left strictly less useful
            shed.append(entry.profile_id)
            freed += entry.load
            if freed >= overflow:
                return AdmissionDecision(admitted=True,
                                         shed=tuple(shed))
        self.stats.rejected_capacity += 1
        return AdmissionDecision(
            admitted=False,
            reason=f"capacity of {self.max_tintervals} t-intervals "
                   f"reached and utility {utility} does not displace "
                   f"any active profile")

    # ------------------------------------------------------------------
    # Census mutations
    # ------------------------------------------------------------------

    def admit(self, profile_id: int, client_key: str, load: int,
              utility: float = 1.0) -> None:
        """Commit an admitted registration to the census."""
        if profile_id in self._active:
            raise ModelError(f"profile {profile_id} already admitted")
        self._active[profile_id] = _ActiveProfile(
            profile_id=profile_id, client_key=client_key,
            utility=utility, load=load)
        self.stats.admitted += 1

    def release(self, profile_id: int, shed: bool = False) -> None:
        """Remove a profile from the census (cancel, completion, or
        shedding); unknown ids are ignored — release is idempotent."""
        if self._active.pop(profile_id, None) is not None and shed:
            self.stats.shed += 1
