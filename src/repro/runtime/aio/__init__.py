"""The asyncio proxy service layer.

Everything the synchronous runtime does — pull under budget, push
notifications — plus what a *service* needs: concurrent probing with
deadlines and per-server concurrency caps, jittered-backoff retries,
hedged quarantine exits, an HTTP/SSE API with quotas and admission
control, a crash-recovery journal, and a deterministic chaos harness
that proves the whole stack degrades without losing or duplicating a
single notification.
"""

from repro.runtime.aio.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.runtime.aio.engine import (
    AsyncProbeRound,
    BudgetLedger,
    ServerSemaphores,
    execute_probes_async,
)
from repro.runtime.aio.journal import Journal, JournalState, replay_journal
from repro.runtime.aio.proxy import (
    AsyncMonitoringProxy,
    ProxyEvent,
    notification_payload,
)
from repro.runtime.aio.service import ProxyService

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "AsyncMonitoringProxy",
    "AsyncProbeRound",
    "BudgetLedger",
    "Journal",
    "JournalState",
    "ProxyEvent",
    "ProxyService",
    "ServerSemaphores",
    "execute_probes_async",
    "notification_payload",
    "replay_journal",
]
