"""Crash-recovery journal: a JSONL write-ahead log of proxy decisions.

The async proxy is a live service — clients register profiles while it
runs — so process death must not forget who asked for what, nor deliver
a completed t-interval twice. The journal records the three durable
facts as newline-delimited JSON, *before* the in-memory effect they
describe is applied (write-ahead ordering):

* ``client`` / ``register`` — who registered which profile;
* ``unregister`` — a profile was cancelled;
* ``capture`` — one execution interval of a still in-flight t-interval
  captured its snapshot (so recovery does not lose partial progress);
* ``complete`` — a t-interval finished, with its captured snapshots
  (journaled before the notification is pushed, so a crash between the
  two re-delivers on replay at most the journaled completion — never a
  phantom one);
* ``tick`` — the last fully processed chronon, so recovery resumes the
  clock instead of replaying the epoch from the start.

Replay (:func:`replay_journal`) folds the log into a
:class:`JournalState`; a torn final line — the signature of ``kill -9``
mid-write — is ignored rather than fatal.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.core.errors import ModelError
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile
from repro.core.timeline import Chronon
from repro.runtime.server import Snapshot

__all__ = ["Journal", "JournalState", "replay_journal"]

_FORMAT = "repro/aio-journal"
_VERSION = 1


def _encode_profile(profile: Profile) -> list[list[list[int]]]:
    return [[[ei.resource_id, ei.start, ei.finish] for ei in eta]
            for eta in profile]


def _decode_profile(tintervals, name: str) -> Profile:
    return Profile(
        [TInterval([ExecutionInterval(resource, start, finish)
                    for resource, start, finish in eis])
         for eis in tintervals],
        name=name)


def _encode_snapshot(snapshot: Snapshot) -> list:
    return [snapshot.resource_id, snapshot.probed_at, snapshot.version,
            snapshot.updated_at, snapshot.value]


def _decode_snapshot(fields) -> Snapshot:
    resource_id, probed_at, version, updated_at, value = fields
    return Snapshot(resource_id=resource_id, probed_at=probed_at,
                    version=version, updated_at=updated_at, value=value)


class Journal:
    """An append-only JSONL write-ahead log.

    Parameters
    ----------
    path:
        Log file; created (with a header line) when missing, appended
        to when present — recovery keeps writing to the same file.
    fsync:
        When True every record is fsynced before the write returns
        (durable against power loss, not just process death). Off by
        default: the chaos harness and tests kill processes, not
        machines.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._file: IO[str] = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write({"type": "header", "format": _FORMAT,
                         "version": _VERSION})

    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record, separators=(",", ":"))
                         + "\n")
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def record_client(self, client_id: int, name: str) -> None:
        self._write({"type": "client", "client_id": client_id,
                     "name": name})

    def record_register(self, profile_id: int, client_id: int,
                        profile: Profile) -> None:
        self._write({"type": "register", "profile_id": profile_id,
                     "client_id": client_id, "name": profile.name,
                     "tintervals": _encode_profile(profile)})

    def record_unregister(self, profile_id: int) -> None:
        self._write({"type": "unregister", "profile_id": profile_id})

    def record_capture(self, profile_id: int, tinterval_id: int,
                       ei_id: int, snapshot: Snapshot) -> None:
        self._write({"type": "capture", "profile_id": profile_id,
                     "tinterval_id": tinterval_id, "ei_id": ei_id,
                     "snapshot": _encode_snapshot(snapshot)})

    def record_complete(self, profile_id: int, tinterval_id: int,
                        completed_at: Chronon,
                        snapshots: tuple[Snapshot, ...]) -> None:
        self._write({"type": "complete", "profile_id": profile_id,
                     "tinterval_id": tinterval_id,
                     "completed_at": completed_at,
                     "snapshots": [_encode_snapshot(s)
                                   for s in snapshots]})

    def record_tick(self, chronon: Chronon) -> None:
        self._write({"type": "tick", "chronon": chronon})

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(slots=True)
class _RegisteredProfile:
    """One journaled registration, in registration order."""

    profile_id: int
    client_id: int
    profile: Profile


@dataclass(slots=True)
class CompletionRecord:
    """One journaled t-interval completion."""

    profile_id: int
    tinterval_id: int
    completed_at: Chronon
    snapshots: tuple[Snapshot, ...]


@dataclass(slots=True)
class JournalState:
    """The fold of a journal: everything recovery needs."""

    clients: list[tuple[int, str]] = field(default_factory=list)
    registrations: list[_RegisteredProfile] = field(default_factory=list)
    unregistered: set[int] = field(default_factory=set)
    captures: dict[tuple[int, int], dict[int, Snapshot]] = \
        field(default_factory=dict)
    completions: dict[tuple[int, int], CompletionRecord] = \
        field(default_factory=dict)
    last_tick: Chronon = 0


def replay_journal(path: str | Path) -> JournalState:
    """Fold a journal file into a :class:`JournalState`.

    A torn final line (crash mid-write) is ignored; corruption anywhere
    else raises :class:`~repro.core.errors.ModelError` — a damaged
    middle means the log cannot be trusted.
    """
    lines = Path(path).read_text(encoding="utf-8").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    state = JournalState()
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn tail from a mid-write crash
            raise ModelError(
                f"corrupt journal line {index + 1} in {path}") from None
        kind = record.get("type")
        if kind == "header":
            if record.get("format") != _FORMAT:
                raise ModelError(
                    f"not an aio journal: {record.get('format')!r}")
            if record.get("version") != _VERSION:
                raise ModelError(
                    f"unsupported journal version "
                    f"{record.get('version')!r}")
        elif kind == "client":
            state.clients.append((record["client_id"], record["name"]))
        elif kind == "register":
            state.registrations.append(_RegisteredProfile(
                profile_id=record["profile_id"],
                client_id=record["client_id"],
                profile=_decode_profile(record["tintervals"],
                                        record.get("name", "")),
            ))
        elif kind == "unregister":
            state.unregistered.add(record["profile_id"])
        elif kind == "capture":
            key = (record["profile_id"], record["tinterval_id"])
            state.captures.setdefault(key, {})[record["ei_id"]] = \
                _decode_snapshot(record["snapshot"])
        elif kind == "complete":
            completion = CompletionRecord(
                profile_id=record["profile_id"],
                tinterval_id=record["tinterval_id"],
                completed_at=record["completed_at"],
                snapshots=tuple(_decode_snapshot(s)
                                for s in record["snapshots"]),
            )
            key = (completion.profile_id, completion.tinterval_id)
            state.completions[key] = completion
        elif kind == "tick":
            state.last_tick = record["chronon"]
        else:
            raise ModelError(
                f"unknown journal record type {kind!r} at line "
                f"{index + 1} in {path}")
    return state
