"""The monitoring proxy runtime: pull from servers, push to clients.

Where :mod:`repro.simulation.proxy` is the *measurement* harness (GC of a
fixed t-interval stream), this module is the *system* the paper describes
in Section 3: clients register profiles at the proxy (possibly while it is
running), the proxy probes origin servers under its budget using an online
policy, and every completed t-interval is pushed to its client as a
:class:`~repro.runtime.clients.Notification` carrying the captured
snapshots.

The scheduling core (candidate construction, scoring, preemption, doom
visibility) is shared with the simulator through
:mod:`repro.online.base`, so measured completeness and delivered
notifications can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import BudgetVector
from repro.core.errors import ModelError
from repro.core.profile import Profile
from repro.core.schedule import Schedule
from repro.core.timeline import Chronon, Epoch
from repro.online.base import (
    EI_LEVEL,
    Candidate,
    Policy,
    TIntervalState,
    filter_blocked,
    select_probes,
)
from repro.runtime.clients import Client, Notification
from repro.runtime.server import PROBE_OK, OriginServer, ProbeOutcome, \
    Snapshot
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.engine import execute_probes

__all__ = ["MonitoringProxy", "ProxyStats"]


class _RuntimeState(TIntervalState):
    """t-interval state that also collects the captured snapshots."""

    __slots__ = ("snapshots", "registration", "doom_counted")

    def __init__(self, eta, profile_rank: int,
                 registration: "_Registration") -> None:
        super().__init__(eta, profile_rank)
        self.snapshots: list[Snapshot | None] = [None] * len(eta)
        self.registration = registration
        self.doom_counted = False


@dataclass(frozen=True, slots=True)
class ProxyStats:
    """Aggregate accounting of a proxy run so far.

    Invariant (once the run has flushed):
    ``registered == completed + expired + dropped``.

    ``probes_used`` counts *successful* probes (snapshots obtained);
    ``probes_failed`` counts non-ok requests (drops, timeouts, outages,
    throttles — including failed retries); ``hedges`` counts redundant
    hedge requests whose duplicate answer was discarded (only the async
    proxy issues hedges — always 0 for the synchronous proxy). Budget
    consumed so far is their sum, exposed as :attr:`requests_sent`.
    """

    registered: int
    completed: int
    expired: int
    dropped: int
    pending: int
    probes_used: int
    probes_failed: int = 0
    retries: int = 0
    resources_quarantined: int = 0
    hedges: int = 0

    @property
    def completeness(self) -> float:
        """Completed / (completed + expired); 1.0 while nothing resolved."""
        resolved = self.completed + self.expired
        if resolved == 0:
            return 1.0
        return self.completed / resolved

    @property
    def requests_sent(self) -> int:
        """Total pull requests issued (the budget actually consumed)."""
        return self.probes_used + self.probes_failed + self.hedges


class _Registration:
    """One registered profile: owner, identity, live flag."""

    __slots__ = ("profile_id", "client", "profile", "active")

    def __init__(self, profile_id: int, client: Client,
                 profile: Profile) -> None:
        self.profile_id = profile_id
        self.client = client
        self.profile = profile
        self.active = True


class MonitoringProxy:
    """A running proxy bound to one origin server.

    Parameters
    ----------
    server:
        The origin server to probe.
    epoch:
        Monitoring horizon; :meth:`step` advances one chronon at a time.
    budget:
        Per-chronon probing budget.
    policy:
        Online policy ranking candidate EIs.
    preemptive:
        Preemption mode (see the paper's §4.2.1).
    retry:
        In-chronon retry allowance for failed probes (spends leftover
        budget); ``None`` disables retries.
    breaker:
        Circuit breaker quarantining persistently failing resources so
        the policy stops burning budget on them; ``None`` disables.

    Failed probes still consume the chronon's budget — ``C_j`` bounds
    requests, not successes. With a reliable server and no breaker the
    behaviour (schedule, notifications, stats) is identical to the
    pre-fault-model proxy.
    """

    def __init__(self, server: OriginServer, epoch: Epoch,
                 budget: BudgetVector, policy: Policy,
                 preemptive: bool = True,
                 retry: RetryConfig | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        self.server = server
        self.epoch = epoch
        self.budget = budget
        self.policy = policy
        self.preemptive = preemptive
        self.retry = retry
        self.breaker = breaker
        self._probes_failed = 0
        self._retries = 0
        self._hedges = 0

        self._clients: dict[int, Client] = {}
        self._registrations: dict[int, _Registration] = {}
        self._next_profile_id = 0
        self._clock: Chronon = 0

        self._pending: list[_RuntimeState] = []
        self._arrivals: dict[Chronon, list[_RuntimeState]] = {}
        self._schedule = Schedule()
        self._completed = 0
        self._expired = 0
        self._dropped = 0
        self._registered_tintervals = 0

    # ------------------------------------------------------------------
    # Registration API
    # ------------------------------------------------------------------

    def register_client(self, name: str = "", callback=None) -> Client:
        """Create and register a new client."""
        client = Client(len(self._clients), name=name, callback=callback)
        self._clients[client.client_id] = client
        return client

    def register_profile(self, client: Client, profile: Profile) -> int:
        """Register a profile for a client; returns the profile id.

        May be called before or during the run; t-intervals whose windows
        are already partially past still participate with whatever can be
        captured (fully past ones expire immediately).

        Raises
        ------
        ModelError
            For unknown clients or empty profiles.
        """
        if client.client_id not in self._clients:
            raise ModelError(f"unknown client {client.client_id}")
        if len(profile) == 0:
            raise ModelError("cannot register an empty profile")
        profile_id = self._next_profile_id
        self._next_profile_id += 1
        attached = profile.attached(profile_id)
        registration = _Registration(profile_id, client, attached)
        self._registrations[profile_id] = registration

        rank = attached.rank
        for eta in attached:
            state = _RuntimeState(eta, rank, registration)
            self._registered_tintervals += 1
            arrival = max(eta.earliest_start, self._clock + 1)
            if arrival > self.epoch.last:
                arrival = self.epoch.last
            self._arrivals.setdefault(arrival, []).append(state)
        return profile_id

    def unregister_profile(self, profile_id: int) -> None:
        """Deactivate a profile: its pending t-intervals are dropped.

        Already-delivered notifications stay delivered; the dropped
        t-intervals count as neither completed nor expired.

        Raises
        ------
        ModelError
            For unknown profile ids.
        """
        registration = self._registrations.get(profile_id)
        if registration is None:
            raise ModelError(f"unknown profile id {profile_id}")
        registration.active = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def clock(self) -> Chronon:
        """Last processed chronon (0 before the first step)."""
        return self._clock

    @property
    def schedule(self) -> Schedule:
        """The probe schedule executed so far."""
        return self._schedule

    def step(self) -> Chronon:
        """Process the next chronon; returns it.

        Raises
        ------
        ModelError
            When the epoch is exhausted.
        """
        chronon, budget_now, candidates, decisions = self._begin_step()
        if decisions:
            round_ = execute_probes(decisions, chronon, budget_now,
                                    self._prober, retry=self.retry,
                                    breaker=self.breaker)
            self._finish_step(chronon, candidates, decisions, round_)
        return chronon

    def _begin_step(self) -> tuple[Chronon, int, list, list]:
        """Advance the clock and plan the chronon's probes.

        The synchronous :meth:`step` and the asyncio proxy share this
        phase (and :meth:`_finish_step`) verbatim — only the probe
        *execution* between them differs — which is what makes the two
        proxies capture-identical on fault-free schedules by
        construction. Returns ``(chronon, budget, candidates,
        decisions)``; ``decisions`` is empty when there is nothing to
        probe.

        Raises
        ------
        ModelError
            When the epoch is exhausted.
        """
        if self._clock >= self.epoch.last:
            raise ModelError(f"epoch exhausted at {self._clock}")
        chronon = self._clock + 1
        self._clock = chronon
        self.server.advance_to(chronon)

        self._pending.extend(self._arrivals.pop(chronon, ()))

        policy_sees_doom = self.policy.level != EI_LEVEL
        still_pending: list[_RuntimeState] = []
        for state in self._pending:
            if not state.registration.active:
                # A doomed carcass was already counted as expired when
                # its deadline passed; unregistering it later must not
                # count it a second time as dropped.
                if not state.doom_counted:
                    self._dropped += 1
                continue
            if state.is_complete:
                continue  # already notified at capture time
            if state.is_expired(chronon):
                if not state.doom_counted:
                    state.doom_counted = True
                    self._expired += 1
                # Carcass handling matches the simulator: EI-level
                # policies keep seeing the open EIs of a doomed
                # t-interval (they cannot tell it is doomed).
                if any(not ei.expired_at(chronon)
                       for ei in state.uncaptured_eis()):
                    still_pending.append(state)
                continue
            still_pending.append(state)
        self._pending = still_pending

        budget_now = self.budget.at(chronon)
        if budget_now <= 0 or not self._pending:
            return chronon, budget_now, [], []

        candidates = [
            Candidate(state, ei)
            for state in self._pending
            if (not policy_sees_doom) or not state.is_expired(chronon)
            for ei in state.probeable_eis(chronon)
        ]
        candidates = filter_blocked(candidates, self.breaker, chronon)
        if not candidates:
            return chronon, budget_now, [], []
        self.policy.observe_candidates(candidates, chronon)
        decisions = select_probes(self.policy, candidates, chronon,
                                  budget_now, self.preemptive)
        return chronon, budget_now, list(candidates), decisions

    def _finish_step(self, chronon: Chronon, candidates, decisions,
                     round_) -> None:
        """Account one executed probe round and deliver its captures.

        ``round_`` is any :class:`~repro.faults.engine.ProbeRound`-shaped
        accounting object (the async executor returns a subclass that
        also counts hedges).
        """
        self._probes_failed += round_.failures
        self._retries += round_.retries
        self._hedges += getattr(round_, "hedges", 0)
        snapshots = {
            resource_id: outcome.snapshot
            for resource_id, outcome in round_.outcomes.items()
        }
        for decision in decisions:
            # The selection is an investment whether or not the request
            # came back: the t-interval is committed either way.
            decision.selected.state.committed = True
            if decision.resource_id in snapshots:
                self._schedule.add_probe(decision.resource_id, chronon)

        for candidate in candidates:
            ei = candidate.ei
            state = candidate.state
            if (ei.resource_id in snapshots and ei.active_at(chronon)
                    and not state.captured[ei.ei_id]):
                assert isinstance(state, _RuntimeState)
                self._capture(state, ei, snapshots[ei.resource_id])
                if state.is_complete and not state.is_expired(chronon):
                    self._notify(state, chronon)

        self._pending = [state for state in self._pending
                         if not state.is_complete]

    def run(self, until: Chronon | None = None) -> ProxyStats:
        """Run to ``until`` (default: end of epoch) and return stats."""
        target = self.epoch.last if until is None else until
        while self._clock < target:
            self.step()
        if self._clock >= self.epoch.last:
            self._flush()
        return self.stats()

    def _flush(self) -> None:
        """Resolve everything left at the end of the epoch: unresolved
        t-intervals expired (or were dropped by unregistration)."""
        for state in self._pending:
            if state.doom_counted or state.is_complete:
                continue
            if not state.registration.active:
                self._dropped += 1
            else:
                self._expired += 1
        for states in self._arrivals.values():
            for state in states:
                if state.registration.active:
                    self._expired += 1
                else:
                    self._dropped += 1
        self._arrivals.clear()
        self._pending = []

    def _prober(self, resource_id: int, attempt: int) -> ProbeOutcome:
        """One pull request against the server, as a probe outcome.

        Servers exposing :meth:`try_probe` (the fault-aware surface) are
        used directly; bare ``probe``-only servers (e.g. custom fleets)
        are treated as always reliable.
        """
        try_probe = getattr(self.server, "try_probe", None)
        if try_probe is not None:
            return try_probe(resource_id, attempt=attempt)
        return ProbeOutcome(
            resource_id=resource_id, chronon=self._clock, status=PROBE_OK,
            snapshot=self.server.probe(resource_id), attempt=attempt)

    def _capture(self, state: _RuntimeState, ei,
                 snapshot: Snapshot) -> None:
        """Record one EI capture (the async proxy journals here)."""
        state.mark_captured(ei.ei_id)
        state.committed = True
        state.snapshots[ei.ei_id] = snapshot

    def _notify(self, state: _RuntimeState, chronon: Chronon) -> None:
        self._completed += 1
        registration = state.registration
        notification = Notification(
            client_id=registration.client.client_id,
            profile_name=registration.profile.name,
            profile_id=registration.profile_id,
            tinterval_id=state.eta.tinterval_id,
            completed_at=chronon,
            snapshots=tuple(s for s in state.snapshots
                            if s is not None),
        )
        self._publish(notification, state)

    def _publish(self, notification: Notification,
                 state: _RuntimeState) -> None:
        """Deliver one completed t-interval (async proxy journals here)."""
        state.registration.client.deliver(notification)

    def stats(self) -> ProxyStats:
        """Current accounting snapshot."""
        waiting = sum(
            sum(1 for state in states if state.registration.active)
            for states in self._arrivals.values())
        pending = waiting + sum(
            1 for state in self._pending
            if state.registration.active
            and not state.is_complete
            and not state.is_expired(self._clock))
        quarantined = (self.breaker.quarantined_count
                       if self.breaker is not None else 0)
        return ProxyStats(
            registered=self._registered_tintervals,
            completed=self._completed,
            expired=self._expired,
            dropped=self._dropped,
            pending=pending,
            probes_used=len(self._schedule),
            probes_failed=self._probes_failed,
            retries=self._retries,
            resources_quarantined=quarantined,
            hedges=self._hedges,
        )
