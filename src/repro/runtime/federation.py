"""Server federation and the cross-shard scheduling control plane.

Two layers live here:

* :class:`ServerFleet` — the paper's *data-source* federation: many
  origin servers, each managing its own resources (different markets,
  different feed providers), behind the single ``advance_to``/``probe``
  surface :class:`~repro.runtime.proxy.MonitoringProxy` expects.
* :class:`ShardCoordinator` — the *proxy-side* federation control
  plane: consistent-hash assignment of resources to K proxy shards,
  per-shard budget ledgers with deterministic work-stealing, and the
  per-chronon merge of per-shard candidate proposals that keeps
  cross-shard t-intervals scheduled exactly as a monolith would
  (``docs/ALGORITHMS.md`` §15). The data plane — per-shard slices of
  the columnar candidate index — lives in
  :mod:`repro.simulation.shard`.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.timeline import Chronon
from repro.runtime.server import OriginServer, ProbeOutcome, Snapshot
from repro.runtime.sharding import (
    BudgetLedger,
    ConsistentHashRing,
    ShardLoad,
)
from repro.traces.events import UpdateEvent

__all__ = ["ServerFleet", "ShardCoordinator"]


class ServerFleet:
    """Routes resource probes to the owning origin server.

    Parameters
    ----------
    assignments:
        Mapping ``server_name -> (server, resource_ids)``. Each resource
        may belong to exactly one server.

    Raises
    ------
    ModelError
        If a resource is assigned to more than one server.
    """

    def __init__(self, assignments: dict[str, tuple[OriginServer,
                                                    list[int]]]) -> None:
        self._servers: dict[str, OriginServer] = {}
        self._owner: dict[int, str] = {}
        self._routed: dict[str, int] = {}
        self._answered: dict[str, int] = {}
        for name, (server, resource_ids) in assignments.items():
            self._servers[name] = server
            self._routed[name] = 0
            self._answered[name] = 0
            for resource_id in resource_ids:
                owner = self._owner.get(resource_id)
                if owner == name:
                    raise ModelError(
                        f"resource {resource_id} listed twice for "
                        f"server {name!r}")
                if owner is not None:
                    raise ModelError(
                        f"resource {resource_id} assigned to both "
                        f"{owner!r} and {name!r}")
                self._owner[resource_id] = name
        # Membership is fixed at construction, so the sorted name order
        # every advance/report walks is computed exactly once.
        self._names_sorted: tuple[str, ...] = tuple(sorted(self._servers))

    @property
    def clock(self) -> Chronon:
        """The fleet clock (min over members; 0 when empty)."""
        if not self._servers:
            return 0
        return min(server.clock for server in self._servers.values())

    def server_names(self) -> list[str]:
        """Registered server names, sorted."""
        return list(self._names_sorted)

    def server(self, name: str) -> OriginServer:
        """Access one member server.

        Raises
        ------
        ModelError
            For unknown names.
        """
        try:
            return self._servers[name]
        except KeyError:
            raise ModelError(f"unknown server {name!r}") from None

    def owner_of(self, resource_id: int) -> str:
        """The server owning a resource.

        Raises
        ------
        ModelError
            For unassigned resources.
        """
        try:
            return self._owner[resource_id]
        except KeyError:
            raise ModelError(
                f"resource {resource_id} is not assigned to any server"
            ) from None

    # ------------------------------------------------------------------
    # OriginServer-compatible surface
    # ------------------------------------------------------------------

    def advance_to(self, chronon: Chronon) -> list[UpdateEvent]:
        """Advance every member server; returns all applied events.

        Per-server applied lists are already in event order, so the
        global list is a k-way :func:`heapq.merge` — no re-sort of the
        full event volume. Ties keep member-name order, matching what a
        stable sort of the concatenation produced.
        """
        return list(heapq.merge(
            *[self._servers[name].advance_to(chronon)
              for name in self._names_sorted]))

    def probe(self, resource_id: int) -> Snapshot:
        """Probe the owning server for a resource's state."""
        owner = self.owner_of(resource_id)
        self._routed[owner] += 1
        snapshot = self._servers[owner].probe(resource_id)
        self._answered[owner] += 1
        return snapshot

    def try_probe(self, resource_id: int,
                  attempt: int = 0) -> ProbeOutcome:
        """Probe the owning server through its fault-aware surface.

        Members wrapped in :class:`~repro.faults.UnreliableServer` keep
        their fault behaviour; reliable members always answer.
        """
        owner = self.owner_of(resource_id)
        self._routed[owner] += 1
        outcome = self._servers[owner].try_probe(resource_id,
                                                 attempt=attempt)
        if outcome.ok:
            self._answered[owner] += 1
        return outcome

    def probes_routed(self) -> dict[str, int]:
        """Probes routed to each member server so far (per-provider
        load — the bandwidth the paper's budget models), whether or not
        the server answered."""
        return dict(self._routed)

    def probes_answered(self) -> dict[str, int]:
        """Probes each member server actually answered (successful
        snapshots); routed minus answered is the member's failed or
        short-circuited load."""
        return dict(self._answered)

    def probe_counts(self) -> dict[str, int]:
        """Alias for :meth:`probes_routed` (the historical name)."""
        return self.probes_routed()


class ShardCoordinator:
    """Control plane of a K-shard proxy federation.

    Owns the :class:`~repro.runtime.sharding.ConsistentHashRing` that
    assigns resources to shards, the per-shard
    :class:`~repro.runtime.sharding.BudgetLedger`, and the per-chronon
    *merge* of per-shard candidate proposals. Each shard proposes its
    ``min(C_j, |owned pools|)`` best resource rank keys; the keys embed
    the full monolith tie-break order (and end in the resource id, so
    they are globally unique), which makes the merged global top
    ``C_j`` *exactly* the monolith engine's selection — gained
    completeness degradation is zero by construction, and the ledger's
    steal transfers record how budget flowed between shards to realize
    it.

    The heavy per-shard work (candidate-index slices, key computation)
    lives in :func:`repro.simulation.shard.federated_run`, which drives
    this object; :meth:`run` is a convenience wrapper around it.
    """

    def __init__(self, shards: int, *, vnodes: int = 64) -> None:
        self.shards = shards
        self.ring = ConsistentHashRing(shards, vnodes)
        self.ledger = BudgetLedger(shards)
        self.probes_routed = [0] * shards

    def assign(self, num_resources: int) -> np.ndarray:
        """Owner shard of every resource id in ``[0, num_resources)``."""
        return self.ring.assign(num_resources)

    @staticmethod
    def merge_proposals(proposals: Sequence[tuple[np.ndarray, np.ndarray]],
                        budget: int,
                        exclude: np.ndarray | None = None,
                        ) -> np.ndarray:
        """The global top-``budget`` pools across per-shard proposals.

        ``proposals`` holds each shard's ``(keys, pool_ids)`` — its
        owned pools' packed rank keys, best first. Keys are globally
        unique (they end in the resource id), so one ascending merge is
        a total order and the first ``budget`` entries are exactly the
        monolith's ``nsmallest``. ``exclude`` drops pools already probed
        this chronon (the non-preemptive second phase). Returns the
        winning pool ids, best first.
        """
        if budget <= 0 or not proposals:
            return np.zeros(0, dtype=np.int64)
        keys = np.concatenate([keys for keys, _pools in proposals])
        pools = np.concatenate([pools for _keys, pools in proposals])
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        if exclude is not None and exclude.size:
            keep = ~np.isin(pools, exclude)
            keys = keys[keep]
            pools = pools[keep]
        order = np.argsort(keys)
        return pools[order[:min(budget, pools.size)]]

    def settle(self, budget: int,
               demand: list[int]) -> list[tuple[int, int, int]]:
        """Book one chronon's budget: nominal split, spend, stealing."""
        for shard, count in enumerate(demand):
            self.probes_routed[shard] += count
        return self.ledger.settle(budget, demand)

    def loads(self, resources: list[int] | None = None) -> list[ShardLoad]:
        """Per-shard load and budget accounting so far."""
        return self.ledger.loads(probes_routed=self.probes_routed,
                                 resources=resources)

    def run(self, profiles, epoch, budget, policy, **kwargs):
        """Run a federated simulation through this coordinator.

        Convenience wrapper for
        :func:`repro.simulation.shard.federated_run`; see there for the
        full signature.
        """
        from repro.simulation.shard import federated_run
        return federated_run(profiles, epoch, budget, policy,
                             coordinator=self, **kwargs)
