"""Server federation: many origin servers behind one probing interface.

The paper's model has the proxy probing *multiple* servers, each managing
its own resources (different markets, different feed providers).
:class:`ServerFleet` routes probes to the owning server while presenting
the same ``advance_to``/``probe`` surface as a single
:class:`~repro.runtime.server.OriginServer`, so
:class:`~repro.runtime.proxy.MonitoringProxy` works with either.
"""

from __future__ import annotations

from repro.core.errors import ModelError
from repro.core.timeline import Chronon
from repro.runtime.server import OriginServer, ProbeOutcome, Snapshot
from repro.traces.events import UpdateEvent

__all__ = ["ServerFleet"]


class ServerFleet:
    """Routes resource probes to the owning origin server.

    Parameters
    ----------
    assignments:
        Mapping ``server_name -> (server, resource_ids)``. Each resource
        may belong to exactly one server.

    Raises
    ------
    ModelError
        If a resource is assigned to more than one server.
    """

    def __init__(self, assignments: dict[str, tuple[OriginServer,
                                                    list[int]]]) -> None:
        self._servers: dict[str, OriginServer] = {}
        self._owner: dict[int, str] = {}
        self._probe_counts: dict[str, int] = {}
        for name, (server, resource_ids) in assignments.items():
            self._servers[name] = server
            self._probe_counts[name] = 0
            for resource_id in resource_ids:
                owner = self._owner.get(resource_id)
                if owner == name:
                    raise ModelError(
                        f"resource {resource_id} listed twice for "
                        f"server {name!r}")
                if owner is not None:
                    raise ModelError(
                        f"resource {resource_id} assigned to both "
                        f"{owner!r} and {name!r}")
                self._owner[resource_id] = name

    @property
    def clock(self) -> Chronon:
        """The fleet clock (min over members; 0 when empty)."""
        if not self._servers:
            return 0
        return min(server.clock for server in self._servers.values())

    def server_names(self) -> list[str]:
        """Registered server names, sorted."""
        return sorted(self._servers)

    def server(self, name: str) -> OriginServer:
        """Access one member server.

        Raises
        ------
        ModelError
            For unknown names.
        """
        try:
            return self._servers[name]
        except KeyError:
            raise ModelError(f"unknown server {name!r}") from None

    def owner_of(self, resource_id: int) -> str:
        """The server owning a resource.

        Raises
        ------
        ModelError
            For unassigned resources.
        """
        try:
            return self._owner[resource_id]
        except KeyError:
            raise ModelError(
                f"resource {resource_id} is not assigned to any server"
            ) from None

    # ------------------------------------------------------------------
    # OriginServer-compatible surface
    # ------------------------------------------------------------------

    def advance_to(self, chronon: Chronon) -> list[UpdateEvent]:
        """Advance every member server; returns all applied events."""
        applied: list[UpdateEvent] = []
        for name in sorted(self._servers):
            applied.extend(self._servers[name].advance_to(chronon))
        applied.sort()
        return applied

    def probe(self, resource_id: int) -> Snapshot:
        """Probe the owning server for a resource's state."""
        owner = self.owner_of(resource_id)
        self._probe_counts[owner] += 1
        return self._servers[owner].probe(resource_id)

    def try_probe(self, resource_id: int,
                  attempt: int = 0) -> ProbeOutcome:
        """Probe the owning server through its fault-aware surface.

        Members wrapped in :class:`~repro.faults.UnreliableServer` keep
        their fault behaviour; reliable members always answer.
        """
        owner = self.owner_of(resource_id)
        self._probe_counts[owner] += 1
        return self._servers[owner].try_probe(resource_id, attempt=attempt)

    def probe_counts(self) -> dict[str, int]:
        """Probes routed to each member server so far (per-provider
        load — the bandwidth the paper's budget models)."""
        return dict(self._probe_counts)
