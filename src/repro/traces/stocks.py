"""Synthetic multi-market stock tick traces (the Figure-1 scenario).

The paper's running example is a financial analyst watching the *same*
security on two (or more) markets, looking for arbitrage opportunities.
This synthesizer produces correlated price-update streams: each market
tracks a shared latent price process (geometric random walk) with
market-local noise and market-local update times — so prices on different
markets occasionally diverge, which is exactly when overlapping execution
intervals matter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.resource import Resource, ResourceCatalog
from repro.core.timeline import Epoch
from repro.traces.events import UpdateEvent, UpdateTrace

__all__ = ["MarketQuote", "StockMarketSynthesizer"]


@dataclass(frozen=True, slots=True)
class MarketQuote:
    """A decoded price update (parsed from an event payload)."""

    market: int
    chronon: int
    price: float


class StockMarketSynthesizer:
    """Correlated price updates of one security on several markets.

    Resource ``i`` is "the security on market ``i``". All markets follow a
    shared latent random-walk price with independent observation noise and
    independent Poisson update times.

    Parameters
    ----------
    num_markets:
        Number of market resources (>= 1).
    epoch:
        Epoch of the simulation.
    updates_per_market:
        Expected number of price updates per market over the epoch.
    base_price:
        Initial latent price.
    volatility:
        Per-chronon standard deviation of the latent log-price walk.
    divergence:
        Standard deviation of market-local (arbitrage-creating) noise.
    seed:
        RNG seed.
    """

    def __init__(self, num_markets: int, epoch: Epoch,
                 updates_per_market: float = 40.0,
                 base_price: float = 100.0,
                 volatility: float = 0.005,
                 divergence: float = 0.004,
                 seed: int | None = None) -> None:
        if num_markets < 1:
            raise ValueError(f"num_markets must be >= 1, got {num_markets}")
        if updates_per_market < 0:
            raise ValueError(
                f"updates_per_market must be >= 0, got {updates_per_market}"
            )
        self._num_markets = num_markets
        self._epoch = epoch
        self._updates_per_market = updates_per_market
        self._base_price = base_price
        self._volatility = volatility
        self._divergence = divergence
        self._rng = np.random.default_rng(seed)

    def catalog(self) -> ResourceCatalog:
        """One resource per market."""
        catalog = ResourceCatalog()
        for market in range(self._num_markets):
            catalog.add(Resource.create(
                market, name=f"stock/market-{market}",
                metadata={"market": str(market)},
            ))
        return catalog

    def generate(self) -> UpdateTrace:
        """Synthesize the correlated multi-market tick trace."""
        horizon = self._epoch.length
        # Shared latent log-price path over every chronon.
        steps = self._rng.normal(0.0, self._volatility, size=horizon)
        latent = self._base_price * np.exp(np.cumsum(steps))
        events: list[UpdateEvent] = []
        for market in range(self._num_markets):
            chronons = self._update_chronons()
            for chronon in chronons:
                noise = self._rng.normal(0.0, self._divergence)
                price = float(latent[chronon - 1] * np.exp(noise))
                events.append(UpdateEvent(
                    chronon, market, payload=f"price={price:.4f}"))
        return UpdateTrace(events, self._epoch)

    def _update_chronons(self) -> list[int]:
        if self._updates_per_market <= 0:
            return []
        horizon = float(self._epoch.length)
        mean_gap = horizon / self._updates_per_market
        time = 0.0
        chronons: set[int] = set()
        while True:
            time += self._rng.exponential(mean_gap)
            if time > horizon:
                break
            chronons.add(max(1, int(np.ceil(time))))
        return sorted(chronons)

    @staticmethod
    def parse_quote(event: UpdateEvent) -> MarketQuote:
        """Decode a ``price=...`` payload back into a quote.

        Raises
        ------
        ValueError
            If the payload does not carry a price.
        """
        prefix = "price="
        if not event.payload.startswith(prefix):
            raise ValueError(f"not a price event: {event.payload!r}")
        return MarketQuote(market=event.resource_id, chronon=event.chronon,
                           price=float(event.payload[len(prefix):]))
