"""Update-event traces, update models, and trace synthesizers."""

from repro.traces.auctions import (
    BRAND_CATALOG,
    AuctionSpec,
    AuctionTraceSynthesizer,
)
from repro.traces.events import UpdateEvent, UpdateTrace
from repro.traces.feeds import FeedTraceSynthesizer
from repro.traces.models import (
    FPNUpdateModel,
    PeriodicUpdateModel,
    PoissonUpdateModel,
    UpdateModel,
)
from repro.traces.stocks import MarketQuote, StockMarketSynthesizer

__all__ = [
    "BRAND_CATALOG",
    "AuctionSpec",
    "AuctionTraceSynthesizer",
    "FPNUpdateModel",
    "FeedTraceSynthesizer",
    "MarketQuote",
    "PeriodicUpdateModel",
    "PoissonUpdateModel",
    "StockMarketSynthesizer",
    "UpdateEvent",
    "UpdateTrace",
    "UpdateModel",
]
