"""Synthetic Web-feed (RSS/Atom-like) update traces.

The paper motivates volatile pull sources with Web feeds, citing a study
[10] finding that ~55% of feeds update hourly and ~80% keep less than 10KB
of items online (so items are overwritten quickly — exactly the overwrite
delivery restriction).

This synthesizer produces a mixed population of feeds:

* a configurable share of **hourly** feeds (periodic with jitter);
* the remainder updating at Poisson rates drawn from a long-tailed
  distribution (some very chatty news feeds, many quiet ones);
* a Zipf-distributed popularity attribute stored in the catalog metadata,
  mirroring the alpha=1.37 popularity skew the paper cites for feeds.
"""

from __future__ import annotations

import numpy as np

from repro.core.resource import Resource, ResourceCatalog
from repro.core.timeline import Epoch
from repro.traces.events import UpdateEvent, UpdateTrace

__all__ = ["FeedTraceSynthesizer"]


class FeedTraceSynthesizer:
    """Generates update traces resembling a population of Web feeds.

    Parameters
    ----------
    num_feeds:
        Number of feed resources.
    epoch:
        Epoch the trace spans.
    chronons_per_hour:
        How many chronons one "hour" maps to (drives hourly feeds).
    hourly_share:
        Fraction of feeds updating ~hourly (default 0.55, per [10]).
    popularity_exponent:
        Zipf exponent for the popularity metadata (default 1.37, per [10]).
    seed:
        RNG seed.
    """

    def __init__(self, num_feeds: int, epoch: Epoch,
                 chronons_per_hour: int = 10,
                 hourly_share: float = 0.55,
                 popularity_exponent: float = 1.37,
                 seed: int | None = None) -> None:
        if num_feeds < 0:
            raise ValueError(f"num_feeds must be >= 0, got {num_feeds}")
        if chronons_per_hour < 1:
            raise ValueError(
                f"chronons_per_hour must be >= 1, got {chronons_per_hour}"
            )
        if not 0 <= hourly_share <= 1:
            raise ValueError(
                f"hourly_share must be in [0, 1], got {hourly_share}"
            )
        self._num_feeds = num_feeds
        self._epoch = epoch
        self._chronons_per_hour = chronons_per_hour
        self._hourly_share = hourly_share
        self._popularity_exponent = popularity_exponent
        self._rng = np.random.default_rng(seed)

    def catalog(self) -> ResourceCatalog:
        """Catalog with per-feed kind and popularity metadata."""
        catalog = ResourceCatalog()
        kinds = self._feed_kinds()
        for feed_id in range(self._num_feeds):
            catalog.add(Resource.create(
                feed_id,
                name=f"feed/{kinds[feed_id]}-{feed_id}",
                metadata={"kind": kinds[feed_id],
                          "popularity_rank": str(feed_id + 1)},
            ))
        return catalog

    def _feed_kinds(self) -> list[str]:
        hourly_count = int(round(self._num_feeds * self._hourly_share))
        return (["hourly"] * hourly_count
                + ["poisson"] * (self._num_feeds - hourly_count))

    def generate(self) -> UpdateTrace:
        """Synthesize the full feed update trace."""
        events: list[UpdateEvent] = []
        kinds = self._feed_kinds()
        for feed_id in range(self._num_feeds):
            if kinds[feed_id] == "hourly":
                events.extend(self._hourly_events(feed_id))
            else:
                events.extend(self._poisson_events(feed_id))
        return UpdateTrace(events, self._epoch)

    def _hourly_events(self, feed_id: int) -> list[UpdateEvent]:
        period = self._chronons_per_hour
        phase = int(self._rng.integers(0, period))
        events = []
        item = 0
        for base in range(1 + phase, self._epoch.length + 1, period):
            # +/- 20% jitter around the hourly tick.
            jitter = int(self._rng.integers(-period // 5, period // 5 + 1))
            chronon = min(self._epoch.length, max(1, base + jitter))
            item += 1
            events.append(UpdateEvent(chronon, feed_id,
                                      payload=f"item-{item}"))
        return _dedupe_chronons(events)

    def _poisson_events(self, feed_id: int) -> list[UpdateEvent]:
        # Long-tailed per-feed rate: most feeds quiet, a few very chatty.
        expected = float(self._rng.pareto(1.5) + 0.5) * (
            self._epoch.length / (4 * self._chronons_per_hour))
        expected = min(expected, self._epoch.length / 2)
        count = int(self._rng.poisson(expected))
        chronons = sorted(set(
            int(c) for c in self._rng.integers(1, self._epoch.length + 1,
                                               size=count)
        ))
        return [UpdateEvent(chronon, feed_id, payload=f"item-{index + 1}")
                for index, chronon in enumerate(chronons)]


def _dedupe_chronons(events: list[UpdateEvent]) -> list[UpdateEvent]:
    """Keep the first event per chronon (chronons are indivisible)."""
    seen: set[int] = set()
    result = []
    for event in sorted(events):
        if event.chronon not in seen:
            seen.add(event.chronon)
            result.append(event)
    return result
