"""Update-event traces.

The experimental pipeline of the paper starts from a *trace* of update
events: each event says "resource ``r`` changed at chronon ``t``" (a bid was
posted, a feed item was published, a price moved). Delivery restrictions
(:mod:`repro.workloads.restrictions`) then turn event streams into execution
intervals.

The CSV format written/read here is deliberately trivial
(``resource_id,chronon[,payload]``) so that a real trace — e.g. the paper's
eBay bid feed — can be dropped in without code changes.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.errors import TraceFormatError
from repro.core.timeline import Chronon, Epoch

__all__ = ["UpdateEvent", "UpdateTrace"]


@dataclass(frozen=True, slots=True, order=True)
class UpdateEvent:
    """A single update to a resource.

    Ordering is ``(chronon, resource_id, payload)`` so traces sort into
    timeline order naturally.
    """

    chronon: Chronon
    resource_id: int
    payload: str = ""

    def __post_init__(self) -> None:
        if self.chronon < 1:
            raise ValueError(f"event chronon must be >= 1, got {self.chronon}")
        if self.resource_id < 0:
            raise ValueError(
                f"event resource_id must be >= 0, got {self.resource_id}"
            )


class UpdateTrace:
    """An immutable, per-resource-indexed stream of update events.

    Parameters
    ----------
    events:
        The update events; stored sorted by (chronon, resource).
    epoch:
        The epoch the trace spans. Events outside the epoch are rejected.
    """

    __slots__ = ("_events", "_by_resource", "epoch", "_arrays",
                 "_payloads", "_unique_chronons", "__weakref__")

    def __init__(self, events: Iterable[UpdateEvent], epoch: Epoch) -> None:
        self.epoch = epoch
        self._events: tuple[UpdateEvent, ...] | None = tuple(sorted(events))
        self._by_resource: dict[int, list[UpdateEvent]] | None = {}
        self._arrays: tuple[np.ndarray, np.ndarray] | None = None
        self._payloads: list[str] | None = None
        self._unique_chronons: dict[int, np.ndarray] = {}
        for event in self._events:
            if event.chronon not in epoch:
                raise TraceFormatError(
                    f"event at chronon {event.chronon} outside epoch "
                    f"[1, {epoch.length}]"
                )
            self._by_resource.setdefault(event.resource_id, []).append(event)

    @classmethod
    def from_columns(cls, chronons: np.ndarray, resource_ids: np.ndarray,
                     epoch: Epoch,
                     payloads: list[str] | None = None) -> "UpdateTrace":
        """Build a trace from columnar arrays (the fast-generation path).

        Validation happens vectorized and the columns are stored
        directly in timeline order; :class:`UpdateEvent` objects are
        materialized lazily, the first time something iterates the trace
        (the vectorized restriction/template consumers never do — they
        read the columns). The result is equal to
        ``UpdateTrace(events, epoch)`` over the same data.

        Raises
        ------
        TraceFormatError
            On mismatched column lengths or chronons/resources outside
            their valid ranges (also the corrupted-cache-entry guard).
        """
        chronons = np.asarray(chronons, dtype=np.int64)
        resource_ids = np.asarray(resource_ids, dtype=np.int64)
        if chronons.shape != resource_ids.shape or chronons.ndim != 1:
            raise TraceFormatError(
                f"mismatched trace columns: {chronons.shape} chronons vs "
                f"{resource_ids.shape} resource ids"
            )
        if payloads is not None and len(payloads) != chronons.size:
            raise TraceFormatError(
                f"mismatched trace columns: {len(payloads)} payloads vs "
                f"{chronons.size} events"
            )
        if chronons.size:
            if int(chronons.min()) < 1 or int(chronons.max()) > epoch.length:
                raise TraceFormatError(
                    f"event chronons outside epoch [1, {epoch.length}]"
                )
            if int(resource_ids.min()) < 0:
                raise TraceFormatError("negative resource id in trace")
        if payloads is None:
            order = np.lexsort((resource_ids, chronons))
            sorted_payloads = None
        else:
            payload_keys = np.asarray(payloads, dtype=np.str_)
            order = np.lexsort((payload_keys, resource_ids, chronons))
            sorted_payloads = [payloads[index] for index in order.tolist()]
        trace = cls.__new__(cls)
        trace.epoch = epoch
        trace._events = None
        trace._by_resource = None
        trace._arrays = (resource_ids[order], chronons[order])
        trace._payloads = sorted_payloads
        trace._unique_chronons = {}
        return trace

    def _materialize(self) -> tuple[UpdateEvent, ...]:
        """Build the event objects of a column-constructed trace."""
        if self._events is None:
            resource_ids, chronons = self._arrays
            if self._payloads is None:
                self._events = tuple(
                    UpdateEvent(chronon, resource_id)
                    for chronon, resource_id
                    in zip(chronons.tolist(), resource_ids.tolist()))
            else:
                self._events = tuple(
                    UpdateEvent(chronon, resource_id, payload)
                    for chronon, resource_id, payload
                    in zip(chronons.tolist(), resource_ids.tolist(),
                           self._payloads))
        if self._by_resource is None:
            by_resource: dict[int, list[UpdateEvent]] = {}
            for event in self._events:
                by_resource.setdefault(event.resource_id, []).append(event)
            self._by_resource = by_resource
        return self._events

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached columnar view: ``(resource_ids, chronons)`` in event order.

        The structure-of-arrays form that the vectorized restriction and
        template paths consume with ``np.searchsorted`` instead of
        iterating event objects.
        """
        if self._arrays is None:
            count = len(self._events)
            resource_ids = np.fromiter(
                (event.resource_id for event in self._events),
                dtype=np.int64, count=count)
            chronons = np.fromiter(
                (event.chronon for event in self._events),
                dtype=np.int64, count=count)
            self._arrays = (resource_ids, chronons)
        return self._arrays

    def unique_chronons(self, resource_id: int) -> np.ndarray:
        """Cached array of deduplicated, sorted update chronons.

        Vectorized counterpart of :meth:`update_chronons` (events are
        stored sorted, so first-seen order equals ascending order); the
        array is computed once per resource and shared by every profile
        that watches the resource.
        """
        cached = self._unique_chronons.get(resource_id)
        if cached is None:
            if self._by_resource is None:
                resource_ids, chronons = self._arrays
                mine = chronons[resource_ids == resource_id]
            else:
                events = self._by_resource.get(resource_id, ())
                mine = np.fromiter(
                    (event.chronon for event in events),
                    dtype=np.int64, count=len(events))
            # Events are stored chronon-sorted, so a keep-first mask
            # dedups without the sort inside np.unique.
            if mine.size:
                keep = np.empty(mine.size, dtype=bool)
                keep[0] = True
                np.not_equal(mine[1:], mine[:-1], out=keep[1:])
                cached = mine[keep]
            else:
                cached = mine
            self._unique_chronons[resource_id] = cached
        return cached

    def __len__(self) -> int:
        if self._events is None:
            return int(self._arrays[0].size)
        return len(self._events)

    def __iter__(self) -> Iterator[UpdateEvent]:
        return iter(self._materialize())

    @property
    def resource_ids(self) -> list[int]:
        """Resources that have at least one event, ascending."""
        if self._by_resource is None:
            return np.unique(self._arrays[0]).tolist()
        return sorted(self._by_resource)

    def events_for(self, resource_id: int) -> tuple[UpdateEvent, ...]:
        """All events of one resource in chronon order."""
        self._materialize()
        return tuple(self._by_resource.get(resource_id, ()))

    def update_chronons(self, resource_id: int) -> list[Chronon]:
        """Chronons (deduplicated, sorted) at which the resource updates."""
        if self._by_resource is None:
            return self.unique_chronons(resource_id).tolist()
        seen: set[Chronon] = set()
        result: list[Chronon] = []
        for event in self._by_resource.get(resource_id, ()):
            if event.chronon not in seen:
                seen.add(event.chronon)
                result.append(event.chronon)
        return result

    def count_for(self, resource_id: int) -> int:
        """Number of events on one resource."""
        if self._by_resource is None:
            return int(np.count_nonzero(self._arrays[0] == resource_id))
        return len(self._by_resource.get(resource_id, ()))

    def mean_intensity(self) -> float:
        """Average number of events per resource over the epoch.

        This is the empirical counterpart of the paper's ``lambda``
        parameter ("average updates intensity per resource").
        """
        if len(self) == 0:
            return 0.0
        return len(self) / len(self.resource_ids)

    def restricted_to(self, resource_ids: Iterable[int]) -> "UpdateTrace":
        """A sub-trace containing only the given resources."""
        wanted = set(resource_ids)
        return UpdateTrace(
            (event for event in self._materialize()
             if event.resource_id in wanted),
            self.epoch,
        )

    def merged_with(self, other: "UpdateTrace") -> "UpdateTrace":
        """Union of two traces over the longer of the two epochs."""
        epoch = Epoch(max(self.epoch.length, other.epoch.length))
        return UpdateTrace(
            list(self._materialize()) + list(other._materialize()), epoch)

    # ------------------------------------------------------------------
    # CSV round-trip (real-trace drop-in path)
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the trace as ``resource_id,chronon,payload`` rows."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["resource_id", "chronon", "payload"])
            for event in self._materialize():
                writer.writerow([event.resource_id, event.chronon,
                                 event.payload])

    @classmethod
    def from_csv(cls, path: str | Path,
                 epoch: Epoch | None = None) -> "UpdateTrace":
        """Load a trace from CSV; infers the epoch when not given.

        Raises
        ------
        TraceFormatError
            On malformed rows, non-integer fields, or events outside the
            provided epoch.
        """
        path = Path(path)
        events: list[UpdateEvent] = []
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise TraceFormatError(f"{path}: empty trace file")
            if header[:2] != ["resource_id", "chronon"]:
                raise TraceFormatError(
                    f"{path}: unexpected header {header!r}"
                )
            for line_number, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) < 2:
                    raise TraceFormatError(
                        f"{path}:{line_number}: expected at least 2 columns"
                    )
                try:
                    resource_id = int(row[0])
                    chronon = int(row[1])
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_number}: non-integer field ({exc})"
                    ) from None
                payload = row[2] if len(row) > 2 else ""
                try:
                    events.append(UpdateEvent(chronon, resource_id, payload))
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_number}: {exc}"
                    ) from None
        if epoch is None:
            horizon = max((event.chronon for event in events), default=1)
            epoch = Epoch(horizon)
        return cls(events, epoch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UpdateTrace(events={len(self)}, "
                f"resources={len(self.resource_ids)}, K={self.epoch.length})")
