"""Update-event traces.

The experimental pipeline of the paper starts from a *trace* of update
events: each event says "resource ``r`` changed at chronon ``t``" (a bid was
posted, a feed item was published, a price moved). Delivery restrictions
(:mod:`repro.workloads.restrictions`) then turn event streams into execution
intervals.

The CSV format written/read here is deliberately trivial
(``resource_id,chronon[,payload]``) so that a real trace — e.g. the paper's
eBay bid feed — can be dropped in without code changes.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.errors import TraceFormatError
from repro.core.timeline import Chronon, Epoch

__all__ = ["UpdateEvent", "UpdateTrace"]


@dataclass(frozen=True, slots=True, order=True)
class UpdateEvent:
    """A single update to a resource.

    Ordering is ``(chronon, resource_id, payload)`` so traces sort into
    timeline order naturally.
    """

    chronon: Chronon
    resource_id: int
    payload: str = ""

    def __post_init__(self) -> None:
        if self.chronon < 1:
            raise ValueError(f"event chronon must be >= 1, got {self.chronon}")
        if self.resource_id < 0:
            raise ValueError(
                f"event resource_id must be >= 0, got {self.resource_id}"
            )


class UpdateTrace:
    """An immutable, per-resource-indexed stream of update events.

    Parameters
    ----------
    events:
        The update events; stored sorted by (chronon, resource).
    epoch:
        The epoch the trace spans. Events outside the epoch are rejected.
    """

    __slots__ = ("_events", "_by_resource", "epoch")

    def __init__(self, events: Iterable[UpdateEvent], epoch: Epoch) -> None:
        self.epoch = epoch
        self._events: tuple[UpdateEvent, ...] = tuple(sorted(events))
        self._by_resource: dict[int, list[UpdateEvent]] = {}
        for event in self._events:
            if event.chronon not in epoch:
                raise TraceFormatError(
                    f"event at chronon {event.chronon} outside epoch "
                    f"[1, {epoch.length}]"
                )
            self._by_resource.setdefault(event.resource_id, []).append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[UpdateEvent]:
        return iter(self._events)

    @property
    def resource_ids(self) -> list[int]:
        """Resources that have at least one event, ascending."""
        return sorted(self._by_resource)

    def events_for(self, resource_id: int) -> tuple[UpdateEvent, ...]:
        """All events of one resource in chronon order."""
        return tuple(self._by_resource.get(resource_id, ()))

    def update_chronons(self, resource_id: int) -> list[Chronon]:
        """Chronons (deduplicated, sorted) at which the resource updates."""
        seen: set[Chronon] = set()
        result: list[Chronon] = []
        for event in self._by_resource.get(resource_id, ()):
            if event.chronon not in seen:
                seen.add(event.chronon)
                result.append(event.chronon)
        return result

    def count_for(self, resource_id: int) -> int:
        """Number of events on one resource."""
        return len(self._by_resource.get(resource_id, ()))

    def mean_intensity(self) -> float:
        """Average number of events per resource over the epoch.

        This is the empirical counterpart of the paper's ``lambda``
        parameter ("average updates intensity per resource").
        """
        if not self._by_resource:
            return 0.0
        return len(self._events) / len(self._by_resource)

    def restricted_to(self, resource_ids: Iterable[int]) -> "UpdateTrace":
        """A sub-trace containing only the given resources."""
        wanted = set(resource_ids)
        return UpdateTrace(
            (event for event in self._events if event.resource_id in wanted),
            self.epoch,
        )

    def merged_with(self, other: "UpdateTrace") -> "UpdateTrace":
        """Union of two traces over the longer of the two epochs."""
        epoch = Epoch(max(self.epoch.length, other.epoch.length))
        return UpdateTrace(list(self._events) + list(other._events), epoch)

    # ------------------------------------------------------------------
    # CSV round-trip (real-trace drop-in path)
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the trace as ``resource_id,chronon,payload`` rows."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["resource_id", "chronon", "payload"])
            for event in self._events:
                writer.writerow([event.resource_id, event.chronon,
                                 event.payload])

    @classmethod
    def from_csv(cls, path: str | Path,
                 epoch: Epoch | None = None) -> "UpdateTrace":
        """Load a trace from CSV; infers the epoch when not given.

        Raises
        ------
        TraceFormatError
            On malformed rows, non-integer fields, or events outside the
            provided epoch.
        """
        path = Path(path)
        events: list[UpdateEvent] = []
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise TraceFormatError(f"{path}: empty trace file")
            if header[:2] != ["resource_id", "chronon"]:
                raise TraceFormatError(
                    f"{path}: unexpected header {header!r}"
                )
            for line_number, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) < 2:
                    raise TraceFormatError(
                        f"{path}:{line_number}: expected at least 2 columns"
                    )
                try:
                    resource_id = int(row[0])
                    chronon = int(row[1])
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_number}: non-integer field ({exc})"
                    ) from None
                payload = row[2] if len(row) > 2 else ""
                try:
                    events.append(UpdateEvent(chronon, resource_id, payload))
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_number}: {exc}"
                    ) from None
        if epoch is None:
            horizon = max((event.chronon for event in events), default=1)
            epoch = Epoch(horizon)
        return cls(events, epoch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UpdateTrace(events={len(self._events)}, "
                f"resources={len(self._by_resource)}, K={self.epoch.length})")
