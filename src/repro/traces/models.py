"""Update models: how the proxy anticipates resource updates.

Section 5.1 of the paper uses two models:

* **FPN(1)** — "perfect knowledge of the real update trace": execution
  intervals are derived directly from the observed events. We model this as
  an update model that simply replays a recorded :class:`UpdateTrace`.
* **Poisson(lambda)** — synthetic updates where ``lambda`` controls the
  *expected number of updates per resource over the epoch*. We synthesize
  them by drawing exponential inter-arrival gaps with mean ``K / lambda``
  and discretizing to chronons (multiple hits in the same chronon collapse,
  matching the chronon-is-indivisible semantics).

Both are exposed through the :class:`UpdateModel` protocol so workload
generators are model-agnostic.
"""

from __future__ import annotations

import math
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.core.timeline import Chronon, Epoch
from repro.traces.events import UpdateEvent, UpdateTrace

__all__ = [
    "UpdateModel",
    "FPNUpdateModel",
    "PoissonUpdateModel",
    "PeriodicUpdateModel",
]


class UpdateModel(Protocol):
    """Anything that can produce an update trace for a set of resources."""

    def generate(self, resource_ids: Sequence[int],
                 epoch: Epoch) -> UpdateTrace:
        """Produce the update trace over the epoch for the given resources."""
        ...


class FPNUpdateModel:
    """FPN(1): perfect knowledge of a recorded trace.

    The model replays the wrapped trace, restricted to the requested
    resources and epoch. ``FPN(1)`` in the paper ("First Probe after
    update, with probability 1 of knowing it") means the proxy knows every
    real update instant exactly, which is what replaying the trace gives.
    """

    def __init__(self, trace: UpdateTrace) -> None:
        self._trace = trace

    @property
    def trace(self) -> UpdateTrace:
        """The wrapped ground-truth trace."""
        return self._trace

    def generate(self, resource_ids: Sequence[int],
                 epoch: Epoch) -> UpdateTrace:
        """Replay the recorded events for the given resources/epoch."""
        wanted = set(resource_ids)
        events = [event for event in self._trace
                  if event.resource_id in wanted
                  and event.chronon in epoch]
        return UpdateTrace(events, epoch)


class PoissonUpdateModel:
    """Poisson(lambda) synthetic updates.

    Parameters
    ----------
    intensity:
        Expected number of updates per resource over the whole epoch
        (the paper's ``lambda``; e.g. 20 or 50 for ``K = 1000``).
    seed:
        RNG seed for reproducibility.
    per_resource_intensity:
        Optional mapping overriding the intensity of specific resources,
        enabling heterogeneous workloads (popular feeds update more often).
    fast:
        Selects the vectorized generation path. Both paths draw the
        exponential gaps from the same RNG stream in the same order, so
        they produce byte-identical traces (and leave the generator in
        the same state) given the same seed; ``fast=False`` keeps the
        event-at-a-time reference loop for ablations and equivalence
        tests.
    """

    def __init__(self, intensity: float, seed: int | None = None,
                 per_resource_intensity: dict[int, float] | None = None,
                 fast: bool = True) -> None:
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        self._intensity = intensity
        self._per_resource = dict(per_resource_intensity or {})
        for resource_id, value in self._per_resource.items():
            if value < 0:
                raise ValueError(
                    f"intensity must be >= 0, got {value} for resource "
                    f"{resource_id}"
                )
        self._rng = np.random.default_rng(seed)
        self._fast = fast

    def intensity_for(self, resource_id: int) -> float:
        """Effective intensity of one resource."""
        return self._per_resource.get(resource_id, self._intensity)

    def generate(self, resource_ids: Sequence[int],
                 epoch: Epoch) -> UpdateTrace:
        """Draw Poisson update streams for the given resources."""
        if self._fast:
            return self._generate_fast(resource_ids, epoch)
        return self._generate_reference(resource_ids, epoch)

    def _generate_reference(self, resource_ids: Sequence[int],
                            epoch: Epoch) -> UpdateTrace:
        """Event-at-a-time loop (the behavioral specification)."""
        events: list[UpdateEvent] = []
        horizon = float(epoch.length)
        for resource_id in resource_ids:
            intensity = self.intensity_for(resource_id)
            if intensity <= 0:
                continue
            mean_gap = horizon / intensity
            time = 0.0
            chronons: set[Chronon] = set()
            # Exponential inter-arrivals; discretize by ceiling so an
            # arrival in (j-1, j] lands on chronon j.
            while True:
                time += self._rng.exponential(mean_gap)
                if time > horizon:
                    break
                chronons.add(max(1, int(np.ceil(time))))
            events.extend(UpdateEvent(chronon, resource_id)
                          for chronon in sorted(chronons))
        return UpdateTrace(events, epoch)

    def _generate_fast(self, resource_ids: Sequence[int],
                       epoch: Epoch) -> UpdateTrace:
        """Batched gap sampling, identical to the reference stream.

        The reference loop consumes, per resource, ``k + 1`` scalar
        ``exponential(mean_gap)`` draws (the final one crosses the
        horizon). numpy's ``exponential(scale)`` is a
        ``standard_exponential()`` variate times ``scale`` and array
        fills consume the same stream as scalar calls, so one shared
        ``standard_exponential`` buffer — sliced per resource, scaled by
        that resource's mean gap — reproduces every gap exactly. After
        all resources are cut, the bit-generator state is rewound once
        and advanced by the total reference consumption, leaving the RNG
        exactly where the reference loop would have. Chronon
        discretization collapses to ``np.unique(np.ceil(...))``.
        """
        horizon = float(epoch.length)
        bit_generator = self._rng.bit_generator
        initial_state = bit_generator.state
        homogeneous = not self._per_resource
        if homogeneous:
            estimate = len(resource_ids) * (int(self._intensity) + 8) + 32
        else:
            estimate = sum(
                int(self.intensity_for(resource_id)) + 8
                for resource_id in resource_ids
            ) + 32
        buffer = self._rng.standard_exponential(estimate)
        # Homogeneous intensities share one mean gap, so the whole
        # buffer is scaled once up front — the per-resource slice of the
        # scaled buffer holds exactly the values ``slice * mean_gap``
        # would (elementwise product, identical rounding).
        scaled: np.ndarray | None = None
        if homogeneous and self._intensity > 0:
            scaled = buffer * (horizon / self._intensity)
        position = 0
        arrival_slices: list[np.ndarray] = []
        active_resources: list[int] = []
        counts: list[int] = []
        for resource_id in resource_ids:
            intensity = self.intensity_for(resource_id)
            if intensity <= 0:
                continue
            mean_gap = horizon / intensity
            window = int(intensity + 10.0 * math.sqrt(intensity)) + 16
            while True:
                if position + window > buffer.size:
                    grown = max(buffer.size, window)
                    buffer = np.concatenate(
                        [buffer, self._rng.standard_exponential(grown)])
                    if scaled is not None:
                        scaled = buffer * mean_gap
                if scaled is not None:
                    arrivals = scaled[position:position + window].cumsum()
                else:
                    arrivals = (buffer[position:position + window]
                                * mean_gap).cumsum()
                crossing = int(arrivals.searchsorted(horizon,
                                                     side="right"))
                if crossing < window:
                    break
                window *= 2
            position += crossing + 1
            if crossing:
                arrival_slices.append(arrivals[:crossing])
                active_resources.append(resource_id)
                counts.append(crossing)
        # Rewind the over-drawn buffer; consume exactly what the
        # reference loop would have, so subsequent draws line up.
        bit_generator.state = initial_state
        if position:
            self._rng.standard_exponential(position)
        if not arrival_slices:
            return UpdateTrace([], epoch)
        # One global dedup pass: encode (resource, chronon) pairs into a
        # single integer key so np.unique collapses same-chronon hits for
        # every resource at once.
        chronons = np.maximum(
            np.ceil(np.concatenate(arrival_slices)), 1.0).astype(np.int64)
        resources = np.repeat(np.asarray(active_resources, dtype=np.int64),
                              np.asarray(counts, dtype=np.int64))
        stride = epoch.length + 1
        keys = np.unique(resources * stride + chronons)
        return UpdateTrace.from_columns(keys % stride, keys // stride, epoch)


class PeriodicUpdateModel:
    """Deterministic updates every ``period`` chronons (phase-shiftable).

    Useful for tests and for modeling hourly feeds (55% of Web feeds update
    hourly per the study [10] cited in the paper).
    """

    def __init__(self, period: int, phase: int = 0,
                 phases: dict[int, int] | None = None) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self._period = period
        self._phase = phase
        self._phases = dict(phases or {})

    def generate(self, resource_ids: Sequence[int],
                 epoch: Epoch) -> UpdateTrace:
        """Emit strictly periodic updates (per-resource phases)."""
        events: list[UpdateEvent] = []
        for resource_id in resource_ids:
            phase = self._phases.get(resource_id, self._phase) % self._period
            first = 1 + phase
            events.extend(
                UpdateEvent(chronon, resource_id)
                for chronon in range(first, epoch.length + 1, self._period)
            )
        return UpdateTrace(events, epoch)
