"""Synthetic eBay-like auction bid traces.

The paper's real-world experiment uses a three-month trace of eBay auctions
for Intel/IBM/Dell laptops, extracted from eBay Web feeds. That trace is
proprietary, so this module synthesizes the closest statistical equivalent
(documented in DESIGN.md §4):

* each resource is one **auction** with a bounded lifetime inside the epoch
  (auctions open and close at different times — activity windows overlap
  but do not coincide);
* bids arrive as a **non-homogeneous Poisson process** whose intensity
  rises toward the auction close ("sniping" — the well-documented burst of
  last-minute bids in eBay auctions);
* auctions belong to **brand categories** with different popularity, giving
  heterogeneous per-resource intensities;
* bid amounts follow an increasing price ladder so payloads look like real
  bid feeds.

The schedulers only consume ``(resource, chronon)`` pairs, so these are the
properties that matter: bursty, heterogeneous, temporally overlapping
update streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.resource import Resource, ResourceCatalog
from repro.core.timeline import Epoch
from repro.traces.events import UpdateEvent, UpdateTrace

__all__ = ["AuctionSpec", "AuctionTraceSynthesizer", "BRAND_CATALOG"]

# Brand categories mimic the paper's Intel/IBM/Dell laptop segments:
# (name, relative popularity weight, mean bids per auction multiplier).
BRAND_CATALOG: tuple[tuple[str, float, float], ...] = (
    ("intel", 0.45, 1.3),
    ("ibm", 0.35, 1.0),
    ("dell", 0.20, 0.8),
)


@dataclass(frozen=True, slots=True)
class AuctionSpec:
    """Static description of one synthetic auction."""

    resource_id: int
    brand: str
    opens: int
    closes: int
    expected_bids: float
    starting_price: float

    @property
    def duration(self) -> int:
        """Lifetime of the auction in chronons."""
        return self.closes - self.opens + 1


class AuctionTraceSynthesizer:
    """Generates overlapping auction lifecycles with sniping bid bursts.

    Parameters
    ----------
    num_auctions:
        Number of auction resources to synthesize.
    epoch:
        The epoch the auctions live in.
    mean_bids:
        Baseline expected number of bids per auction (scaled by brand).
    mean_duration_fraction:
        Mean auction lifetime as a fraction of the epoch (default 0.4;
        auctions are clipped to the epoch).
    sniping_share:
        Fraction of a resource's bids concentrated in the last 10% of its
        lifetime (default 0.35, i.e. a pronounced but not degenerate burst).
    seed:
        RNG seed for reproducibility.
    fast:
        Selects the batched bid-synthesis path. The price-ladder noise is
        drawn per auction in one ``normal(size=...)`` call instead of one
        scalar draw per bid; numpy fills arrays from the same stream as
        scalar calls, so the two paths produce byte-identical traces
        given the same seed.
    """

    def __init__(self, num_auctions: int, epoch: Epoch,
                 mean_bids: float = 20.0,
                 mean_duration_fraction: float = 0.4,
                 sniping_share: float = 0.35,
                 seed: int | None = None,
                 fast: bool = True) -> None:
        if num_auctions < 0:
            raise ValueError(f"num_auctions must be >= 0, got {num_auctions}")
        if mean_bids < 0:
            raise ValueError(f"mean_bids must be >= 0, got {mean_bids}")
        if not 0 < mean_duration_fraction <= 1:
            raise ValueError(
                "mean_duration_fraction must be in (0, 1], got "
                f"{mean_duration_fraction}"
            )
        if not 0 <= sniping_share < 1:
            raise ValueError(
                f"sniping_share must be in [0, 1), got {sniping_share}"
            )
        self._num_auctions = num_auctions
        self._epoch = epoch
        self._mean_bids = mean_bids
        self._mean_duration_fraction = mean_duration_fraction
        self._sniping_share = sniping_share
        self._rng = np.random.default_rng(seed)
        self._fast = fast
        self._specs: tuple[AuctionSpec, ...] | None = None

    # ------------------------------------------------------------------
    # Auction population
    # ------------------------------------------------------------------

    def specs(self) -> tuple[AuctionSpec, ...]:
        """The synthesized auction population (memoized)."""
        if self._specs is None:
            self._specs = tuple(self._make_spec(i)
                                for i in range(self._num_auctions))
        return self._specs

    def _make_spec(self, resource_id: int) -> AuctionSpec:
        brands = [name for name, _weight, _rate in BRAND_CATALOG]
        weights = np.array([weight for _name, weight, _rate in BRAND_CATALOG])
        rates = {name: rate for name, _weight, rate in BRAND_CATALOG}
        brand = str(self._rng.choice(brands, p=weights / weights.sum()))
        horizon = self._epoch.length
        mean_duration = max(2.0, self._mean_duration_fraction * horizon)
        duration = int(np.clip(self._rng.normal(mean_duration,
                                                mean_duration / 4),
                               2, horizon))
        opens = int(self._rng.integers(1, max(2, horizon - duration + 2)))
        closes = min(horizon, opens + duration - 1)
        expected_bids = max(1.0,
                            self._rng.gamma(4.0, self._mean_bids / 4.0)
                            * rates[brand])
        starting_price = float(np.round(self._rng.uniform(50, 800), 2))
        return AuctionSpec(resource_id=resource_id, brand=brand, opens=opens,
                           closes=closes, expected_bids=expected_bids,
                           starting_price=starting_price)

    def catalog(self) -> ResourceCatalog:
        """A resource catalog describing the auctions (brand metadata)."""
        catalog = ResourceCatalog()
        for spec in self.specs():
            catalog.add(Resource.create(
                spec.resource_id,
                name=f"ebay/{spec.brand}-auction-{spec.resource_id}",
                metadata={"brand": spec.brand,
                          "opens": str(spec.opens),
                          "closes": str(spec.closes)},
            ))
        return catalog

    # ------------------------------------------------------------------
    # Bid stream
    # ------------------------------------------------------------------

    def generate(self) -> UpdateTrace:
        """Synthesize the full bid trace for all auctions."""
        events: list[UpdateEvent] = []
        for spec in self.specs():
            events.extend(self._bids_for(spec))
        return UpdateTrace(events, self._epoch)

    def _bids_for(self, spec: AuctionSpec) -> list[UpdateEvent]:
        count = int(self._rng.poisson(spec.expected_bids))
        if count == 0 or spec.duration == 0:
            return []
        # Split bids between the steady phase and the sniping burst in the
        # final 10% of the auction lifetime.
        snipe_count = int(round(count * self._sniping_share))
        steady_count = count - snipe_count
        snipe_start = spec.closes - max(1, spec.duration // 10) + 1
        offsets: list[int] = []
        if steady_count and snipe_start > spec.opens:
            offsets.extend(
                int(c) for c in self._rng.integers(
                    spec.opens, snipe_start, size=steady_count)
            )
        else:
            snipe_count += steady_count
        offsets.extend(
            int(c) for c in self._rng.integers(
                snipe_start, spec.closes + 1, size=snipe_count)
        )
        chronons = sorted(set(offsets))
        price = spec.starting_price
        events = []
        if self._fast:
            # One array fill consumes the stream exactly like the scalar
            # draws below; the ladder itself stays sequential because
            # each price compounds on the previous one.
            noise = self._rng.normal(0.02, 0.02, size=len(chronons))
            for chronon, step in zip(chronons, noise.tolist()):
                price = float(np.round(price * (1.0 + abs(step)), 2))
                events.append(UpdateEvent(chronon, spec.resource_id,
                                          payload=f"bid={price:.2f}"))
            return events
        for chronon in chronons:
            price = float(np.round(
                price * (1.0 + abs(self._rng.normal(0.02, 0.02))), 2))
            events.append(UpdateEvent(chronon, spec.resource_id,
                                      payload=f"bid={price:.2f}"))
        return events
