"""Budget-preserving failure handling: retries, backoff, circuit breaking.

The paper's per-chronon budget ``C_j`` counts *requests*, so every failed
probe is budget burned. Two mechanisms keep a policy from burning its
whole budget on a dead source:

* :class:`RetryConfig` — an in-chronon retry allowance for failed probes,
  spent only from budget left over after the policy's selections;
* :class:`CircuitBreaker` — per-resource consecutive-failure tracking
  with exponential backoff: after ``failure_threshold`` consecutive
  failures a resource is *quarantined* (excluded from candidate
  selection) for a cooldown that doubles on every re-trip, so a
  persistently dead resource costs one trial probe per cooldown window
  instead of one per chronon.

This module deliberately imports nothing from the runtime — the same
breaker instance drives both the measurement simulator and the live
proxy.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.errors import FaultError
from repro.core.timeline import Chronon

__all__ = ["BackoffPolicy", "CircuitBreaker", "RetryConfig"]


@dataclass(frozen=True, slots=True)
class RetryConfig:
    """In-chronon retry allowance for failed probes.

    Attributes
    ----------
    max_retries:
        Retries allowed per failed resource within one chronon. Each
        retry consumes one unit of leftover budget.
    """

    max_retries: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError(
                f"max_retries must be >= 0, got {self.max_retries}")


@dataclass(frozen=True, slots=True)
class BackoffPolicy:
    """Retry allowance with deterministic full-jitter exponential delays.

    Generalizes :class:`RetryConfig` for the asyncio proxy: besides *how
    many* retries a failed probe gets, it decides *how long* to wait
    before each one. Delays follow AWS-style "full jitter": attempt
    ``k`` sleeps a uniform draw from ``[0, min(max_delay, base_delay *
    factor**(k-1))]``, which decorrelates retry storms without giving up
    the exponential envelope.

    Every draw is keyed on ``(seed, key, attempt)`` through a stable
    string seed — the same trick as
    :class:`~repro.faults.model.FaultInjector` — so two runs with the
    same seed produce identical delays regardless of coroutine
    interleaving, and so does a replayed chaos schedule.

    Attributes
    ----------
    max_retries:
        Retries allowed per failed resource within one chronon (each
        spends one unit of leftover budget, exactly like
        :class:`RetryConfig`).
    base_delay:
        Upper bound of the first retry's jitter window, in seconds.
    factor:
        Exponential growth of the jitter window per attempt.
    max_delay:
        Cap on any single jitter window, in seconds.
    seed:
        Seed of the deterministic jitter keying.
    """

    max_retries: int = 1
    base_delay: float = 0.01
    factor: float = 2.0
    max_delay: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0.0:
            raise FaultError(
                f"base_delay must be >= 0, got {self.base_delay}")
        if self.factor < 1.0:
            raise FaultError(f"factor must be >= 1.0, got {self.factor}")
        if self.max_delay < self.base_delay:
            raise FaultError("max_delay must be >= base_delay")

    @classmethod
    def from_retry(cls, retry: RetryConfig | None,
                   **overrides) -> "BackoffPolicy":
        """Lift a plain :class:`RetryConfig` (or None) into a policy."""
        max_retries = retry.max_retries if retry is not None else 0
        return cls(max_retries=max_retries, **overrides)

    def as_retry(self) -> RetryConfig:
        """The in-chronon retry allowance this policy grants."""
        return RetryConfig(max_retries=self.max_retries)

    def window_for(self, attempt: int) -> float:
        """The jitter window (seconds) for retry attempt ``attempt >= 1``."""
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {attempt}")
        return min(self.max_delay,
                   self.base_delay * self.factor ** (attempt - 1))

    def delay_for(self, key: str, attempt: int) -> float:
        """Full-jitter delay before retry ``attempt`` of channel ``key``.

        ``key`` identifies the retry stream (the async engine passes
        ``"resource:chronon"``); identical keys and seeds reproduce
        identical delays across runs and processes.
        """
        window = self.window_for(attempt)
        if window <= 0.0:
            return 0.0
        draw = random.Random(f"{self.seed}:backoff:{key}:{attempt}")
        return draw.random() * window


class _ResourceState:
    """Breaker bookkeeping for one resource."""

    __slots__ = ("consecutive_failures", "open_until", "trips")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.open_until: Chronon = -1
        self.trips = 0


class CircuitBreaker:
    """Per-resource quarantine with exponential backoff.

    A resource trips open after ``failure_threshold`` consecutive
    failures and stays quarantined for ``cooldown`` chronons; when the
    cooldown elapses the next probe is a half-open trial — success resets
    the resource, failure re-trips it with the cooldown scaled by
    ``backoff_factor`` (capped at ``max_cooldown``).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures before the first trip.
    cooldown:
        Initial quarantine length, in chronons.
    backoff_factor:
        Cooldown multiplier per successive trip.
    max_cooldown:
        Upper bound on any single quarantine window.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: int = 4,
                 backoff_factor: float = 2.0,
                 max_cooldown: int = 64) -> None:
        if failure_threshold < 1:
            raise FaultError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 1:
            raise FaultError(f"cooldown must be >= 1, got {cooldown}")
        if backoff_factor < 1.0:
            raise FaultError(
                f"backoff_factor must be >= 1.0, got {backoff_factor}")
        if max_cooldown < cooldown:
            raise FaultError("max_cooldown must be >= cooldown")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.backoff_factor = backoff_factor
        self.max_cooldown = max_cooldown
        self._states: dict[int, _ResourceState] = {}
        self.ever_quarantined: set[int] = set()

    def _cooldown_for(self, trips: int) -> int:
        # ceil, not int(): truncation would stall cooldown growth for
        # fractional backoff_factor near 1 (e.g. 1.5 gives 1, 1, 2, ...
        # truncated but 1, 2, 3, ... ceiled from cooldown=1).
        scaled = self.cooldown * self.backoff_factor ** trips
        return min(self.max_cooldown, math.ceil(scaled))

    def is_blocked(self, resource_id: int, chronon: Chronon) -> bool:
        """True while the resource is quarantined at ``chronon``."""
        state = self._states.get(resource_id)
        return state is not None and chronon <= state.open_until

    def is_half_open(self, resource_id: int, chronon: Chronon) -> bool:
        """True when the next probe of the resource is a quarantine-exit
        trial: it has tripped at least once, its cooldown has elapsed,
        and no success has closed it since. The async executor hedges
        exactly these probes."""
        state = self._states.get(resource_id)
        return (state is not None and state.trips > 0
                and chronon > state.open_until)

    def reset(self) -> None:
        """Return the breaker to its as-constructed state so one
        instance can be reused across epochs: all failure counters,
        open windows, trip escalations, and the quarantine census are
        forgotten."""
        self._states.clear()
        self.ever_quarantined.clear()

    def record_failure(self, resource_id: int, chronon: Chronon) -> bool:
        """Count one failed probe; returns True when this trips the breaker.

        Failures past the threshold (the half-open trial failing) re-trip
        immediately with a longer cooldown.
        """
        state = self._states.setdefault(resource_id, _ResourceState())
        state.consecutive_failures += 1
        if state.consecutive_failures < self.failure_threshold:
            return False
        state.open_until = chronon + self._cooldown_for(state.trips)
        state.trips += 1
        self.ever_quarantined.add(resource_id)
        return True

    def record_success(self, resource_id: int) -> None:
        """A successful probe fully closes the resource's breaker."""
        self._states.pop(resource_id, None)

    def quarantined_now(self, chronon: Chronon) -> set[int]:
        """Resources currently quarantined at ``chronon``."""
        return {resource_id for resource_id, state in self._states.items()
                if chronon <= state.open_until}

    @property
    def quarantined_count(self) -> int:
        """Distinct resources ever quarantined."""
        return len(self.ever_quarantined)
