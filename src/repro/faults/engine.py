"""Shared probe-execution engine: budget-aware retries over any prober.

The measurement simulator and the live proxy must account for faults
identically (the repo's core invariant: measured completeness and
delivered notifications may never disagree), so the execution of one
chronon's probe decisions — first attempts, failure accounting, breaker
updates, and leftover-budget retries — lives here, parameterised by a
``prober`` callable.

A prober maps ``(resource_id, attempt)`` to an outcome object exposing
``.ok`` (the runtime passes :meth:`OriginServer.try_probe`; the simulator
passes a closure over a :class:`~repro.faults.model.FaultInjector`).
This module imports neither, on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.timeline import Chronon
from repro.faults.breaker import CircuitBreaker, RetryConfig

__all__ = ["ProbeRound", "execute_probes"]

#: (resource_id, attempt) -> outcome with an ``ok`` attribute.
Prober = Callable[[int, int], Any]


@dataclass(slots=True)
class ProbeRound:
    """Accounting of one chronon's probe execution.

    Attributes
    ----------
    outcomes:
        Final successful outcome per resource (first ok attempt wins).
    failed:
        Resources that stayed failed after all retries, in decision
        order.
    attempts:
        Total requests sent (budget consumed this chronon).
    failures:
        Non-ok attempts (failed + throttled), including failed retries.
    retries:
        Attempts beyond the first per resource.
    """

    outcomes: dict[int, Any] = field(default_factory=dict)
    failed: list[int] = field(default_factory=list)
    attempts: int = 0
    failures: int = 0
    retries: int = 0


def execute_probes(decisions: Sequence[Any], chronon: Chronon,
                   budget: int, prober: Prober,
                   retry: RetryConfig | None = None,
                   breaker: CircuitBreaker | None = None) -> ProbeRound:
    """Execute one chronon's probe decisions against a prober.

    Each decision's first attempt has already been paid for by
    :func:`~repro.online.base.select_probes` (which returned at most
    ``budget`` decisions); retries of failed probes spend the budget left
    over after those selections, in decision order, up to
    ``retry.max_retries`` per resource. Failures and successes feed the
    breaker, and a resource whose breaker trips mid-chronon gets no
    further retries.
    """
    round_ = ProbeRound()
    budget_left = budget - len(decisions)
    first_failures: list[int] = []
    for decision in decisions:
        resource_id = decision.resource_id
        round_.attempts += 1
        outcome = prober(resource_id, 0)
        if outcome.ok:
            round_.outcomes[resource_id] = outcome
            if breaker is not None:
                breaker.record_success(resource_id)
        else:
            round_.failures += 1
            first_failures.append(resource_id)
            if breaker is not None:
                breaker.record_failure(resource_id, chronon)

    max_retries = retry.max_retries if retry is not None else 0
    for resource_id in first_failures:
        recovered = False
        for attempt in range(1, max_retries + 1):
            if budget_left <= 0:
                break
            if breaker is not None and breaker.is_blocked(resource_id,
                                                          chronon):
                break
            budget_left -= 1
            round_.attempts += 1
            round_.retries += 1
            outcome = prober(resource_id, attempt)
            if outcome.ok:
                round_.outcomes[resource_id] = outcome
                if breaker is not None:
                    breaker.record_success(resource_id)
                recovered = True
                break
            round_.failures += 1
            if breaker is not None:
                breaker.record_failure(resource_id, chronon)
        if not recovered:
            round_.failed.append(resource_id)
    return round_
