"""An origin server that misbehaves the way real feeds do.

:class:`UnreliableServer` wraps any :class:`~repro.runtime.server.
OriginServer` and subjects its probes to a :class:`~repro.faults.model.
FaultSpec`: dropped requests, timeouts, scripted outages, server-side
rate limiting, and stale reads from a lagging replica. The wrapped
server's state machine (clock, pending updates, publishing) is untouched
— only the *observation* path degrades.

Both probe surfaces are served:

* :meth:`try_probe` returns a :class:`~repro.runtime.server.ProbeOutcome`
  (the proxy runtime's path);
* :meth:`probe` is the strict legacy surface and raises
  :class:`~repro.core.errors.ProbeFailure` when the fault model strikes.

With a null spec the wrapper is transparent: every probe succeeds with
exactly the snapshot the inner server would have served.
"""

from __future__ import annotations

from repro.core.errors import ProbeFailure
from repro.core.timeline import Chronon
from repro.faults.model import FaultInjector, FaultSpec, FaultTrace
from repro.runtime.server import (
    PROBE_OK,
    OriginServer,
    ProbeOutcome,
    Snapshot,
)
from repro.traces.events import UpdateEvent

__all__ = ["UnreliableServer"]


class UnreliableServer:
    """A fault-injecting wrapper over an origin server.

    Parameters
    ----------
    server:
        The reliable server being wrapped.
    spec:
        Fault model to apply; ignored when ``injector`` is given.
    injector:
        Explicit decision source — pass ``trace.replay()`` to reproduce a
        recorded run, or a shared :class:`FaultInjector`.
    """

    def __init__(self, server: OriginServer,
                 spec: FaultSpec | None = None,
                 injector=None) -> None:
        self.inner = server
        if injector is None:
            injector = FaultInjector(spec if spec is not None
                                     else FaultSpec())
        self.injector = injector
        # Applied updates per resource, for lagging-replica reads:
        # (chronon, version, payload) in application order.
        self._history: dict[int, list[tuple[Chronon, int, str]]] = {}

    # ------------------------------------------------------------------
    # OriginServer-compatible surface (state machine delegates)
    # ------------------------------------------------------------------

    @property
    def clock(self) -> Chronon:
        return self.inner.clock

    @property
    def fault_trace(self) -> FaultTrace | None:
        """The recorded fault decisions (None for non-recording sources)."""
        return getattr(self.injector, "trace", None)

    def publish(self, event: UpdateEvent) -> None:
        self.inner.publish(event)

    def advance_to(self, chronon: Chronon) -> list[UpdateEvent]:
        applied = self.inner.advance_to(chronon)
        for event in applied:
            history = self._history.setdefault(event.resource_id, [])
            version = history[-1][1] + 1 if history else 1
            history.append((event.chronon, version, event.payload))
        self.injector.begin_chronon(chronon)
        return applied

    def version_of(self, resource_id: int) -> int:
        return self.inner.version_of(resource_id)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def _stale_snapshot(self, resource_id: int, lag: int) -> Snapshot:
        """The resource's state as a replica ``lag`` chronons behind
        sees it."""
        as_of = self.inner.clock - lag
        state = (0, 0, "")
        for entry in self._history.get(resource_id, ()):
            if entry[0] > as_of:
                break
            state = entry
        return Snapshot(
            resource_id=resource_id,
            probed_at=self.inner.clock,
            version=state[1],
            updated_at=state[0],
            value=state[2],
        )

    def try_probe(self, resource_id: int, attempt: int = 0) -> ProbeOutcome:
        """Probe through the fault model; never raises."""
        chronon = self.inner.clock
        decision = self.injector.decide(resource_id, chronon, attempt)
        if not decision.ok:
            return ProbeOutcome(
                resource_id=resource_id, chronon=chronon,
                status=decision.status, snapshot=None,
                fault=decision.fault, attempt=attempt)
        if decision.stale:
            spec = getattr(self.injector, "spec", None)
            lag = spec.stale_lag if spec is not None else 1
            snapshot = self._stale_snapshot(resource_id, lag)
        else:
            snapshot = self.inner.probe(resource_id)
        return ProbeOutcome(
            resource_id=resource_id, chronon=chronon, status=PROBE_OK,
            snapshot=snapshot, fault=decision.fault,
            stale=decision.stale, attempt=attempt)

    def probe(self, resource_id: int) -> Snapshot:
        """Strict probe: the snapshot, or :class:`ProbeFailure`.

        Stale reads are returned (they are answers, just old ones);
        drops, timeouts, outages, and throttling raise.
        """
        outcome = self.try_probe(resource_id)
        if outcome.snapshot is None:
            raise ProbeFailure(resource_id, self.inner.clock,
                               fault=outcome.fault)
        return outcome.snapshot
