"""The fault model: what can go wrong when the proxy pulls.

Volatile sources are not only volatile in *content* — the paper's eBay
AuctionWatch setting pulls from best-effort HTTP endpoints that drop
requests, time out, throttle aggressive pollers, and serve lagging
replicas. This module describes those behaviours declaratively
(:class:`FaultSpec`), turns a spec into a deterministic decision source
(:class:`FaultInjector`), and records every decision into a replayable
:class:`FaultTrace`.

Determinism is the design center: every random draw is keyed on
``(seed, channel, resource, chronon, attempt)`` through a stable string
seed, so outcomes do not depend on probe *order* and two runs with the
same seed (or a recorded trace) reproduce each other exactly. With all
probabilities at zero and no outages a faulty run is indistinguishable
from a reliable one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.errors import FaultError, FaultReplayError
from repro.core.timeline import Chronon
from repro.runtime.server import (
    PROBE_FAILED,
    PROBE_OK,
    PROBE_THROTTLED,
    ProbeStatus,
)

__all__ = [
    "FaultDecision",
    "FaultInjector",
    "FaultRecord",
    "FaultSpec",
    "FaultTrace",
    "Outage",
    "RecordedFaults",
]


@dataclass(frozen=True, slots=True)
class Outage:
    """A scripted downtime window for one resource.

    The resource answers no probes for chronons in ``[start, last]``;
    ``last=None`` means the outage never ends (a dead resource).
    """

    resource_id: int
    start: Chronon
    last: Chronon | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultError(f"outage start must be >= 0, got {self.start}")
        if self.last is not None and self.last < self.start:
            raise FaultError(
                f"outage for resource {self.resource_id} ends at "
                f"{self.last} before it starts at {self.start}")

    def covers(self, chronon: Chronon) -> bool:
        """True when the resource is down at ``chronon``."""
        if chronon < self.start:
            return False
        return self.last is None or chronon <= self.last


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Declarative description of a source's unreliability.

    Attributes
    ----------
    failure_probability:
        Chance that any single probe is dropped outright.
    timeout_probability:
        Chance that a probe times out (also a failure; kept separate so
        traces can distinguish the two).
    stale_probability:
        Chance that an answered probe observes the state as of
        ``stale_lag`` chronons ago (a lagging read replica).
    stale_lag:
        Replica lag, in chronons, for stale reads.
    per_resource:
        Per-resource overrides of ``failure_probability``.
    outages:
        Scripted downtime windows (see :class:`Outage`).
    max_probes_per_chronon:
        Server-side rate limit: requests past this count within one
        chronon are *throttled* (refused, budget still spent).
    seed:
        Seed of the deterministic draw keying.
    """

    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    stale_probability: float = 0.0
    stale_lag: int = 1
    per_resource: Mapping[int, float] = field(default_factory=dict)
    outages: tuple[Outage, ...] = ()
    max_probes_per_chronon: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("failure_probability", "timeout_probability",
                     "stale_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {value}")
        for resource_id, value in self.per_resource.items():
            if not 0.0 <= value <= 1.0:
                raise FaultError(
                    f"per_resource[{resource_id}] must be in [0, 1], "
                    f"got {value}")
        if self.stale_lag < 0:
            raise FaultError(f"stale_lag must be >= 0, got {self.stale_lag}")
        if (self.max_probes_per_chronon is not None
                and self.max_probes_per_chronon < 0):
            raise FaultError("max_probes_per_chronon must be >= 0")
        # Overlapping windows for one resource would make the effective
        # downtime depend on tuple order (``covers`` stops at the first
        # hit) — reject them outright so a spec means one thing.
        by_resource: dict[int, list[Outage]] = {}
        for outage in self.outages:
            by_resource.setdefault(outage.resource_id, []).append(outage)
        for windows in by_resource.values():
            windows.sort(key=lambda o: o.start)
            for earlier, later in zip(windows, windows[1:]):
                if earlier.last is None or later.start <= earlier.last:
                    raise FaultError(
                        f"overlapping outage windows for resource "
                        f"{earlier.resource_id}: {earlier} overlaps "
                        f"{later}")

    @property
    def is_null(self) -> bool:
        """True when this spec can never produce a fault."""
        return (self.failure_probability == 0.0
                and self.timeout_probability == 0.0
                and self.stale_probability == 0.0
                and not any(self.per_resource.values())
                and not self.outages
                and self.max_probes_per_chronon is None)

    def failure_rate_for(self, resource_id: int) -> float:
        """Effective drop probability of one resource."""
        return self.per_resource.get(resource_id,
                                     self.failure_probability)


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """What the fault model decided for one probe attempt."""

    status: ProbeStatus
    fault: str | None = None
    stale: bool = False

    @property
    def ok(self) -> bool:
        return self.status == PROBE_OK


#: The common case, shared to avoid allocating it per probe.
OK_DECISION = FaultDecision(PROBE_OK)


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """One recorded fault decision — a line of the replayable trace."""

    chronon: Chronon
    resource_id: int
    attempt: int
    status: ProbeStatus
    fault: str | None = None
    stale: bool = False

    @property
    def key(self) -> tuple[Chronon, int, int]:
        return (self.chronon, self.resource_id, self.attempt)

    def decision(self) -> FaultDecision:
        return FaultDecision(self.status, self.fault, self.stale)


class FaultTrace:
    """An append-only log of fault decisions, replayable via
    :class:`RecordedFaults`."""

    def __init__(self, records: Iterable[FaultRecord] = ()) -> None:
        self._records: list[FaultRecord] = list(records)

    def append(self, record: FaultRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FaultRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> FaultRecord:
        return self._records[index]

    def faults_only(self) -> list[FaultRecord]:
        """The non-ok (or stale) records — the interesting lines."""
        return [record for record in self._records
                if record.status != PROBE_OK or record.stale]

    def replay(self, strict: bool = False) -> "RecordedFaults":
        """A decision source reproducing this trace exactly.

        ``strict=True`` makes divergence loud: a probe the trace never
        recorded raises
        :class:`~repro.core.errors.FaultReplayError` instead of
        defaulting to ok.
        """
        return RecordedFaults(self, strict=strict)


class FaultInjector:
    """Deterministic fault decisions for probe attempts.

    Stateless across probes except for the per-chronon rate-limit
    counter; every probabilistic decision is a pure function of
    ``(seed, resource, chronon, attempt)``.

    Parameters
    ----------
    spec:
        The fault model to apply.
    record:
        When True (default) every decision is appended to :attr:`trace`.
    """

    def __init__(self, spec: FaultSpec, record: bool = True) -> None:
        self.spec = spec
        self.trace = FaultTrace()
        self._record = record
        self._chronon: Chronon = 0
        self._requests_this_chronon = 0

    def begin_chronon(self, chronon: Chronon) -> None:
        """Reset per-chronon state (the server-side rate-limit window)."""
        self._chronon = chronon
        self._requests_this_chronon = 0

    def _draw(self, channel: str, resource_id: int, chronon: Chronon,
              attempt: int) -> float:
        # String seeds hash deterministically (sha512) across processes,
        # unlike tuple seeds which fall back to salted `hash()`.
        key = (f"{self.spec.seed}:{channel}:{resource_id}:"
               f"{chronon}:{attempt}")
        return random.Random(key).random()

    def decide(self, resource_id: int, chronon: Chronon,
               attempt: int = 0) -> FaultDecision:
        """The fault decision for one probe attempt."""
        spec = self.spec
        self._requests_this_chronon += 1
        decision = OK_DECISION
        if any(outage.resource_id == resource_id and outage.covers(chronon)
               for outage in spec.outages):
            decision = FaultDecision(PROBE_FAILED, fault="outage")
        elif (spec.max_probes_per_chronon is not None
                and self._requests_this_chronon
                > spec.max_probes_per_chronon):
            decision = FaultDecision(PROBE_THROTTLED, fault="rate-limit")
        else:
            rate = spec.failure_rate_for(resource_id)
            if rate > 0.0 and self._draw("drop", resource_id, chronon,
                                         attempt) < rate:
                decision = FaultDecision(PROBE_FAILED, fault="drop")
            elif (spec.timeout_probability > 0.0
                    and self._draw("timeout", resource_id, chronon,
                                   attempt) < spec.timeout_probability):
                decision = FaultDecision(PROBE_FAILED, fault="timeout")
            elif (spec.stale_probability > 0.0
                    and self._draw("stale", resource_id, chronon,
                                   attempt) < spec.stale_probability):
                decision = FaultDecision(PROBE_OK, fault="stale",
                                         stale=True)
        if self._record:
            self.trace.append(FaultRecord(
                chronon=chronon, resource_id=resource_id, attempt=attempt,
                status=decision.status, fault=decision.fault,
                stale=decision.stale))
        return decision


class RecordedFaults:
    """Replays a :class:`FaultTrace`: same probes in, same faults out.

    By default, attempts not present in the trace (e.g. the run
    diverged) default to ok, which keeps replay usable as a best-effort
    diagnostic tool. With ``strict=True`` an off-trace probe raises
    :class:`~repro.core.errors.FaultReplayError` naming the
    ``(chronon, resource, attempt)`` triple and the trace length, so
    replay drift is diagnosable instead of silently absorbed.
    """

    def __init__(self, trace: FaultTrace, strict: bool = False) -> None:
        self.trace = trace
        self.strict = strict
        self._by_key: dict[tuple[Chronon, int, int], FaultDecision] = {
            record.key: record.decision() for record in trace
        }

    def begin_chronon(self, chronon: Chronon) -> None:
        """Present for interface parity with :class:`FaultInjector`."""

    def decide(self, resource_id: int, chronon: Chronon,
               attempt: int = 0) -> FaultDecision:
        decision = self._by_key.get((chronon, resource_id, attempt))
        if decision is None:
            if self.strict:
                raise FaultReplayError(resource_id, chronon, attempt,
                                       len(self.trace))
            return OK_DECISION
        return decision
