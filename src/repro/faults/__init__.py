"""Fault injection: unreliable origin servers and budget-aware recovery.

The paper assumes the proxy's pulls always succeed; real volatile sources
do not. This package makes unreliability a first-class, *deterministic*
part of the model:

* :class:`FaultSpec` / :class:`FaultInjector` — declarative fault model
  (drops, timeouts, outages, rate limiting, stale reads) with seeded,
  order-independent draws and a replayable :class:`FaultTrace`;
* :class:`UnreliableServer` — a fault-injecting wrapper over any
  :class:`~repro.runtime.server.OriginServer`;
* :class:`RetryConfig` / :class:`CircuitBreaker` — in-chronon retries
  from leftover budget, and exponential-backoff quarantine of
  persistently dead resources;
* :func:`execute_probes` — the probe-execution engine shared by the
  simulator and the live proxy, so both account for faults identically.
"""

from repro.core.errors import FaultReplayError
from repro.faults.breaker import BackoffPolicy, CircuitBreaker, RetryConfig
from repro.faults.engine import ProbeRound, execute_probes
from repro.faults.model import (
    FaultDecision,
    FaultInjector,
    FaultRecord,
    FaultSpec,
    FaultTrace,
    Outage,
    RecordedFaults,
)
from repro.faults.server import UnreliableServer
from repro.runtime.server import (
    PROBE_FAILED,
    PROBE_OK,
    PROBE_THROTTLED,
    ProbeOutcome,
)

__all__ = [
    "PROBE_FAILED",
    "PROBE_OK",
    "PROBE_THROTTLED",
    "BackoffPolicy",
    "CircuitBreaker",
    "FaultDecision",
    "FaultInjector",
    "FaultRecord",
    "FaultReplayError",
    "FaultSpec",
    "FaultTrace",
    "Outage",
    "ProbeOutcome",
    "ProbeRound",
    "RecordedFaults",
    "RetryConfig",
    "UnreliableServer",
    "execute_probes",
]
