"""Experiment harness and per-figure reproduction definitions."""

from repro.experiments.churn import (
    ChurnConfig,
    ChurnResult,
    ChurnSweep,
    ChurnSweepRow,
    ClientOutcome,
    churn_sweep,
    jain_index,
    run_churn,
)
from repro.experiments.config import ExperimentConfig, SCALES, baseline
from repro.experiments.faults import (
    DEFAULT_FAILURE_RATES,
    FAULT_POLICY_VARIANTS,
    breaker_ablation,
    fault_sweep,
    run_fault_setting,
)
from repro.experiments.figures import (
    ALL_POLICY_VARIANTS,
    FigurePair,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
)
from repro.experiments.federation import (
    DEFAULT_SHARD_COUNTS,
    FederationSweep,
    ShardCountOutcome,
    federation_sweep,
)
from repro.experiments.offline import (
    OFFLINE_SOLVER_LABELS,
    offline_comparison,
)
from repro.experiments.harness import (
    OFFLINE_LABEL,
    FaultCell,
    PolicyOutcome,
    RunOutcome,
    SweepResult,
    make_instance,
    run_setting,
    sweep,
)
from repro.experiments.reporting import render_table, sweep_csv, sweep_table

__all__ = [
    "ALL_POLICY_VARIANTS",
    "DEFAULT_FAILURE_RATES",
    "DEFAULT_SHARD_COUNTS",
    "FAULT_POLICY_VARIANTS",
    "FederationSweep",
    "ShardCountOutcome",
    "federation_sweep",
    "breaker_ablation",
    "fault_sweep",
    "run_fault_setting",
    "ChurnConfig",
    "ChurnResult",
    "ChurnSweep",
    "ChurnSweepRow",
    "ClientOutcome",
    "churn_sweep",
    "ExperimentConfig",
    "jain_index",
    "run_churn",
    "FaultCell",
    "FigurePair",
    "OFFLINE_LABEL",
    "OFFLINE_SOLVER_LABELS",
    "offline_comparison",
    "PolicyOutcome",
    "RunOutcome",
    "SCALES",
    "SweepResult",
    "baseline",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "make_instance",
    "render_table",
    "run_setting",
    "sweep",
    "sweep_csv",
    "sweep_table",
    "table1",
]
