"""Experiment harness: instance generation, policy runs, sweeps.

The harness reproduces the paper's protocol (§5.1): for each parameter
setting generate ``repetitions`` independent problem instances (trace +
profiles), run every policy — and optionally the offline approximation —
on the *same* instances, and average gained completeness and runtime.

Both :func:`run_setting` and :func:`sweep` accept ``workers=N`` to farm
the independent (setting, repetition) cells out to a process pool.
Instance generation is fully seeded per cell, so the parallel path
produces exactly the same gained-completeness numbers as the serial one
(only the measured wall times differ, as they do between any two runs);
results are merged back in the serial iteration order.
"""

from __future__ import annotations

import statistics
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.profile import ProfileSet
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import (
    InstanceCache,
    _pool_worker_init,
    active_cache,
    fast_default,
    generation_key,
)
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.model import FaultSpec
from repro.offline.local_ratio import LocalRatioApproximation
from repro.online.registry import parse_policy_spec
from repro.simulation.batch import (
    BatchUnsupported,
    FaultLane,
    batch_kind,
    run_block,
)
from repro.simulation.columnar import ColumnarInstance
from repro.simulation.proxy import run_online
from repro.simulation.result import SimulationResult
from repro.traces.events import UpdateTrace

__all__ = [
    "FaultCell",
    "PolicyOutcome",
    "RunOutcome",
    "SweepResult",
    "make_instance",
    "run_setting",
    "sweep",
    "OFFLINE_LABEL",
]

OFFLINE_LABEL = "offline-approx"

#: The policy line-up the paper's figures use most often.
DEFAULT_POLICIES: tuple[str, ...] = (
    "S-EDF(NP)", "S-EDF(P)", "MRSF(P)", "M-EDF(P)",
)


@dataclass(frozen=True, slots=True)
class FaultCell:
    """The fault layer of one work cell, in picklable factory form.

    Breaker state is per-run, so the cell carries the breaker's
    *parameters* (``(failure_threshold, cooldown, backoff_factor,
    max_cooldown)``) rather than an instance; every policy run — batch
    lane or fast fallback — gets a fresh :class:`CircuitBreaker` from
    :meth:`make_breaker`. The spec is per-repetition (its seed folds the
    repetition in), so cells carry the concrete :class:`FaultSpec`.
    """

    spec: FaultSpec | None = None
    retry: RetryConfig | None = None
    breaker: tuple[int, int, float, int] | None = None

    @property
    def is_null(self) -> bool:
        return (self.spec is None and self.retry is None
                and self.breaker is None)

    def make_breaker(self) -> CircuitBreaker | None:
        """A fresh breaker with this cell's parameters (or None)."""
        if self.breaker is None:
            return None
        threshold, cooldown, backoff, max_cooldown = self.breaker
        return CircuitBreaker(failure_threshold=threshold,
                              cooldown=cooldown,
                              backoff_factor=backoff,
                              max_cooldown=max_cooldown)

    def lane(self) -> FaultLane | None:
        """This cell's fault layer as one batch lane (fresh breaker)."""
        if self.is_null:
            return None
        return FaultLane(self.spec, self.retry, self.make_breaker())

    def run_kwargs(self) -> dict:
        """Fault kwargs for one ``run_online`` call (fresh breaker)."""
        if self.is_null:
            return {}
        return dict(faults=self.spec, retry=self.retry,
                    breaker=self.make_breaker())


@dataclass(frozen=True, slots=True)
class PolicyOutcome:
    """Aggregated outcome of one policy over the repetitions."""

    label: str
    gc_values: tuple[float, ...]
    runtime_values: tuple[float, ...]

    @property
    def mean_gc(self) -> float:
        return statistics.fmean(self.gc_values)

    @property
    def stdev_gc(self) -> float:
        if len(self.gc_values) < 2:
            return 0.0
        return statistics.stdev(self.gc_values)

    @property
    def mean_runtime(self) -> float:
        return statistics.fmean(self.runtime_values)


@dataclass(frozen=True, slots=True)
class RunOutcome:
    """All policy outcomes for one parameter setting.

    ``fell_back`` counts the (repetition, policy) runs that the batch
    engine handed to the fast engine (policies without a columnar kind,
    or blocks the columnar form cannot encode); it is 0 for other
    engines.
    """

    config: ExperimentConfig
    outcomes: dict[str, PolicyOutcome]
    fell_back: int = 0

    def mean_gc(self, label: str) -> float:
        """Mean gained completeness of one policy."""
        return self.outcomes[label].mean_gc

    def mean_runtime(self, label: str) -> float:
        """Mean decision runtime (seconds) of one policy."""
        return self.outcomes[label].mean_runtime

    def labels(self) -> list[str]:
        """All policy labels present in this outcome."""
        return list(self.outcomes)


@dataclass(frozen=True, slots=True)
class SweepResult:
    """GC/runtime series over a swept parameter (one paper figure panel)."""

    name: str
    parameter: str
    x_values: tuple
    runs: tuple[RunOutcome, ...]

    def series(self, label: str, metric: str = "gc") -> list[float]:
        """The metric series of one policy across the sweep."""
        if metric == "gc":
            return [run.mean_gc(label) for run in self.runs]
        if metric == "runtime":
            return [run.mean_runtime(label) for run in self.runs]
        raise ValueError(f"unknown metric {metric!r}")

    def labels(self) -> list[str]:
        """Policy labels present in the sweep (empty when no runs)."""
        return self.runs[0].labels() if self.runs else []

    @property
    def fell_back(self) -> int:
        """Total fast-engine fallbacks across the sweep's runs."""
        return sum(run.fell_back for run in self.runs)


def make_instance(config: ExperimentConfig, repetition: int,
                  source: str = "poisson", *,
                  fast: bool | None = None,
                  cache: InstanceCache | None = None,
                  ) -> tuple[UpdateTrace, ProfileSet]:
    """One (trace, profiles) problem instance — cached when possible.

    Parameters
    ----------
    config:
        Experimental setting.
    repetition:
        Repetition index; folded into the seed so instances differ across
        repetitions but are reproducible.
    source:
        ``"poisson"`` for the synthetic Poisson(lambda) update model or
        ``"auction"`` for the eBay-like auction trace (the real-world
        substitute used by Figure 3).
    fast:
        Generation path override; defaults to the process-wide setting
        (fast, unless ``--no-fast-gen``/:func:`configure_instances`
        said otherwise). Both paths generate identical instances.
    cache:
        Cache override; defaults to the process-wide cache (in-memory
        LRU, plus the disk store when ``--cache-dir`` is configured).
        Pass an :class:`InstanceCache` to isolate, e.g., a benchmark.
    """
    if fast is None:
        fast = fast_default()
    if cache is None:
        cache = active_cache()
    return cache.get_or_generate(config, repetition, source, fast=fast)


def _run_cell(config: ExperimentConfig, repetition: int,
              policies: Sequence[str], include_offline: bool,
              source: str, engine: str,
              offline_engine: str = "fast",
              fault_cfg: FaultCell | None = None
              ) -> dict[str, tuple[float, float]]:
    """One (setting, repetition) work cell: every policy on one instance.

    The unit of parallelism: module-level (so picklable) and fully
    determined by its arguments — the instance is regenerated in the
    worker from the config seed and repetition index. Returns
    ``{label: (gc, runtime_seconds)}`` in policy order.
    """
    _trace, profiles = make_instance(config, repetition, source=source)
    cell: dict[str, tuple[float, float]] = {}
    for label in policies:
        policy, preemptive = parse_policy_spec(label)
        kwargs = fault_cfg.run_kwargs() if fault_cfg is not None else {}
        result = run_online(profiles, config.epoch, config.budget_vector,
                            policy, preemptive=preemptive, engine=engine,
                            **kwargs)
        cell[label] = (result.gc, result.runtime_seconds)
    if include_offline:
        result = LocalRatioApproximation(engine=offline_engine).solve(
            profiles, config.epoch, config.budget_vector)
        cell[OFFLINE_LABEL] = (result.gc, result.runtime_seconds)
    return cell


#: Cell-dict key under which the blocked path counts its fast-engine
#: fallbacks; :func:`_merge_cells` pops it before reading policy labels.
_FELL_BACK = "__fell_back__"

#: Lane cap per columnar pass: bounds the (lanes x states) working-set
#: of one mega block; oversized blocks run as chunks over one shared
#: column space.
_MAX_BLOCK_LANES = 512

#: A columnar lowering is a pure function of the generated instances and
#: the epoch, and sweeps re-run the same block once per swept value —
#: keep the last few lowerings so repeated blocks skip the build.
#: ``run_block`` never mutates the shared lowering (all mutable state is
#: per-run lane arrays), so cached blocks are safe to reuse.
_COLUMNAR_CACHE: OrderedDict[tuple, ColumnarInstance] = OrderedDict()
_COLUMNAR_CACHE_SIZE = 8


def _block_key(config: ExperimentConfig, source: str) -> str:
    """Grouping key for cells that can share one columnar mega block.

    Cells agree on everything that feeds instance generation — budget,
    repetition count and index are free to differ, because repetitions
    become *instances* inside the block and the budget is a per-lane
    property.
    """
    return generation_key(config, 0, source)


def _run_cells_blocked(cell_args: Sequence[tuple]
                       ) -> list[dict[str, tuple[float, float]]]:
    """Serial batch-engine path: group cells into columnar mega blocks.

    Cells sharing a :func:`_block_key` (same generated world up to
    budget/repetition) are lowered into one shared column space and
    advanced together — every policy of every cell is a lane. Policies
    without a columnar kind, and blocks the columnar form cannot encode,
    fall back to the fast engine per (cell, policy). Results land in the
    original cell order.
    """
    cells: list[dict[str, tuple[float, float]]] = [None] * len(cell_args)
    blocks: dict[str, list[int]] = {}
    for at, args in enumerate(cell_args):
        config, _repetition, _policies, _offline, source = args[:5]
        blocks.setdefault(_block_key(config, source), []).append(at)
    for indices in blocks.values():
        _run_one_block(cell_args, indices, cells)
    return cells


def _run_one_block(cell_args: Sequence[tuple], indices: Sequence[int],
                   cells: list) -> None:
    """Run one mega block's cells, writing results into ``cells``."""
    epoch = cell_args[indices[0]][0].epoch
    inst_index: dict[str, int] = {}
    profile_sets: list[ProfileSet] = []
    cell_insts: dict[int, int] = {}
    lane_specs: list[tuple] = []
    lane_home: list[tuple[int, str]] = []
    fallback: list[tuple[int, str]] = []
    for at in indices:
        config, repetition, policies, _offline, source = \
            cell_args[at][:5]
        fault_cfg = cell_args[at][7] if len(cell_args[at]) > 7 else None
        gkey = generation_key(config, repetition, source)
        inst = inst_index.get(gkey)
        if inst is None:
            _trace, profiles = make_instance(config, repetition,
                                             source=source)
            inst = inst_index[gkey] = len(profile_sets)
            profile_sets.append(profiles)
        cell_insts[at] = inst
        cells[at] = {}
        for label in policies:
            policy, preemptive = parse_policy_spec(label)
            if batch_kind(policy) is None:
                fallback.append((at, label))
                continue
            # A fresh FaultLane (so a fresh breaker) per lane: breaker
            # state is per-run, and the plane rejects shared breakers.
            fault = fault_cfg.lane() if fault_cfg is not None else None
            lane_specs.append((policy, preemptive, config.budget_vector,
                               inst, fault))
            lane_home.append((at, label))

    if lane_specs:
        # Generation keys pin down the instances *and* the epoch, so the
        # ordered key tuple identifies the lowering exactly.
        cache_key = tuple(inst_index)
        try:
            columnar = _COLUMNAR_CACHE.get(cache_key)
            if columnar is None:
                columnar = ColumnarInstance.build_many(profile_sets, epoch)
                _COLUMNAR_CACHE[cache_key] = columnar
                while len(_COLUMNAR_CACHE) > _COLUMNAR_CACHE_SIZE:
                    _COLUMNAR_CACHE.popitem(last=False)
            else:
                _COLUMNAR_CACHE.move_to_end(cache_key)
            results: list | None = []
            for lo in range(0, len(lane_specs), _MAX_BLOCK_LANES):
                results.extend(run_block(
                    profile_sets, epoch,
                    lane_specs[lo:lo + _MAX_BLOCK_LANES],
                    columnar=columnar))
        except BatchUnsupported:
            results = None
        if results is None:
            fallback = list(lane_home) + fallback
        else:
            for (at, label), result in zip(lane_home, results):
                cells[at][label] = (result.gc, result.runtime_seconds)

    for at, label in fallback:
        args = cell_args[at]
        config = args[0]
        fault_cfg = args[7] if len(args) > 7 else None
        kwargs = fault_cfg.run_kwargs() if fault_cfg is not None else {}
        policy, preemptive = parse_policy_spec(label)
        result = run_online(profile_sets[cell_insts[at]], epoch,
                            config.budget_vector, policy,
                            preemptive=preemptive, engine="fast",
                            **kwargs)
        cells[at][label] = (result.gc, result.runtime_seconds)
        cells[at][_FELL_BACK] = cells[at].get(_FELL_BACK, 0) + 1

    for at in indices:
        config, _repetition, _policies, include_offline, _source, \
            _engine, offline_engine = cell_args[at][:7]
        if include_offline:
            result = LocalRatioApproximation(engine=offline_engine).solve(
                profile_sets[cell_insts[at]], epoch, config.budget_vector)
            cells[at][OFFLINE_LABEL] = (result.gc, result.runtime_seconds)


def _run_cells_serial(cell_args: Sequence[tuple]
                      ) -> list[dict[str, tuple[float, float]]]:
    """Run cells in-process: blocked for the batch engine, else one by one."""
    if cell_args and cell_args[0][5] == "batch":
        return _run_cells_blocked(cell_args)
    return [_run_cell(*args) for args in cell_args]


def _run_cell_batch(cell_args: Sequence[tuple]
                    ) -> list[dict[str, tuple[float, float]]]:
    """Run a chunk of cells inside one worker task.

    Chunked submission amortizes pickling and lets the worker-local
    instance cache (seeded by the pool initializer) serve repeated
    (setting, repetition) instances without regenerating them. Batch
    chunks group into mega blocks exactly like the serial path.
    """
    return _run_cells_serial(cell_args)


def _run_cells_parallel(cell_args: Sequence[tuple],
                        workers: int
                        ) -> list[dict[str, tuple[float, float]]]:
    """Execute cells on a process pool, preserving serial order.

    Workers are initialized with the parent's cache configuration
    (cache directory and fast/reference choice), so a shared
    ``--cache-dir`` lets them reuse stored instances. Cells that share
    an instance (same :func:`_block_key`) are grouped into the same
    chunk — one worker then serves them from one cache entry (and, for
    the batch engine, one columnar block) instead of regenerating or
    re-reading the instance N times. Chunks are packed to a few per
    worker to balance load, and results are scattered back into
    submission order — identical to the serial path's ordering for any
    worker count.
    """
    chunk_size = max(1, -(-len(cell_args) // (workers * 4)))
    groups: dict[str, list[int]] = {}
    for at, args in enumerate(cell_args):
        groups.setdefault(_block_key(args[0], args[4]), []).append(at)
    chunks: list[list[int]] = []
    current: list[int] = []
    for group in groups.values():
        current.extend(group)
        if len(current) >= chunk_size:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    cache = active_cache()
    cache_dir = str(cache.cache_dir) if cache.cache_dir is not None else None
    with ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_worker_init,
            initargs=(cache_dir, fast_default())) as pool:
        futures = [
            pool.submit(_run_cell_batch, [cell_args[at] for at in chunk])
            for chunk in chunks
        ]
        cells: list[dict[str, tuple[float, float]]] = [None] * len(cell_args)
        for chunk, future in zip(chunks, futures):
            for at, cell in zip(chunk, future.result()):
                cells[at] = cell
    return cells


def _merge_cells(config: ExperimentConfig,
                 cells: Sequence[dict[str, tuple[float, float]]],
                 policies: Sequence[str],
                 include_offline: bool) -> RunOutcome:
    """Fold per-repetition cells into a RunOutcome, in repetition order."""
    labels = list(policies) + ([OFFLINE_LABEL] if include_offline else [])
    gc_acc: dict[str, list[float]] = {label: [] for label in labels}
    rt_acc: dict[str, list[float]] = {label: [] for label in labels}
    fell_back = 0
    for cell in cells:
        fell_back += cell.pop(_FELL_BACK, 0)
        for label in labels:
            gc, runtime = cell[label]
            gc_acc[label].append(gc)
            rt_acc[label].append(runtime)
    outcomes = {
        label: PolicyOutcome(label, tuple(gc_acc[label]),
                             tuple(rt_acc[label]))
        for label in labels
    }
    return RunOutcome(config=config, outcomes=outcomes,
                      fell_back=fell_back)


def run_setting(config: ExperimentConfig,
                policies: Sequence[str] = DEFAULT_POLICIES,
                include_offline: bool = False,
                source: str = "poisson",
                engine: str = "fast",
                offline_engine: str = "fast",
                workers: int | None = None) -> RunOutcome:
    """Run every policy on ``repetitions`` shared instances and aggregate.

    ``workers=N`` (N > 1) runs the repetitions in a process pool; the
    gained-completeness output is identical to the serial path.
    ``offline_engine`` picks the Local-Ratio implementation (both produce
    identical schedules; "reference" exists for ablations).
    """
    cell_args = [
        (config, repetition, tuple(policies), include_offline,
         source, engine, offline_engine)
        for repetition in range(config.repetitions)
    ]
    if workers is not None and workers > 1 and config.repetitions > 1:
        cells = _run_cells_parallel(cell_args, workers)
    else:
        cells = _run_cells_serial(cell_args)
    return _merge_cells(config, cells, policies, include_offline)


def sweep(name: str, base: ExperimentConfig, parameter: str,
          values: Sequence, policies: Sequence[str] = DEFAULT_POLICIES,
          include_offline: bool = False,
          source: str = "poisson",
          engine: str = "fast",
          offline_engine: str = "fast",
          workers: int | None = None) -> SweepResult:
    """Sweep one config field over ``values``, rerunning all policies.

    ``workers=N`` (N > 1) farms every (setting, repetition) cell across
    the whole sweep out to one shared process pool and merges results in
    the serial iteration order, so the returned gained-completeness
    numbers are identical to a serial sweep.
    """
    configs = [base.with_(**{parameter: value}) for value in values]
    if (workers is not None and workers > 1) or engine == "batch":
        # One flat cell list for the whole sweep: the pool spreads it
        # over workers, and the batch engine groups cells that share
        # generated instances (e.g. a budget sweep's settings) into
        # columnar mega blocks spanning config boundaries.
        flat = [
            (config, repetition, tuple(policies), include_offline,
             source, engine, offline_engine)
            for config in configs
            for repetition in range(config.repetitions)
        ]
        if workers is not None and workers > 1:
            cells = _run_cells_parallel(flat, workers)
        else:
            cells = _run_cells_serial(flat)
        runs = []
        cursor = 0
        for config in configs:
            span = cells[cursor:cursor + config.repetitions]
            cursor += config.repetitions
            runs.append(_merge_cells(config, span, policies,
                                     include_offline))
    else:
        runs = [run_setting(config, policies,
                            include_offline=include_offline,
                            source=source, engine=engine,
                            offline_engine=offline_engine)
                for config in configs]
    return SweepResult(name=name, parameter=parameter,
                       x_values=tuple(values), runs=tuple(runs))
