"""Per-figure experiment definitions (one function per table/figure).

Every public function reproduces one element of the paper's evaluation
(Section 5) and returns structured results; the benchmark files under
``benchmarks/`` and the CLI print them with
:mod:`repro.experiments.reporting`.

The sweeps honor three scales (see :mod:`repro.experiments.config`):
``paper`` runs the full Table-1 sizes, ``default`` shrinks every axis for
the benchmark suite, ``smoke`` is for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig, Scale, baseline
from repro.experiments.harness import (
    OFFLINE_LABEL,
    RunOutcome,
    SweepResult,
    run_setting,
    sweep,
)

__all__ = [
    "ALL_POLICY_VARIANTS",
    "FigurePair",
    "table1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
]

#: All six policy variants compared in Figure 3.
ALL_POLICY_VARIANTS: tuple[str, ...] = (
    "S-EDF(NP)", "S-EDF(P)", "MRSF(NP)", "MRSF(P)", "M-EDF(NP)", "M-EDF(P)",
)


@dataclass(frozen=True, slots=True)
class FigurePair:
    """A two-panel figure (the paper's Figures 5, 6, 7)."""

    left: SweepResult
    right: SweepResult


def _values(scale: Scale, paper_values: list, default_values: list,
            smoke_values: list) -> list:
    if scale == "paper":
        return paper_values
    if scale == "default":
        return default_values
    return smoke_values


def table1(scale: Scale = "default", *,
           workers: int | None = None,
           engine: str = "fast") -> RunOutcome:
    """Table 1 companion: all main policies at the baseline setting."""
    config = baseline(scale)
    return run_setting(config, policies=list(ALL_POLICY_VARIANTS),
                       workers=workers, engine=engine)


def figure3(scale: Scale = "default", *,
           workers: int | None = None,
           engine: str = "fast") -> RunOutcome:
    """Figure 3: real-world(-like) auction trace, P vs NP comparison.

    Paper setting: AuctionWatch(3) profiles, 400 auctions, window W = 20,
    budget C = 2, eBay bid trace (substituted by the auction synthesizer).
    Expected shape: MRSF(P) and M-EDF(P) beat S-EDF; preemption helps the
    rank/multi-EI policies (up to ~20% gap).

    The auction population is kept at the paper's 400 resources / 500
    profiles even at the default scale — the resource:profile ratio sets
    the cross-profile sharing level the policy ordering depends on — and
    only the epoch and bid counts shrink.
    """
    config = baseline(scale).with_(
        budget=2, window=20, num_resources=400, num_profiles=500,
        repetitions=min(3, baseline(scale).repetitions))
    if scale == "smoke":
        config = config.with_(num_resources=40, num_profiles=50)
    return run_setting(config, policies=list(ALL_POLICY_VARIANTS),
                       source="auction", workers=workers, engine=engine)


def figure4(scale: Scale = "default", *,
           workers: int | None = None,
           engine: str = "fast") -> SweepResult:
    """Figure 4: online policies vs offline approximation over rank(P).

    Paper setting: W = 0 and C = 1, producing ``P^[1]`` profiles — the
    regime where the Local-Ratio approximation has its best guarantee, and
    where M-EDF coincides with MRSF (Proposition 5), so only MRSF(P) is
    reported. Expected shape: GC decreases with rank; MRSF(P) beats the
    offline approximation (paper: by 11-23%); S-EDF(NP) drops below the
    offline approximation for rank > 2.
    """
    # W = 0 degenerates overlap grouping (unit EIs only overlap when they
    # coincide), so the P^[1] experiments use the indexed grouping.
    config = baseline(scale).with_(window=0, budget=1, grouping="indexed")
    ranks = _values(scale, [1, 2, 3, 4, 5], [1, 2, 3, 4, 5], [1, 2, 3])
    return sweep("Figure 4", config, "max_rank", ranks,
                 policies=["S-EDF(NP)", "MRSF(P)"],
                 include_offline=True, workers=workers, engine=engine)


def figure5(scale: Scale = "default", *,
           workers: int | None = None,
           engine: str = "fast") -> FigurePair:
    """Figure 5: runtime scalability.

    Panel 1: offline approximation vs online policies on small workloads
    (paper: lambda = 20, m in 100..500). Panel 2: online policies only on
    2.5x update intensity and up to 2500 profiles. Expected shape: the
    offline approximation's runtime dwarfs the online policies'; online
    runtime grows ~linearly in the number of profiles.

    Both panels use W = 0 / C = 1 instances (the regime the offline
    approximation is defined on, cf. Figure 4).
    """
    config = baseline(scale).with_(
        window=0, budget=1, grouping="indexed",
        repetitions=min(2, baseline(scale).repetitions))
    small_m = _values(scale,
                      [100, 200, 300, 400, 500],
                      [200, 400, 600, 800, 1000],
                      [4, 8, 12])
    left = sweep("Figure 5(1)", config, "num_profiles", small_m,
                 policies=["S-EDF(NP)", "S-EDF(P)", "MRSF(P)", "M-EDF(P)"],
                 include_offline=True, workers=workers, engine=engine)

    big_config = config.with_(intensity=config.intensity * 2.5)
    big_m = _values(scale,
                    [500, 1000, 1500, 2000, 2500],
                    [100, 200, 300, 400, 500],
                    [8, 16, 24])
    right = sweep("Figure 5(2)", big_config, "num_profiles", big_m,
                  policies=["S-EDF(NP)", "S-EDF(P)", "MRSF(P)",
                            "M-EDF(P)"], workers=workers, engine=engine)
    return FigurePair(left=left, right=right)


def figure6(scale: Scale = "default", *,
           workers: int | None = None,
           engine: str = "fast") -> FigurePair:
    """Figure 6: workload analysis.

    Panel 1 sweeps the average update intensity lambda; panel 2 sweeps the
    number of profiles m. Expected shape: GC decreases in both (more
    t-intervals compete for the same budget); MRSF(P) >= M-EDF(P) >
    S-EDF(*).
    """
    config = baseline(scale)
    lambdas = _values(scale,
                      [10, 20, 30, 40, 50],
                      [6, 12, 18, 24, 30],
                      [3, 6, 9])
    left = sweep("Figure 6(1)", config, "intensity", lambdas,
                 workers=workers, engine=engine)
    profile_counts = _values(scale,
                             [100, 300, 500, 700, 900],
                             [40, 80, 120, 160, 200],
                             [4, 8, 12])
    right = sweep("Figure 6(2)", config, "num_profiles",
                  profile_counts, workers=workers, engine=engine)
    return FigurePair(left=left, right=right)


def figure7(scale: Scale = "default", *,
           workers: int | None = None,
           engine: str = "fast") -> FigurePair:
    """Figure 7: impact of user preferences.

    Panel 1 sweeps alpha (inter-user preference — popularity skew of the
    resource choice; 1.37 is the Web-feed value the paper cites); panel 2
    sweeps beta (intra-user preference — skew toward simpler profiles).
    Expected shape: GC increases in alpha (intra-resource overlap on
    popular resources is exploitable; S-EDF(NP) > S-EDF(P) here) and
    increases in beta (simpler profiles).
    """
    config = baseline(scale)
    alphas = _values(scale,
                     [0.0, 0.5, 1.0, 1.37, 2.0],
                     [0.0, 0.5, 1.0, 1.37, 2.0],
                     [0.0, 1.0, 2.0])
    left = sweep("Figure 7(1)", config, "alpha", alphas,
                 workers=workers, engine=engine)
    betas = _values(scale,
                    [0.0, 0.5, 1.0, 1.5, 2.0],
                    [0.0, 0.5, 1.0, 1.5, 2.0],
                    [0.0, 1.0, 2.0])
    right = sweep("Figure 7(2)", config, "beta", betas,
                  workers=workers, engine=engine)
    return FigurePair(left=left, right=right)


def figure8(scale: Scale = "default", *,
           workers: int | None = None,
           engine: str = "fast") -> SweepResult:
    """Figure 8: effect of budgetary limitations.

    Sweeps the per-chronon budget C. Expected shape: GC increases markedly
    with budget; MRSF(P) utilizes extra budget best; S-EDF(P) improves
    ~linearly while S-EDF(NP) is sub-linear.

    The update intensity is doubled relative to the baseline so that the
    workload stays budget-bound across the whole sweep (at baseline
    intensity the reduced-scale instances saturate at C >= 4, flattening
    every curve into 1.0).
    """
    config = baseline(scale)
    config = config.with_(intensity=config.intensity * 2)
    budgets = _values(scale, [1, 2, 3, 4, 5], [1, 2, 3, 4, 5], [1, 2, 3])
    return sweep("Figure 8", config, "budget", budgets,
                 workers=workers, engine=engine)
