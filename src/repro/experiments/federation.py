"""Federation experiment: GC and throughput vs. proxy shard count.

Runs the same instances through the monolith fast engine and through
:func:`~repro.simulation.shard.federated_run` at several shard counts,
reporting per shard count:

* mean gained completeness and its *degradation* vs. the monolith —
  zero by construction, since the coordinator's merge of per-shard
  proposals reproduces the monolith selection exactly (the experiment
  measures it anyway: an accounting regression would surface here);
* mean wall-clock runtime and the throughput ratio vs. the monolith;
* per-shard load (owned resources, routed probes) and the budget
  work-stealing totals from the coordinator ledgers.

The federation benchmark (``benchmarks/bench_federation.py``) drives
the same sweep at catalog scale and gates the K=8 throughput ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.config import ExperimentConfig, baseline
from repro.experiments.harness import PolicyOutcome, make_instance
from repro.online.registry import parse_policy_spec
from repro.runtime.sharding import ShardLoad
from repro.simulation.columnar import ColumnarInstance
from repro.simulation.proxy import run_online
from repro.simulation.shard import federated_run

__all__ = [
    "DEFAULT_SHARD_COUNTS",
    "FederationSweep",
    "ShardCountOutcome",
    "federation_sweep",
]

DEFAULT_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class ShardCountOutcome:
    """Aggregated federated runs at one shard count."""

    shards: int
    gc_values: tuple[float, ...]
    runtime_values: tuple[float, ...]
    loads: tuple[ShardLoad, ...]
    stolen_budget: int
    steal_transfers: int

    @property
    def mean_gc(self) -> float:
        return sum(self.gc_values) / len(self.gc_values)

    @property
    def mean_runtime(self) -> float:
        return sum(self.runtime_values) / len(self.runtime_values)

    @property
    def probes_routed(self) -> int:
        return sum(load.probes_routed for load in self.loads)


@dataclass(frozen=True)
class FederationSweep:
    """Monolith baseline plus one :class:`ShardCountOutcome` per K."""

    config: ExperimentConfig
    policy: str
    monolith: PolicyOutcome
    outcomes: tuple[ShardCountOutcome, ...]

    @property
    def shard_counts(self) -> tuple[int, ...]:
        return tuple(outcome.shards for outcome in self.outcomes)

    def outcome(self, shards: int) -> ShardCountOutcome:
        for candidate in self.outcomes:
            if candidate.shards == shards:
                return candidate
        raise KeyError(f"no outcome for {shards} shards")

    def degradation(self, shards: int) -> float:
        """Monolith mean GC minus the federated mean GC (0.0: exact)."""
        return self.monolith.mean_gc - self.outcome(shards).mean_gc

    def speedup(self, shards: int) -> float:
        """Monolith mean runtime over the federated mean runtime."""
        return self.monolith.mean_runtime / self.outcome(shards).mean_runtime


def _merge_loads(totals: dict[int, ShardLoad],
                 loads: Sequence[ShardLoad]) -> None:
    for load in loads:
        at = totals.get(load.shard)
        if at is None:
            totals[load.shard] = ShardLoad(
                shard=load.shard, resources=load.resources,
                probes_routed=load.probes_routed,
                nominal_budget=load.nominal_budget,
                stolen_in=load.stolen_in, stolen_out=load.stolen_out)
        else:
            at.resources = max(at.resources, load.resources)
            at.probes_routed += load.probes_routed
            at.nominal_budget += load.nominal_budget
            at.stolen_in += load.stolen_in
            at.stolen_out += load.stolen_out


def federation_sweep(scale: str = "smoke",
                     shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
                     policy: str = "M-EDF(P)",
                     workers: int | None = None,
                     source: str = "poisson",
                     config: ExperimentConfig | None = None,
                     ) -> FederationSweep:
    """GC and runtime vs. shard count against the monolith fast engine.

    All shard counts (and the monolith) share each repetition's
    generated instance and its columnar lowering, so the comparison
    isolates the federation overhead. ``workers=N`` advances shards on
    a forked process pool; results are identical to in-process runs.
    ``config`` overrides the baseline config of ``scale`` (benchmarks
    sweep custom sizes).
    """
    if config is None:
        config = baseline(scale)
    mono_gc: list[float] = []
    mono_runtime: list[float] = []
    gc_values: dict[int, list[float]] = {k: [] for k in shard_counts}
    runtimes: dict[int, list[float]] = {k: [] for k in shard_counts}
    load_totals: dict[int, dict[int, ShardLoad]] = \
        {k: {} for k in shard_counts}
    stolen: dict[int, int] = {k: 0 for k in shard_counts}
    transfers: dict[int, int] = {k: 0 for k in shard_counts}
    label = None
    for repetition in range(config.repetitions):
        _trace, profiles = make_instance(config, repetition,
                                         source=source)
        policy_obj, preemptive = parse_policy_spec(policy)
        result = run_online(profiles, config.epoch, config.budget_vector,
                            policy_obj, preemptive=preemptive,
                            engine="fast")
        label = result.label
        mono_gc.append(result.gc)
        mono_runtime.append(result.runtime_seconds)
        col = ColumnarInstance.build(profiles, config.epoch)
        for shards in shard_counts:
            policy_obj, preemptive = parse_policy_spec(policy)
            fed = federated_run(
                profiles, config.epoch, config.budget_vector,
                policy_obj, preemptive=preemptive, shards=shards,
                workers=workers or 0, columnar=col)
            gc_values[shards].append(fed.result.gc)
            runtimes[shards].append(fed.result.runtime_seconds)
            _merge_loads(load_totals[shards], fed.loads)
            stolen[shards] += fed.stolen_budget
            transfers[shards] += fed.steal_transfers
    monolith = PolicyOutcome(label=label, gc_values=tuple(mono_gc),
                             runtime_values=tuple(mono_runtime))
    outcomes = tuple(
        ShardCountOutcome(
            shards=shards,
            gc_values=tuple(gc_values[shards]),
            runtime_values=tuple(runtimes[shards]),
            loads=tuple(load_totals[shards][shard]
                        for shard in sorted(load_totals[shards])),
            stolen_budget=stolen[shards],
            steal_transfers=transfers[shards])
        for shards in shard_counts)
    return FederationSweep(config=config, policy=policy,
                           monolith=monolith, outcomes=outcomes)
